"""Attack coverage matrix (extension bench).

The paper evaluates one representative kernel ROP ("they all use similar
gadget-based patterns", §7.1) and leaves a broader collection as future
work.  This bench runs the whole attack zoo this repository implements —
kernel chains of several shapes, the user-context twin, and the
code-injection strawman — and tabulates, for each: did the payload achieve
its goal, did the detector alarm, and did replay confirm.

The punchline the table must show: detection is structural.  *Every*
control-flow hijack alarms and is confirmed, whatever the chain looks
like; the one attack that achieves nothing (code injection, killed by
W⊕X) still does not go unnoticed.
"""

import pytest

from repro.attacks import (
    ChainVariant,
    deliver_injection_attack,
    deliver_rop_attack,
    deliver_user_rop_attack,
    deliver_variant_attack,
    user_rop_profile,
)
from repro.replay import AlarmReplayer, VerdictKind
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.workloads import APACHE, build_workload

from benchmarks._common import BUDGET, emit


def _record(spec):
    return Recorder(spec, RecorderOptions(max_instructions=BUDGET)).run()


def _confirmed(spec, run, hijack_target) -> bool:
    alarms = [a for a in run.alarms if a.actual == hijack_target]
    if not alarms:
        return False
    verdict = AlarmReplayer(spec, run.log, alarms[0]).analyze()
    return verdict.kind is VerdictKind.ROP_CONFIRMED


@pytest.fixture(scope="module")
def matrix():
    rows = {}
    base = build_workload(APACHE)

    # Kernel chains, all shapes.
    spec, chain = deliver_rop_attack(base)
    run = _record(spec)
    rows["kernel/canonical"] = {
        "escalated": run.machine.memory.read_word(
            spec.kernel.layout.uid_addr) == 0,
        "alarmed": any(a.actual == chain.stack_words[0]
                       for a in run.alarms),
        "confirmed": _confirmed(spec, run, chain.stack_words[0]),
    }
    for variant in (ChainVariant.RET2FUNC, ChainVariant.DOUBLE_DISPATCH,
                    ChainVariant.SPRAYED):
        attack = deliver_variant_attack(base, variant)
        run = _record(attack.spec)
        first_hop = attack.chain.stack_words[0]
        rows[f"kernel/{variant.value}"] = {
            "escalated": run.machine.memory.read_word(
                attack.spec.kernel.layout.uid_addr) == 0,
            "alarmed": any(a.actual == first_hop for a in run.alarms),
            "confirmed": _confirmed(attack.spec, run, first_hop),
        }

    # The user-context twin.
    user_spec = build_workload(user_rop_profile(APACHE))
    attack = deliver_user_rop_attack(user_spec)
    run = _record(attack.spec)
    rows["user/ret2func"] = {
        "escalated": attack.escalated(run.machine.memory),
        "alarmed": any(a.actual == attack.target for a in run.alarms),
        "confirmed": _confirmed(attack.spec, run, attack.target),
    }

    # Code injection: dead on arrival (W⊕X) but never silent.
    injection = deliver_injection_attack(base)
    run = _record(injection.spec)
    rows["kernel/code-injection"] = {
        "escalated": run.machine.memory.read_word(
            injection.spec.kernel.layout.uid_addr) == 0,
        "alarmed": any(a.actual == injection.shellcode_addr
                       for a in run.alarms),
        "confirmed": _confirmed(injection.spec, run,
                                injection.shellcode_addr),
    }
    return rows


class TestAttackMatrix:
    def test_report(self, matrix):
        lines = ["Attack coverage matrix",
                 f"{'attack':<24}{'escalated':>10}{'alarmed':>9}"
                 f"{'confirmed':>10}"]
        for name, row in matrix.items():
            lines.append(f"{name:<24}{str(row['escalated']):>10}"
                         f"{str(row['alarmed']):>9}"
                         f"{str(row['confirmed']):>10}")
        lines.append("structural detection: every hijack alarms and is "
                     "confirmed; W^X kills injection outright")
        emit("attack_matrix", lines)

    def test_every_hijack_alarms(self, matrix):
        """The no-false-negatives property, across the whole zoo."""
        for name, row in matrix.items():
            assert row["alarmed"], name

    def test_every_hijack_is_confirmed(self, matrix):
        for name, row in matrix.items():
            assert row["confirmed"], name

    def test_rop_escalates_but_injection_does_not(self, matrix):
        for name, row in matrix.items():
            if name == "kernel/code-injection":
                assert not row["escalated"], name
            else:
                assert row["escalated"], name


class TestAttackMatrixTiming:
    def test_chain_building_cost(self, benchmark):
        from repro.attacks import build_variant_chain
        from repro.workloads.suite import kernel_for_layout

        kernel = kernel_for_layout()

        def build_all():
            return [build_variant_chain(kernel, variant)
                    for variant in ChainVariant]

        chains = benchmark(build_all)
        assert len(chains) == len(ChainVariant)
