"""Figure 5: recording overhead.

(a) Execution time of NoRecPV / NoRec / RecNoRAS / Rec, normalized to
    NoRec.  Paper: disabling PV costs 25-150%; Rec averages +27% over
    NoRec; RecNoRAS +24%.
(b) Breakdown of the Rec-over-NoRec overhead into rdtsc / pio-mmio /
    interrupt / network / RAS.  Paper: rdtsc dominates; RAS is small;
    network matters only for apache.
"""

import pytest

from repro.core.modes import ALL_RECORDING_SETUPS, record_benchmark
from repro.perf.account import Category, RECORDING_BREAKDOWN
from repro.perf.report import OverheadBreakdown, normalized_time

from benchmarks._common import (
    BENCHMARK_NAMES,
    emit,
    format_header,
    format_row,
    recording,
    workload,
)

SETUP_NAMES = [setup.name for setup in ALL_RECORDING_SETUPS]


@pytest.fixture(scope="module")
def fig5a():
    """Normalized execution times per benchmark and setup."""
    table = {}
    for name in BENCHMARK_NAMES:
        runs = {setup: recording(name, setup) for setup in SETUP_NAMES}
        baseline = runs["NoRec"].metrics
        table[name] = {
            setup: normalized_time(run.metrics, baseline)
            for setup, run in runs.items()
        }
    return table


@pytest.fixture(scope="module")
def fig5b():
    """Per-benchmark breakdown of the Rec recording overhead."""
    return {
        name: OverheadBreakdown.from_account(
            name, recording(name, "Rec").metrics.account,
            RECORDING_BREAKDOWN,
        )
        for name in BENCHMARK_NAMES
    }


class TestFig5a:
    def test_report(self, fig5a):
        lines = ["Figure 5(a): execution time of recording setups "
                 "(normalized to NoRec)", format_header(SETUP_NAMES)]
        for name, row in fig5a.items():
            lines.append(format_row(name, row))
        means = {
            setup: sum(row[setup] for row in fig5a.values()) / len(fig5a)
            for setup in SETUP_NAMES
        }
        lines.append(format_row("mean", means))
        lines.append("paper: NoRecPV 0.4-0.95, RecNoRAS ~1.24, Rec ~1.27")
        emit("fig5a_recording_setups", lines)

    def test_rec_mean_overhead_is_modest(self, fig5a):
        """Paper: 'Recording takes, on average, 27% longer than NoRec.'"""
        mean = sum(row["Rec"] for row in fig5a.values()) / len(fig5a)
        assert 1.10 <= mean <= 1.45

    def test_ras_management_costs_a_few_points(self, fig5a):
        """Rec is slightly slower than RecNoRAS on every benchmark."""
        for name, row in fig5a.items():
            assert row["Rec"] >= row["RecNoRAS"], name

    def test_pv_removal_hurts_io_benchmarks_most(self, fig5a):
        """Paper: apache and fileio are affected the most, mysql the
        least (it caches tables in memory)."""
        gain = {name: 1.0 - row["NoRecPV"] for name, row in fig5a.items()}
        assert gain["fileio"] > gain["mysql"]
        assert gain["apache"] > gain["mysql"]
        assert gain["make"] > gain["radiosity"]

    def test_compute_bound_benchmarks_barely_notice(self, fig5a):
        """Paper: make and radiosity have little overhead."""
        assert fig5a["radiosity"]["Rec"] < 1.10


class TestFig5b:
    def test_report(self, fig5b):
        columns = [cat.value for cat in RECORDING_BREAKDOWN]
        lines = ["Figure 5(b): breakdown of Rec overhead over NoRec (%)",
                 format_header(columns, width=11)]
        for name, breakdown in fig5b.items():
            row = {cat.value: breakdown.percent_of(cat)
                   for cat in RECORDING_BREAKDOWN}
            lines.append(format_row(name, row, fmt="{:>11.1f}"))
        lines.append("paper: rdtsc dominates everywhere; network visible "
                     "only for apache; RAS small")
        emit("fig5b_recording_breakdown", lines)

    def test_rdtsc_dominates_timing_benchmarks(self, fig5b):
        """Paper: 'the dominant overhead across all benchmarks is due to
        recording rdtsc', strongest in fileio and mysql."""
        for name in ("fileio", "mysql"):
            assert fig5b[name].dominant() is Category.RDTSC, name

    def test_network_only_matters_for_apache(self, fig5b):
        apache_share = fig5b["apache"].percent_of(Category.NETWORK)
        assert apache_share > 5.0
        for name in ("fileio", "make", "mysql", "radiosity"):
            assert fig5b[name].percent_of(Category.NETWORK) < 1.0, name

    def test_ras_never_dominates_timing_benchmarks(self, fig5b):
        """Paper: RAS save/restore is a minor slice.  Our simulated
        workloads context-switch far more per instruction than real
        servers (documented in EXPERIMENTS.md), so the honest shape check
        is that RAS stays below rdtsc wherever timing calls exist."""
        for name in ("fileio", "mysql", "apache"):
            breakdown = fig5b[name]
            assert (breakdown.percent_of(Category.RAS)
                    < breakdown.percent_of(Category.RDTSC) + 25.0), name

    def test_ras_cost_is_absolutely_small(self, fig5b):
        """In absolute cycles the RAS machinery is cheap: a few hundred
        switches at ~1.4k cycles each."""
        for name in BENCHMARK_NAMES:
            run = recording(name, "Rec")
            ras = run.metrics.account.cycles(Category.RAS)
            assert ras < 0.35 * run.metrics.total_cycles, name


class TestFig5Timing:
    def test_recording_throughput(self, benchmark):
        """pytest-benchmark: wall time of recording one mid-size guest."""
        from repro.core.modes import REC

        spec = workload("mysql")

        def run_once():
            return record_benchmark(spec, REC, max_instructions=150_000)

        result = benchmark(run_once)
        assert result.metrics.instructions > 0
