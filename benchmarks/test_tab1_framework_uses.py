"""Table 1: three framework uses — ROP, JOP, and DOS.

For each row the table names an alarm trigger, a first (imprecise)
detection technique, and a role for replay.  This bench runs all three
end to end: attack present -> alarm raised -> replay resolves it; attack
absent -> either no alarm or the replay side absorbs the false positive.
"""

import pytest

from repro.attacks import (
    build_dos_attack_program,
    build_jop_attack_program,
    deliver_rop_attack,
)
from repro.cpu.exits import RopAlarmKind
from repro.detectors import (
    DosAnalyzer,
    DosWatchdog,
    JopDetector,
    RasRopDetector,
    verify_jop_target,
)
from repro.replay import AlarmReplayer, VerdictKind
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.workloads import APACHE, MAKE, MYSQL, build_workload

from benchmarks._common import BUDGET, emit


def _record(spec, *detectors):
    recorder = Recorder(spec, RecorderOptions(max_instructions=BUDGET))
    for detector in detectors:
        detector.configure(recorder)
    return recorder.run()


@pytest.fixture(scope="module")
def table1():
    rows = {}
    # Row 1: ROP via RAS misprediction.
    spec, chain = deliver_rop_attack(build_workload(APACHE))
    run = _record(spec, RasRopDetector())
    hijack = next(a for a in run.alarms
                  if a.actual == chain.stack_words[0])
    verdict = AlarmReplayer(spec, run.log, hijack).analyze()
    rows["ROP"] = {
        "alarms": len(run.alarms),
        "attack_resolved": verdict.kind is VerdictKind.ROP_CONFIRMED,
        "replay_role": "kernel-compatible software shadow stack",
    }
    # Row 2: JOP via the function-boundary table.
    spec = build_jop_attack_program(build_workload(MAKE))
    run = _record(spec, JopDetector())
    verdict = verify_jop_target(spec.kernel, run.jop_alarms[0])
    rows["JOP"] = {
        "alarms": len(run.jop_alarms),
        "attack_resolved": verdict.kind is VerdictKind.ROP_CONFIRMED,
        "replay_role": "verify targets against the full function map",
    }
    # Row 3: DOS via the context-switch counter.
    spec = build_dos_attack_program(build_workload(MYSQL),
                                    spin_iterations=14_000)
    run = _record(spec, DosWatchdog())
    dos_alarm = next(a for a in run.alarms
                     if a.kind is RopAlarmKind.DOS)
    analysis = DosAnalyzer(sample_every=512).analyze(spec, run.log,
                                                     dos_alarm)
    rows["DOS"] = {
        "alarms": 1,
        "attack_resolved": analysis.is_kernel_hog,
        "replay_role": (f"profile the window: {analysis.dominant_function} "
                        f"dominated ({analysis.dominant_share:.0%})"),
    }
    return rows


class TestTable1:
    def test_report(self, table1):
        lines = ["Table 1: framework uses (attack present in each run)"]
        for attack, row in table1.items():
            lines.append(
                f"{attack:<5} alarms={row['alarms']:<4} "
                f"resolved={row['attack_resolved']} "
                f"replay: {row['replay_role']}"
            )
        emit("tab1_framework_uses", lines)

    def test_all_three_attacks_detected_and_resolved(self, table1):
        for attack, row in table1.items():
            assert row["alarms"] > 0, attack
            assert row["attack_resolved"], attack

    def test_detectors_claim_their_own_alarms(self):
        from repro.rnr.records import AlarmRecord

        ras = RasRopDetector()
        jop = JopDetector()
        dos = DosWatchdog()
        samples = {
            RopAlarmKind.MISMATCH: ras,
            RopAlarmKind.JOP: jop,
            RopAlarmKind.DOS: dos,
        }
        for kind, owner in samples.items():
            alarm = AlarmRecord(icount=1, kind=kind, pc=0, predicted=None,
                                actual=0, tid=0)
            for detector in (ras, jop, dos):
                assert detector.owns_alarm(alarm) == (detector is owner)


class TestTable1Timing:
    def test_multi_detector_recording(self, benchmark):
        """pytest-benchmark: recording with all three detectors armed."""
        spec = build_workload(MYSQL)

        def run_once():
            recorder = Recorder(spec,
                                RecorderOptions(max_instructions=120_000))
            RasRopDetector().configure(recorder)
            JopDetector().configure(recorder)
            DosWatchdog().configure(recorder)
            return recorder.run()

        run = benchmark(run_once)
        assert run.metrics.instructions > 0
