"""Streaming-pipeline harness: sequential vs pipelined end-to-end time.

The paper's deployment overlaps its three phases — recording, checkpointing
replay, and alarm replay — so end-to-end time is governed by the slowest
phase, not the sum (§3, §8.3.1).  This harness runs each workload both
ways and emits ``BENCH_pipeline.json``:

* **sequential** — record, then CR, then ARs, phases back to back; the
  deployment end-to-end time is the sum of the phase cycle counts.
* **pipelined** — one *real* concurrent run through
  ``record_and_replay_pipelined`` (frames through a bounded queue, ARs
  dispatched as alarms confirm).  The run yields the measured per-frame
  production/consumption cycle timelines, which
  ``repro.core.pipeline.couple_pipeline`` folds into the overlapped
  deployment makespan; each AR finishes ``analysis_cycles`` after the
  frame carrying its alarm is consumed.

Both host wall-clock seconds and simulated deployment cycles are
reported.  The headline ``sim_speedup`` aggregates in the simulated
domain — the repo's figures all assert on simulated cycles, and host-side
overlap depends on how many cores the CI machine happens to have
(``aggregate.host_parallelism`` records it).  Every pipelined run is also
checked bit-equivalent to its sequential twin (same log bytes, same
verdicts) and the check's outcome lands in the JSON.

A fleet-scaling section runs N=1/2/4 independent sessions through
``repro.core.fleet`` and reports per-width wall-clock and throughput.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py            # full run
    PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke    # CI smoke

See ``docs/PERFORMANCE.md`` ("Pipelining") for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.core.fleet import FleetSession, run_fleet
from repro.core.parallel import (
    record_and_replay_pipelined,
    resolve_alarms_parallel,
)
from repro.core.pipeline import couple_pipeline
from repro.errors import WorkloadError
from repro.replay.checkpointing import (
    CheckpointingOptions,
    CheckpointingReplayer,
)
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.workloads import ALL_PROFILES, build_workload, profile_by_name

DEFAULT_BUDGET = 1_000_000
SMOKE_BUDGET = 150_000
#: Frames ship after every couple of records.  Simulated logs are sparse
#: (hundreds of records per million instructions), and the CR can only
#: overlap with recording up to the last frame it has received — so the
#: streaming granularity, not the byte overhead, is what matters here.
#: Byte-dense real logs would use the config default (512 records/frame).
FRAME_RECORDS = 2
QUEUE_DEPTH = 8
CHECKPOINT_PERIOD_S = 0.2
FLEET_WIDTHS = (1, 2, 4)

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _verdict_keys(verdicts):
    return [
        (v.kind.value,
         v.benign_cause.value if v.benign_cause else None,
         v.alarm.icount)
        for v in verdicts
    ]


def _ar_tail_cycles(checkpointing, verdicts, frames, consumed_at):
    """When does the last AR finish, on the coupled wall clock?

    Each AR launches the moment the frame carrying its alarm is consumed
    and runs for its measured ``analysis_cycles`` (ARs are concurrent, so
    they overlap each other and the still-running CR).
    """
    tail = 0
    for alarm, verdict in zip(checkpointing.pending_alarms, verdicts):
        position = checkpointing.alarm_positions.get(alarm.icount, 0)
        frame_wall = consumed_at[-1] if consumed_at else 0
        for info, wall in zip(frames, consumed_at):
            if info.record_offset + info.record_count > position:
                frame_wall = wall
                break
        tail = max(tail, frame_wall + verdict.analysis_cycles)
    return tail


def bench_workload(name: str, budget: int) -> dict:
    spec = build_workload(profile_by_name(name))
    recorder_options = RecorderOptions(max_instructions=budget)
    cr_options = CheckpointingOptions(period_s=CHECKPOINT_PERIOD_S)

    # -- sequential reference: phases back to back --------------------
    recording, record_seconds = _timed(
        Recorder(spec, recorder_options).run
    )
    checkpointing, cr_seconds = _timed(
        CheckpointingReplayer(
            build_workload(profile_by_name(name)), recording.log, cr_options,
        ).run_to_end
    )
    resolution, ar_seconds = _timed(lambda: resolve_alarms_parallel(
        build_workload(profile_by_name(name)), recording.log,
        checkpointing.pending_alarms, store=checkpointing.store,
        backend="thread",
    ))
    ar_tail = max(
        (v.analysis_cycles for v in resolution.verdicts), default=0,
    )
    seq_sim_cycles = (
        recording.metrics.total_cycles
        + checkpointing.replay.metrics.total_cycles
        + ar_tail
    )
    seq_host_seconds = record_seconds + cr_seconds + ar_seconds

    # -- pipelined: one real concurrent run ---------------------------
    run, pipe_host_seconds = _timed(lambda: record_and_replay_pipelined(
        build_workload(profile_by_name(name)), recorder_options, cr_options,
        backend="thread", frame_records=FRAME_RECORDS,
        queue_depth=QUEUE_DEPTH,
    ))
    stats = run.stats
    coupled = couple_pipeline(
        list(stats.produced_cycles), list(stats.consumed_cycles),
        utilization=1.0,
    )
    consumed_at = [point.consumed_at for point in coupled.points]
    cr_done = consumed_at[-1] if consumed_at else 0
    ar_done = _ar_tail_cycles(
        run.checkpointing, run.resolution.verdicts, stats.frames,
        consumed_at,
    )
    pipe_sim_cycles = max(cr_done, ar_done)

    session_bytes_equal = (
        run.recording.log.to_bytes() == recording.log.to_bytes()
    )
    verdicts_equal = (
        _verdict_keys(run.resolution.verdicts)
        == _verdict_keys(resolution.verdicts)
    )
    return {
        "instructions": recording.metrics.instructions,
        "log_records": len(recording.log),
        "frames": len(stats.frames),
        "alarms_pending": len(checkpointing.pending_alarms),
        "sequential": {
            "sim_cycles": seq_sim_cycles,
            "host_seconds": round(seq_host_seconds, 4),
            "phases_sim_cycles": {
                "record": recording.metrics.total_cycles,
                "cr_replay": checkpointing.replay.metrics.total_cycles,
                "ar_tail": ar_tail,
            },
        },
        "pipelined": {
            "sim_cycles": pipe_sim_cycles,
            "host_seconds": round(pipe_host_seconds, 4),
            "backend": stats.backend,
            "frame_records": stats.frame_records,
            "queue_depth": stats.queue_depth,
            "max_lag_cycles": coupled.max_lag_cycles,
        },
        "sim_speedup": round(seq_sim_cycles / pipe_sim_cycles, 3)
        if pipe_sim_cycles else None,
        "host_speedup": round(seq_host_seconds / pipe_host_seconds, 3)
        if pipe_host_seconds else None,
        "equivalent": {
            "session_bytes_equal": session_bytes_equal,
            "verdicts_equal": verdicts_equal,
        },
    }


def bench_fleet(name: str, budget: int, widths=FLEET_WIDTHS) -> dict:
    """Fleet scaling: N independent sessions across the worker pool."""
    scaling = {}
    for width in widths:
        sessions = [
            FleetSession(benchmark=name, seed=2018 + index,
                         max_instructions=budget,
                         period_s=CHECKPOINT_PERIOD_S)
            for index in range(width)
        ]
        fleet = run_fleet(sessions, backend="process")
        scaling[str(width)] = {
            "backend": fleet.backend,
            "workers": fleet.workers,
            "host_seconds": round(fleet.host_seconds, 4),
            "instructions": fleet.total_instructions,
            "ips": round(fleet.total_instructions / fleet.host_seconds)
            if fleet.host_seconds else None,
            "digests": [r.session_digest[:12] for r in fleet.results],
        }
    return scaling


def _geomean(values):
    values = [v for v in values if v]
    if not values:
        return None
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET)
    parser.add_argument("--benchmarks", nargs="*", default=None)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--fleet-benchmark", default="fileio",
                        help="workload for the fleet-scaling section")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: one workload, small budget")
    args = parser.parse_args(argv)

    names = args.benchmarks or [p.name for p in ALL_PROFILES]
    try:
        for name in names:
            profile_by_name(name)
        profile_by_name(args.fleet_benchmark)
    except WorkloadError as exc:
        parser.error(str(exc))
    budget = args.budget
    widths = FLEET_WIDTHS
    if args.smoke:
        names = names[:1]
        budget = min(budget, SMOKE_BUDGET)
        widths = (1, 2)

    report: dict = {
        "budget": budget,
        "frame_records": FRAME_RECORDS,
        "queue_depth": QUEUE_DEPTH,
        "checkpoint_period_s": CHECKPOINT_PERIOD_S,
        "benchmarks": {},
    }
    for name in names:
        print(f"[bench_pipeline] {name} (budget {budget}) ...", flush=True)
        entry = bench_workload(name, budget)
        report["benchmarks"][name] = entry
        print(f"    sequential {entry['sequential']['sim_cycles']:>12,} "
              f"sim cycles   pipelined "
              f"{entry['pipelined']['sim_cycles']:>12,}   "
              f"speedup {entry['sim_speedup']}x "
              f"(host {entry['host_speedup']}x), "
              f"equal={entry['equivalent']}", flush=True)

    print(f"[bench_pipeline] fleet scaling on {args.fleet_benchmark} "
          f"(widths {widths}) ...", flush=True)
    fleet_budget = min(budget, 300_000)
    report["fleet"] = {
        "benchmark": args.fleet_benchmark,
        "budget": fleet_budget,
        "scaling": bench_fleet(args.fleet_benchmark, fleet_budget, widths),
    }
    for width, stats in report["fleet"]["scaling"].items():
        print(f"    width {width}: {stats['host_seconds']:.2f}s, "
              f"{stats['ips']:,} instr/s ({stats['backend']}, "
              f"{stats['workers']} workers)", flush=True)

    entries = report["benchmarks"].values()
    report["aggregate"] = {
        "sim_speedup_geomean": round(
            _geomean([e["sim_speedup"] for e in entries]) or 0, 3),
        "host_speedup_geomean": round(
            _geomean([e["host_speedup"] for e in entries]) or 0, 3),
        "all_equivalent": all(
            e["equivalent"]["session_bytes_equal"]
            and e["equivalent"]["verdicts_equal"] for e in entries),
        #: Host cores available when this file was generated — host-side
        #: overlap is bounded by this (1 core = no host speedup).
        "host_parallelism": os.cpu_count(),
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_pipeline] sim speedup geomean "
          f"{report['aggregate']['sim_speedup_geomean']}x "
          f"(host {report['aggregate']['host_speedup_geomean']}x on "
          f"{report['aggregate']['host_parallelism']} core(s)); "
          f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
