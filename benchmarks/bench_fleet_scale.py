"""Fleet-scale service harness: scheduler throughput under a deep queue.

The replay service (`repro serve`, ``src/repro/service``) exists so one
box can absorb an arbitrary backlog of recorded sessions and grind
through them with crash-safe bookkeeping.  This harness measures what
that bookkeeping costs at scale: it boots a real :class:`ServiceDaemon`,
submits 100–1000 sessions over the real socket protocol (a mixed batch —
mostly clean CR catch-up, every tenth an alarm-bearing attack session,
exercising the AR-over-CR priority path), and reports

* **submission throughput** — accepted (write-ahead fsync'd) submits/sec;
* **completion throughput** — sessions/sec from first submit to last
  ``done`` event;
* **latency percentiles** — queue wait (submit → first launch), run
  (first launch → done), and end-to-end completion (submit → done),
  p50/p99 each, straight from the durable queue journal's wall clocks.

Emits ``BENCH_fleet_scale.json``.  ``--min-sessions-per-sec`` turns the
completion throughput into a CI gate (exit 1 below the floor), which the
``fleet-service`` job uses as its perf-regression tripwire.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet_scale.py             # 100 sessions
    PYTHONPATH=src python benchmarks/bench_fleet_scale.py --sessions 1000
    PYTHONPATH=src python benchmarks/bench_fleet_scale.py --smoke     # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import tempfile
import threading
import time

from repro.service import ServiceClient, ServiceDaemon, default_endpoint
from repro.store import load_job_queue_state

DEFAULT_SESSIONS = 100
SMOKE_SESSIONS = 12
#: Per-session instruction budget: small on purpose — the harness
#: measures the scheduler, not the simulator.
DEFAULT_BUDGET = 60_000
SMOKE_BUDGET = 30_000
CHECKPOINT_PERIOD_S = 0.2
#: Round-robin workload mix; every tenth submission carries an attack.
MIX = ("fileio", "apache", "make", "mysql", "radiosity")

DEFAULT_OUT = (pathlib.Path(__file__).resolve().parent.parent
               / "BENCH_fleet_scale.json")


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    position = min(len(sorted_values) - 1,
                   int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[position]


def _spec(index: int, budget: int) -> dict:
    return {
        "benchmark": MIX[index % len(MIX)],
        "seed": 2018 + index,
        "attack": "rop" if index % 10 == 9 else None,
        "max_instructions": budget,
        "period_s": CHECKPOINT_PERIOD_S,
    }


def bench_service(sessions: int, budget: int, workers: int,
                  store_dir: str) -> dict:
    daemon = ServiceDaemon(store_dir, workers=workers, queue_limit=sessions,
                           poll_s=0.02, store_fsync="never")
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 30.0
    while not os.path.exists(daemon.endpoint):
        if time.monotonic() > deadline:
            raise RuntimeError("service daemon never opened its socket")
        time.sleep(0.01)

    client = ServiceClient(default_endpoint(store_dir))
    submit_start = time.perf_counter()
    for index in range(sessions):
        response = client.submit(_spec(index, budget))
        assert response["ok"], response
    submit_seconds = time.perf_counter() - submit_start

    drain_start = time.perf_counter()
    final = client.drain(wait=True, stop=True,
                         timeout_s=max(600.0, sessions * 10.0))
    elapsed = time.perf_counter() - drain_start
    thread.join(timeout=60.0)
    daemon.shutdown()

    state = load_job_queue_state(store_dir)
    stats = state.stats()
    completes = sorted(job.finished_wall - job.submitted_wall
                       for job in state.jobs
                       if job.state == "done" and job.finished_wall)
    return {
        "sessions": sessions,
        "budget": budget,
        "workers": workers,
        "submit_seconds": round(submit_seconds, 4),
        "submits_per_sec": round(sessions / submit_seconds, 2)
        if submit_seconds else None,
        "elapsed_seconds": round(elapsed, 4),
        "sessions_per_sec": round(stats.done / elapsed, 3)
        if elapsed else None,
        "done": stats.done,
        "quarantined": stats.quarantined,
        "wait_p50_s": round(stats.wait_p50_s, 4),
        "wait_p99_s": round(stats.wait_p99_s, 4),
        "run_p50_s": round(stats.run_p50_s, 4),
        "run_p99_s": round(stats.run_p99_s, 4),
        "complete_p50_s": round(_percentile(completes, 0.50), 4),
        "complete_p99_s": round(_percentile(completes, 0.99), 4),
        "all_done": stats.done == sessions and final["quiet"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=DEFAULT_SESSIONS,
                        help="queued sessions (the paper-scale sweep uses "
                             "100-1000)")
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET)
    parser.add_argument("--workers", type=int,
                        default=min(4, os.cpu_count() or 2))
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--min-sessions-per-sec", type=float, default=None,
                        help="fail (exit 1) below this completion "
                             "throughput floor")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: fewer sessions, smaller budget")
    args = parser.parse_args(argv)

    sessions = args.sessions
    budget = args.budget
    if args.smoke:
        sessions = min(sessions, SMOKE_SESSIONS)
        budget = min(budget, SMOKE_BUDGET)

    print(f"[bench_fleet_scale] {sessions} sessions, budget {budget}, "
          f"{args.workers} workers ...", flush=True)
    with tempfile.TemporaryDirectory(prefix="bench-fleet-scale-") as scratch:
        report = bench_service(sessions, budget, args.workers, scratch)

    print(f"    submitted at {report['submits_per_sec']:,} submits/s "
          f"(write-ahead fsync per accept)")
    print(f"    completed {report['done']}/{sessions} at "
          f"{report['sessions_per_sec']} sessions/s "
          f"({report['quarantined']} quarantined)")
    print(f"    wait p50/p99 {report['wait_p50_s']}/{report['wait_p99_s']}s  "
          f"run p50/p99 {report['run_p50_s']}/{report['run_p99_s']}s  "
          f"complete p50/p99 {report['complete_p50_s']}/"
          f"{report['complete_p99_s']}s")

    ok = report["all_done"]
    if args.min_sessions_per_sec is not None:
        floor_ok = (report["sessions_per_sec"] or 0.0) >= \
            args.min_sessions_per_sec
        report["floor_sessions_per_sec"] = args.min_sessions_per_sec
        report["floor_ok"] = floor_ok
        if not floor_ok:
            print(f"    FAIL: {report['sessions_per_sec']} sessions/s is "
                  f"below the {args.min_sessions_per_sec} floor")
        ok &= floor_ok
    report["ok"] = ok
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_fleet_scale] report written to {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
