"""Section 8.4: the time window to respond to an attack.

Paper: the alarm-to-verdict window averages a few (guest) seconds, the
log generated inside the window is small, and the checkpoints the system
must retain follow the window/period + 2 rule — plus N for N seconds of
requested pre-attack history, or unbounded retention for full forensics.
"""

import pytest

from repro import (
    APACHE,
    RecorderOptions,
    RnRSafe,
    RnRSafeOptions,
    build_workload,
    deliver_rop_attack,
)
from repro.core.response import checkpoints_needed
from repro.replay import CheckpointingOptions

from benchmarks._common import BUDGET, emit


@pytest.fixture(scope="module")
def windows():
    spec, chain = deliver_rop_attack(build_workload(APACHE))
    options = RnRSafeOptions(
        recorder=RecorderOptions(max_instructions=BUDGET),
        checkpointing=CheckpointingOptions(period_s=1.0),
    )
    report = RnRSafe(spec, options).run()
    return spec, report


class TestSection84:
    def test_report(self, windows):
        spec, report = windows
        lines = ["Section 8.4: attack response windows"]
        for outcome in report.outcomes:
            response = outcome.response
            lines.append(
                f"{outcome.verdict.kind.value:<16} "
                f"{response.summary(spec.config)}"
            )
        window_s = [o.response.window_seconds(spec.config)
                    for o in report.attacks]
        if window_s:
            mean = sum(window_s) / len(window_s)
            lines.append(f"mean attack window: {mean:.2f}s "
                         "(paper: 'on average a few seconds')")
            lines.append(
                "checkpoints to retain at 1s period: "
                f"{checkpoints_needed(max(window_s), 1.0)} "
                "(window + 2 rule)"
            )
        emit("sec84_response_window", lines)

    def test_window_is_a_few_guest_seconds(self, windows):
        spec, report = windows
        for outcome in report.attacks:
            seconds = outcome.response.window_seconds(spec.config)
            assert 0.0 < seconds < 120.0

    def test_window_log_is_a_small_fraction(self, windows):
        """The log generated inside the window is MBs in the paper —
        here, a small fraction of the full log."""
        spec, report = windows
        total = report.recording.log.total_bytes
        for outcome in report.attacks:
            assert outcome.response.log_bytes_in_window < total

    def test_lag_plus_analysis_composition(self, windows):
        spec, report = windows
        for outcome in report.outcomes:
            response = outcome.response
            assert response.window_cycles == (
                response.lag_cycles + response.analysis_cycles
            )

    def test_retention_rule_covers_observed_windows(self, windows):
        spec, report = windows
        for outcome in report.attacks:
            seconds = outcome.response.window_seconds(spec.config)
            needed = checkpoints_needed(seconds, 1.0)
            assert needed >= 3
            # The CR actually retained at least as much as needed when
            # running with unbounded retention.
            assert outcome.response.checkpoints_retained >= 1

    def test_indefinite_retention_supported(self, windows):
        """'checkpoints can be stored indefinitely, if the user wants the
        entire history recorded'."""
        spec, report = windows
        store = report.checkpointing.store
        assert store.recycled == 0  # default retention: keep everything
        assert store.storage_words > 0


class TestSection84Timing:
    def test_response_window_accounting(self, benchmark, windows):
        spec, report = windows
        outcome = report.outcomes[0]

        def summarize():
            return outcome.response.summary(spec.config)

        text = benchmark(summarize)
        assert "window" in text
