"""Simulator throughput harness: instructions/second for the three hot loops.

Every figure in this reproduction bottoms out in one of three loops —
recording (Fig 5), checkpointing replay (Fig 7), and alarm replay (Fig 9) —
so this harness times all three over the workload suite and emits
``BENCH_throughput.json``.  The numbers are *host* wall-clock throughput of
the simulator itself (how fast the Python interpreter pushes guest
instructions), not simulated guest time; they are the perf trajectory every
future PR is measured against.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py              # full run
    PYTHONPATH=src python benchmarks/bench_throughput.py --smoke      # CI smoke
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --benchmarks apache mysql --budget 500000 --out my.json

See ``docs/PERFORMANCE.md`` for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.core.parallel import resolve_alarms_parallel
from repro.replay.alarm import AlarmReplayer
from repro.replay.checkpointing import (
    CheckpointingOptions,
    CheckpointingReplayer,
)
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.errors import WorkloadError
from repro.workloads import ALL_PROFILES, build_workload, profile_by_name

DEFAULT_BUDGET = 1_000_000
SMOKE_BUDGET = 150_000

#: Where the results land unless --out overrides it (repo root).
DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def _timed(fn):
    """Run ``fn`` and return (result, elapsed_seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _phase(instructions: int, seconds: float) -> dict:
    return {
        "instructions": instructions,
        "seconds": round(seconds, 4),
        "ips": round(instructions / seconds) if seconds > 0 else None,
    }


def bench_workload(name: str, budget: int, ar_backend: str | None) -> dict:
    """Time record, CR replay, and AR replay for one paper benchmark."""
    spec = build_workload(profile_by_name(name))
    result: dict = {}

    recorder = Recorder(spec, RecorderOptions(max_instructions=budget))
    run, seconds = _timed(recorder.run)
    result["record"] = _phase(run.metrics.instructions, seconds)

    replayer = CheckpointingReplayer(spec, run.log, CheckpointingOptions())
    cr, seconds = _timed(replayer.run_to_end)
    result["cr_replay"] = _phase(cr.replay.metrics.instructions, seconds)

    # Alarm replay: launch an AR from the latest checkpoint preceding the
    # first unresolved alarm (the common Figure 9 path).  Workloads without
    # residual alarms report null.
    if cr.pending_alarms:
        alarm = cr.pending_alarms[0]
        checkpoint = cr.store.latest_before(alarm.icount)
        ar = AlarmReplayer(
            spec, run.log, alarm,
            checkpoint=checkpoint,
            store=cr.store if checkpoint is not None else None,
        )
        start_icount = ar.machine.cpu.icount
        _, seconds = _timed(ar.analyze)
        result["ar_replay"] = _phase(
            ar.machine.cpu.icount - start_icount, seconds,
        )

        resolution, seconds = _timed(
            lambda: resolve_alarms_parallel(
                spec, run.log, cr.pending_alarms, store=cr.store,
                backend=ar_backend,
            )
        )
        result["ar_parallel"] = {
            "alarms": len(cr.pending_alarms),
            "backend": ar_backend or "thread",
            "seconds": round(seconds, 4),
            "verdicts": [v.kind.value for v in resolution.verdicts],
        }
    else:
        result["ar_replay"] = None
        result["ar_parallel"] = None
    return result


def _geomean(values: list[float]) -> float | None:
    values = [v for v in values if v]
    if not values:
        return None
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                        help="recording instruction budget per workload")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="workload subset (default: the full suite)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="output JSON path")
    parser.add_argument("--ar-backend", choices=("thread", "process"),
                        default=None,
                        help="parallel-AR backend (default: config default)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: one workload, small budget")
    args = parser.parse_args(argv)

    names = args.benchmarks or [p.name for p in ALL_PROFILES]
    try:
        for name in names:
            profile_by_name(name)
    except WorkloadError as exc:
        parser.error(str(exc))
    budget = args.budget
    if args.smoke:
        names = names[:1]
        budget = min(budget, SMOKE_BUDGET)

    report: dict = {
        "budget": budget,
        "benchmarks": {},
    }
    for name in names:
        print(f"[bench_throughput] {name} (budget {budget}) ...",
              flush=True)
        entry = bench_workload(name, budget, args.ar_backend)
        report["benchmarks"][name] = entry
        for phase in ("record", "cr_replay", "ar_replay"):
            stats = entry.get(phase)
            if stats:
                print(f"    {phase:<10} {stats['ips']:>10,} instr/s "
                      f"({stats['instructions']:,} instr in "
                      f"{stats['seconds']:.2f}s)", flush=True)

    report["aggregate"] = {
        "record_ips_geomean": _geomean(
            [e["record"]["ips"] for e in report["benchmarks"].values()]),
        "cr_replay_ips_geomean": _geomean(
            [e["cr_replay"]["ips"] for e in report["benchmarks"].values()]),
        "ar_replay_ips_geomean": _geomean(
            [e["ar_replay"]["ips"]
             for e in report["benchmarks"].values() if e["ar_replay"]]),
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_throughput] wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
