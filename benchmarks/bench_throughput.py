"""Simulator throughput harness: instructions/second for the three hot loops.

Every figure in this reproduction bottoms out in one of three loops —
recording (Fig 5), checkpointing replay (Fig 7), and alarm replay (Fig 9) —
so this harness times all three over the workload suite and emits
``BENCH_throughput.json``.  The numbers are *host* wall-clock throughput of
the simulator itself (how fast the Python interpreter pushes guest
instructions), not simulated guest time; they are the perf trajectory every
future PR is measured against.

Each workload is run under **both execution backends** (``interp``, the
reference interpreter, and ``trace``, the trace-cache translated fast
path) and the entry carries an ``equivalent`` flag: the trace run must
reproduce the interp run's log bytes, final CPU state, machine digest,
and checkpoint chain exactly, or the whole harness exits nonzero — a
speedup that changes results is a bug, not a result.

Workloads whose plain recording leaves no pending alarms get their
``ar_replay`` / ``ar_parallel`` phases from a ROP-attack variant of the
same workload (``ar_source: "rop_attack"``), so the AR columns are
populated for the full suite instead of reporting null.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py              # full run
    PYTHONPATH=src python benchmarks/bench_throughput.py --smoke      # CI smoke
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --benchmarks apache mysql --budget 500000 --out my.json

See ``docs/PERFORMANCE.md`` for how to read the output.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time

from repro.core.parallel import resolve_alarms_parallel
from repro.replay.alarm import AlarmReplayer
from repro.replay.checkpointing import (
    CheckpointingOptions,
    CheckpointingReplayer,
)
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.errors import WorkloadError
from repro.workloads import ALL_PROFILES, build_workload, profile_by_name

DEFAULT_BUDGET = 1_000_000
SMOKE_BUDGET = 150_000

#: Where the results land unless --out overrides it (repo root).
DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def _timed(fn):
    """Run ``fn`` and return (result, elapsed_seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _phase(instructions: int, seconds: float) -> dict:
    return {
        "instructions": instructions,
        "seconds": round(seconds, 4),
        "ips": round(instructions / seconds) if seconds > 0 else None,
    }


def _with_backend(spec, backend: str):
    return dataclasses.replace(
        spec, config=dataclasses.replace(spec.config, exec_backend=backend),
    )


def _record_and_cr(spec, budget: int):
    """Record then CR-replay one spec; return timings plus ground truth."""
    recorder = Recorder(spec, RecorderOptions(max_instructions=budget))
    run, record_s = _timed(recorder.run)
    replayer = CheckpointingReplayer(spec, run.log, CheckpointingOptions())
    cr, cr_s = _timed(replayer.run_to_end)
    truth = {
        "log_bytes": run.log.to_bytes(),
        "final_state": replayer.machine.cpu.capture_state(),
        "machine_digest": replayer.machine.state_digest(),
        "checkpoints": tuple(
            (c.icount, c.cpu_state) for c in cr.store.all()
        ),
    }
    return run, cr, _phase(run.metrics.instructions, record_s), \
        _phase(cr.replay.metrics.instructions, cr_s), truth


def bench_workload(name: str, budget: int, ar_backend: str | None) -> dict:
    """Time record, CR, and AR for one benchmark under both backends."""
    spec = build_workload(profile_by_name(name))
    result: dict = {}

    run, cr, record_phase, cr_phase, truth = _record_and_cr(spec, budget)
    result["record"] = record_phase
    result["cr_replay"] = cr_phase

    _, _, trace_record, trace_cr, trace_truth = _record_and_cr(
        _with_backend(spec, "trace"), budget,
    )
    result["trace"] = {"record": trace_record, "cr_replay": trace_cr}
    result["equivalent"] = truth == trace_truth
    if record_phase["ips"] and trace_record["ips"]:
        result["record_speedup"] = round(
            trace_record["ips"] / record_phase["ips"], 2)
    if cr_phase["ips"] and trace_cr["ips"]:
        result["cr_replay_speedup"] = round(
            trace_cr["ips"] / cr_phase["ips"], 2)

    # Alarm replay: launch an AR from the latest checkpoint preceding the
    # first unresolved alarm (the common Figure 9 path).  A workload whose
    # plain run leaves no residual alarms gets the same measurement from
    # its ROP-attack variant, which always does.
    ar_spec, ar_run, ar_cr = spec, run, cr
    result["ar_source"] = "native"
    if not cr.pending_alarms:
        from repro.attacks import deliver_rop_attack

        ar_spec, _ = deliver_rop_attack(spec)
        ar_recorder = Recorder(ar_spec,
                               RecorderOptions(max_instructions=budget))
        ar_run = ar_recorder.run()
        ar_cr = CheckpointingReplayer(
            ar_spec, ar_run.log, CheckpointingOptions()).run_to_end()
        result["ar_source"] = "rop_attack"
    if ar_cr.pending_alarms:
        alarm = ar_cr.pending_alarms[0]
        checkpoint = ar_cr.store.latest_before(alarm.icount)
        ar = AlarmReplayer(
            ar_spec, ar_run.log, alarm,
            checkpoint=checkpoint,
            store=ar_cr.store if checkpoint is not None else None,
        )
        start_icount = ar.machine.cpu.icount
        _, seconds = _timed(ar.analyze)
        result["ar_replay"] = _phase(
            ar.machine.cpu.icount - start_icount, seconds,
        )

        resolution, seconds = _timed(
            lambda: resolve_alarms_parallel(
                ar_spec, ar_run.log, ar_cr.pending_alarms, store=ar_cr.store,
                backend=ar_backend,
            )
        )
        result["ar_parallel"] = {
            "alarms": len(ar_cr.pending_alarms),
            "backend": ar_backend or "thread",
            "seconds": round(seconds, 4),
            "verdicts": [v.kind.value for v in resolution.verdicts],
        }
    else:
        result["ar_replay"] = None
        result["ar_parallel"] = None
    return result


def _geomean(values: list[float]) -> float | None:
    values = [v for v in values if v]
    if not values:
        return None
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                        help="recording instruction budget per workload")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="workload subset (default: the full suite)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="output JSON path")
    parser.add_argument("--ar-backend", choices=("thread", "process"),
                        default=None,
                        help="parallel-AR backend (default: config default)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: one workload, small budget")
    args = parser.parse_args(argv)

    names = args.benchmarks or [p.name for p in ALL_PROFILES]
    try:
        for name in names:
            profile_by_name(name)
    except WorkloadError as exc:
        parser.error(str(exc))
    budget = args.budget
    if args.smoke:
        names = names[:1]
        budget = min(budget, SMOKE_BUDGET)

    report: dict = {
        "budget": budget,
        "benchmarks": {},
    }
    for name in names:
        print(f"[bench_throughput] {name} (budget {budget}) ...",
              flush=True)
        entry = bench_workload(name, budget, args.ar_backend)
        report["benchmarks"][name] = entry
        for phase in ("record", "cr_replay", "ar_replay"):
            stats = entry.get(phase)
            if stats:
                print(f"    {phase:<10} {stats['ips']:>10,} instr/s "
                      f"({stats['instructions']:,} instr in "
                      f"{stats['seconds']:.2f}s)", flush=True)
        for phase in ("record", "cr_replay"):
            stats = entry["trace"][phase]
            speedup = entry.get(f"{phase}_speedup")
            print(f"    trace {phase:<10} {stats['ips']:>10,} instr/s"
                  + (f" ({speedup}x)" if speedup else ""), flush=True)
        print(f"    equivalent: {entry['equivalent']}", flush=True)

    entries = list(report["benchmarks"].values())
    report["aggregate"] = {
        "record_ips_geomean": _geomean([e["record"]["ips"] for e in entries]),
        "cr_replay_ips_geomean": _geomean(
            [e["cr_replay"]["ips"] for e in entries]),
        "ar_replay_ips_geomean": _geomean(
            [e["ar_replay"]["ips"] for e in entries if e["ar_replay"]]),
        "trace_record_ips_geomean": _geomean(
            [e["trace"]["record"]["ips"] for e in entries]),
        "trace_cr_replay_ips_geomean": _geomean(
            [e["trace"]["cr_replay"]["ips"] for e in entries]),
        "trace_record_speedup_geomean": _geomean(
            [e.get("record_speedup") for e in entries]),
        "trace_cr_replay_speedup_geomean": _geomean(
            [e.get("cr_replay_speedup") for e in entries]),
        "all_equivalent": all(e["equivalent"] for e in entries),
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_throughput] wrote {args.out}")
    if not report["aggregate"]["all_equivalent"]:
        print("[bench_throughput] ERROR: trace backend diverged from "
              "interp on at least one workload", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
