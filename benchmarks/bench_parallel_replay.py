"""Epoch-parallel CR replay scaling harness.

Times the checkpoint-partitioned parallel CR
(:mod:`repro.replay.epoch` + :func:`repro.core.parallel.replay_parallel`)
against the sequential ``period_s=None`` CR over the workload suite and
emits ``BENCH_parallel_replay.json``: wall-clock speedup at 1/2/4/8
workers under both execution backends (``interp`` and ``trace``).

**Methodology.**  Each workload is recorded once with an 8-way epoch
plan (boundary captures are zero-cost snapshots — the log bytes are
identical to an unplanned recording).  For every worker count the plan
is thinned to that partition, each epoch's replay is timed
*individually*, and the parallel wall-clock is modeled as the greedy-LPT
makespan of those measured epoch durations across the worker lanes
(:func:`repro.core.pipeline.epoch_makespan`) plus the measured stitch
time.  This mirrors how the repo's pipeline benchmarks model overlap:
epoch replays share zero state — each worker seeds a private machine
from its boundary checkpoint and consumes only its log slice — so on a
multi-core host the lanes run wall-clock concurrent, while CPython's
GIL (and single-core CI hosts) would serialize a naive end-to-end
timing and measure the host, not the architecture.

The ``equivalent`` flag is *not* modeled: the exact stitched result of
the measured epoch replays is compared observable-for-observable
(alarms, dismissals, per-alarm CR cycles, sentinel verifications, final
machine digest, final CPU state) against the sequential ground truth,
and :func:`replay_parallel` is additionally driven end-to-end at 4
workers as an engine check.  A speedup that changes results is a bug,
not a result — any inequivalence fails the harness.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_replay.py           # full run
    PYTHONPATH=src python benchmarks/bench_parallel_replay.py --smoke   # CI smoke
    PYTHONPATH=src python benchmarks/bench_parallel_replay.py \
        --benchmarks apache mysql --budget 500000 --out my.json

See ``docs/PERFORMANCE.md`` ("Parallel replay") for how to read the
output.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time

from repro.core.parallel import replay_parallel
from repro.core.pipeline import epoch_makespan
from repro.errors import WorkloadError
from repro.replay.checkpointing import (
    CheckpointingOptions,
    CheckpointingReplayer,
)
from repro.replay.epoch import (
    plan_epoch_boundaries,
    replay_epoch,
    stitch_epoch_results,
    thin_epoch_plan,
)
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.workloads import ALL_PROFILES, build_workload, profile_by_name

DEFAULT_BUDGET = 1_000_000
SMOKE_BUDGET = 150_000
#: Worker counts reported; the plan is cut 8 ways so every count divides
#: the partition evenly (a 4-worker plan is the 8-way plan thinned 2:1).
WORKER_COUNTS = (1, 2, 4, 8)
MAX_WORKERS = WORKER_COUNTS[-1]
#: Acceptance gate: geomean CR-replay speedup at 4 workers on the trace
#: backend (the deployment configuration).
GATE_WORKERS = 4
GATE_SPEEDUP = 2.5

DEFAULT_OUT = (pathlib.Path(__file__).resolve().parent.parent
               / "BENCH_parallel_replay.json")

SEQ_OPTIONS = CheckpointingOptions(period_s=None)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _with_backend(spec, backend: str):
    return dataclasses.replace(
        spec, config=dataclasses.replace(spec.config, exec_backend=backend),
    )


def _geomean(values):
    values = [value for value in values if value]
    if not values:
        return None
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def _truth(spec, log):
    """Sequential ground truth plus its observable fingerprint."""
    replayer = CheckpointingReplayer(spec, log, options=SEQ_OPTIONS)
    result, seconds = _timed(replayer.run_to_end)
    fingerprint = {
        "alarms_seen": result.alarms_seen,
        "dismissed_underflows": result.dismissed_underflows,
        "alarm_cycles": dict(result.alarm_cycles),
        "alarm_positions": dict(result.alarm_positions),
        "sentinels_verified": result.sentinels_verified,
        "pending": tuple(alarm.icount for alarm in result.pending_alarms),
        "machine_digest": replayer.machine.fast_digest(),
        "final_state": replayer.machine.cpu.capture_state(),
    }
    return result, fingerprint, seconds


def _stitched_fingerprint(par_result, final_digest, final_state):
    return {
        "alarms_seen": par_result.alarms_seen,
        "dismissed_underflows": par_result.dismissed_underflows,
        "alarm_cycles": dict(par_result.alarm_cycles),
        "alarm_positions": dict(par_result.alarm_positions),
        "sentinels_verified": par_result.sentinels_verified,
        "pending": tuple(alarm.icount for alarm in par_result.pending_alarms),
        "machine_digest": final_digest,
        "final_state": final_state,
    }


def _sweep(spec, log, plan: EpochPlan, workers: int,
           sequential_s: float, fingerprint: dict) -> dict:
    """Time every epoch of one partition and model the parallel wall."""
    results = []
    durations = []
    for index in range(plan.epochs):
        result, seconds = _timed(
            lambda index=index: replay_epoch(spec, log, plan, index))
        results.append(result)
        durations.append(seconds)
    stitched, stitch_s = _timed(
        lambda: stitch_epoch_results(spec, plan, results))
    schedule = epoch_makespan(durations, workers)
    modeled = schedule.makespan + stitch_s
    equivalent = _stitched_fingerprint(
        stitched, results[-1].final_digest, results[-1].final_cpu_state,
    ) == fingerprint
    return {
        "epochs": plan.epochs,
        "epoch_seconds": [round(seconds, 4) for seconds in durations],
        "epoch_instructions": [result.instructions for result in results],
        "makespan_s": round(schedule.makespan, 4),
        "stitch_s": round(stitch_s, 4),
        "modeled_parallel_s": round(modeled, 4),
        "speedup": round(sequential_s / modeled, 2) if modeled > 0 else None,
        "equivalent": equivalent,
    }


def bench_workload(name: str, budget: int, worker_counts) -> dict:
    """Scaling sweep for one benchmark under both execution backends."""
    entry: dict = {"backends": {}}
    for backend in ("interp", "trace"):
        spec = _with_backend(build_workload(profile_by_name(name)), backend)
        recording = Recorder(spec, RecorderOptions(
            max_instructions=budget,
            # Auto-tuned plan: 4x oversampled candidate boundaries, so
            # runs that end short of the budget still thin to balanced
            # partitions over their actual icount span.
            epoch_boundaries=plan_epoch_boundaries(budget, MAX_WORKERS,
                                                   oversample=4),
        )).run()
        plan = recording.epoch_plan
        end_icount = recording.metrics.instructions
        _, fingerprint, sequential_s = _truth(spec, recording.log)
        sweeps = {}
        for workers in worker_counts:
            sweeps[str(workers)] = _sweep(
                spec, recording.log,
                thin_epoch_plan(plan, workers, end_icount), workers,
                sequential_s, fingerprint,
            )
        # Engine check: the real scheduler (pool, as-completed dispatch,
        # stitcher) at the gate width must agree with the ground truth.
        par = replay_parallel(spec, recording.log, plan,
                              max_workers=GATE_WORKERS, backend="thread")
        engine_ok = _stitched_fingerprint(
            par.checkpointing,
            par.epoch_results[-1].final_digest,
            par.final_cpu_state,
        ) == fingerprint
        entry["backends"][backend] = {
            "sequential_s": round(sequential_s, 4),
            "workers": sweeps,
            "engine_equivalent": engine_ok,
        }
    entry["equivalent"] = all(
        sweep["equivalent"]
        for backend in entry["backends"].values()
        for sweep in backend["workers"].values()
    ) and all(backend["engine_equivalent"]
              for backend in entry["backends"].values())
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                        help="recording instruction budget per workload")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="workload subset (default: the full suite)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="output JSON path")
    parser.add_argument("--min-speedup", type=float, default=GATE_SPEEDUP,
                        help=f"gate: geomean speedup at {GATE_WORKERS} "
                             f"workers (trace backend) must reach this")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: one workload, small budget")
    args = parser.parse_args(argv)

    names = args.benchmarks or [profile.name for profile in ALL_PROFILES]
    try:
        for name in names:
            profile_by_name(name)
    except WorkloadError as exc:
        parser.error(str(exc))
    budget = args.budget
    if args.smoke:
        names = names[:1]
        budget = min(budget, SMOKE_BUDGET)

    report: dict = {
        "budget": budget,
        "worker_counts": list(WORKER_COUNTS),
        "methodology": (
            "per-epoch wall-clock measured individually; parallel wall "
            "modeled as greedy-LPT makespan over the worker lanes plus "
            "measured stitch time (epochs share zero state, so lanes are "
            "wall-clock concurrent off the GIL); equivalence verified "
            "against the sequential CR, never modeled"),
        "benchmarks": {},
    }
    for name in names:
        print(f"[bench_parallel_replay] {name} (budget {budget}) ...",
              flush=True)
        entry = bench_workload(name, budget, WORKER_COUNTS)
        report["benchmarks"][name] = entry
        for backend, data in entry["backends"].items():
            line = " ".join(
                f"{workers}w={sweep['speedup']}x"
                for workers, sweep in data["workers"].items())
            print(f"    {backend:<7} seq {data['sequential_s']:.2f}s  "
                  f"{line}", flush=True)
        print(f"    equivalent: {entry['equivalent']}", flush=True)

    entries = list(report["benchmarks"].values())
    gate_key = str(GATE_WORKERS)
    aggregate = {
        "all_equivalent": all(entry["equivalent"] for entry in entries),
    }
    for backend in ("interp", "trace"):
        for workers in WORKER_COUNTS:
            aggregate[f"{backend}_speedup_{workers}w_geomean"] = _geomean(
                [entry["backends"][backend]["workers"][str(workers)]
                 ["speedup"] for entry in entries])
    report["aggregate"] = aggregate
    report["gate"] = {
        "workers": GATE_WORKERS,
        "backend": "trace",
        "min_speedup": args.min_speedup,
        "speedup": aggregate[f"trace_speedup_{gate_key}w_geomean"],
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_parallel_replay] wrote {args.out}")

    if not aggregate["all_equivalent"]:
        print("[bench_parallel_replay] ERROR: a parallel replay diverged "
              "from the sequential CR", file=sys.stderr)
        return 1
    gate = report["gate"]["speedup"]
    if gate is None or gate < args.min_speedup:
        print(f"[bench_parallel_replay] ERROR: geomean speedup at "
              f"{GATE_WORKERS} workers (trace) is {gate} "
              f"< {args.min_speedup}", file=sys.stderr)
        return 1
    print(f"[bench_parallel_replay] gate passed: {gate:.2f}x >= "
          f"{args.min_speedup}x at {GATE_WORKERS} workers (trace)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
