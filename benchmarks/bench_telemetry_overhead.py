"""Telemetry-overhead harness: prove the nil sink is (almost) free.

Every telemetry call site in the hot paths is guarded by an
``if telemetry is not None`` check, and ``Telemetry.for_config`` returns
``None`` whenever ``SimulationConfig.telemetry`` is off — so a default
run pays only the guard, never a dict lookup or an allocation.  This
harness measures that claim and the cost of turning telemetry on:

* **disabled** — the default pipelined run (nil-sink path).  This is the
  exact configuration ``bench_pipeline.py`` measures, so any slowdown
  here is a slowdown of the headline pipeline numbers.
* **enabled** — the same run with ``config.telemetry = True``: real
  counters, span stamps, and end-of-run snapshots.

Host wall-clock is taken best-of-N (min over repeats) per variant to
shave scheduler noise.  The harness also re-asserts the zero-interference
contract on every pair: identical log bytes, final CPU state, and
verdicts — telemetry must never reach into the simulated machine, so the
*simulated* cycle counts (and hence ``bench_pipeline``'s ``sim_speedup``
geomean) are untouched by construction.

``--max-overhead PCT`` (used by CI) makes the run exit non-zero when the
enabled/disabled host-time geomean exceeds the threshold or any pair
diverges.  Emits ``BENCH_telemetry.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time

from repro.core.parallel import record_and_replay_pipelined
from repro.errors import WorkloadError
from repro.replay.checkpointing import CheckpointingOptions
from repro.rnr.recorder import RecorderOptions
from repro.workloads import ALL_PROFILES, build_workload, profile_by_name

DEFAULT_BUDGET = 400_000
SMOKE_BUDGET = 100_000
DEFAULT_REPEATS = 3
SMOKE_REPEATS = 2
FRAME_RECORDS = 2
QUEUE_DEPTH = 8
CHECKPOINT_PERIOD_S = 0.2

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"


def _spec(name: str, telemetry: bool):
    spec = build_workload(profile_by_name(name))
    if telemetry:
        spec = dataclasses.replace(
            spec, config=dataclasses.replace(spec.config, telemetry=True),
        )
    return spec


def _run(name: str, budget: int, telemetry: bool):
    return record_and_replay_pipelined(
        _spec(name, telemetry),
        RecorderOptions(max_instructions=budget),
        CheckpointingOptions(period_s=CHECKPOINT_PERIOD_S),
        backend="thread", frame_records=FRAME_RECORDS,
        queue_depth=QUEUE_DEPTH,
    )


def _best_of(name: str, budget: int, telemetry: bool, repeats: int):
    best_seconds, run = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        candidate = _run(name, budget, telemetry)
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds, run = elapsed, candidate
    return run, best_seconds


def _digest(run):
    verdicts = tuple(
        (v.kind.value, v.alarm.icount, v.alarm.kind)
        for v in (run.resolution.verdicts if run.resolution else ())
    )
    return (run.recording.log.to_bytes(), run.final_cpu_state, verdicts)


def _geomean(values):
    values = [v for v in values if v]
    if not values:
        return None
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET)
    parser.add_argument("--benchmarks", nargs="*", default=None)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail when the enabled/disabled host-time "
                             "geomean overhead exceeds this percentage")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: one workload, small budget")
    args = parser.parse_args(argv)

    names = args.benchmarks or [p.name for p in ALL_PROFILES]
    try:
        for name in names:
            profile_by_name(name)
    except WorkloadError as exc:
        parser.error(str(exc))
    budget, repeats = args.budget, args.repeats
    if args.smoke:
        names = names[:1]
        budget = min(budget, SMOKE_BUDGET)
        repeats = min(repeats, SMOKE_REPEATS)

    report: dict = {
        "budget": budget,
        "repeats": repeats,
        "benchmarks": {},
    }
    ratios, all_identical = [], True
    for name in names:
        print(f"[bench_telemetry] {name} (budget {budget}, "
              f"best of {repeats}) ...", flush=True)
        off_run, off_seconds = _best_of(name, budget, False, repeats)
        on_run, on_seconds = _best_of(name, budget, True, repeats)
        identical = _digest(off_run) == _digest(on_run)
        all_identical = all_identical and identical
        ratio = on_seconds / off_seconds if off_seconds else None
        if ratio:
            ratios.append(ratio)
        spans = len(on_run.telemetry.spans) if on_run.telemetry else 0
        report["benchmarks"][name] = {
            "instructions": off_run.recording.metrics.instructions,
            "disabled_host_seconds": round(off_seconds, 4),
            "enabled_host_seconds": round(on_seconds, 4),
            "overhead_pct": round((ratio - 1.0) * 100, 2) if ratio else None,
            "spans_captured": spans,
            "bit_identical": identical,
        }
        entry = report["benchmarks"][name]
        print(f"    disabled {off_seconds:.3f}s   enabled {on_seconds:.3f}s"
              f"   overhead {entry['overhead_pct']}%   "
              f"spans {spans}   identical={identical}", flush=True)

    geomean = _geomean(ratios)
    report["aggregate"] = {
        "overhead_geomean_pct": round((geomean - 1.0) * 100, 2)
        if geomean else None,
        "all_bit_identical": all_identical,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_telemetry] overhead geomean "
          f"{report['aggregate']['overhead_geomean_pct']}% "
          f"(identical={all_identical}); wrote {args.out}")

    if not all_identical:
        print("[bench_telemetry] FAIL: telemetry perturbed a run",
              file=sys.stderr)
        return 1
    if (args.max_overhead is not None and geomean is not None
            and (geomean - 1.0) * 100 > args.max_overhead):
        print(f"[bench_telemetry] FAIL: overhead geomean exceeds "
              f"{args.max_overhead}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
