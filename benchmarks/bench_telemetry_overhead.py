"""Telemetry-overhead harness: prove the nil sink is (almost) free.

Every telemetry call site in the hot paths is guarded by an
``if telemetry is not None`` check, and ``Telemetry.for_config`` returns
``None`` whenever ``SimulationConfig.telemetry`` is off — so a default
run pays only the guard, never a dict lookup or an allocation.  This
harness measures that claim and the cost of turning telemetry on:

* **disabled** — the default pipelined run (nil-sink path).  This is the
  exact configuration ``bench_pipeline.py`` measures, so any slowdown
  here is a slowdown of the headline pipeline numbers.
* **enabled** — the same run with ``config.telemetry = True``: real
  counters, span stamps, and end-of-run snapshots.
* **profiled** — telemetry plus the deterministic guest profiler
  (``config.profile``): icount-strided PC sampling with symbol/opcode
  attribution on both the recorder and the CR.
* **journaled** — telemetry persisted to a durable run store with
  ``fsync="always"``, the worst-case durability policy: every telemetry
  journal entry (and every frame) costs an fsync.

Every variant must stay bit-identical to **disabled** — the profiler and
the journal observe the run without perturbing it, so a digest mismatch
fails the bench before any overhead number is read.

Host wall-clock is taken best-of-N (min over repeats) per variant to
shave scheduler noise.  The harness also re-asserts the zero-interference
contract on every pair: identical log bytes, final CPU state, and
verdicts — telemetry must never reach into the simulated machine, so the
*simulated* cycle counts (and hence ``bench_pipeline``'s ``sim_speedup``
geomean) are untouched by construction.

``--max-overhead PCT`` (used by CI) makes the run exit non-zero when the
enabled/disabled host-time geomean exceeds the threshold or any pair
diverges.  Emits ``BENCH_telemetry.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time

from repro.core.parallel import record_and_replay_pipelined
from repro.errors import WorkloadError
from repro.replay.checkpointing import CheckpointingOptions
from repro.rnr.recorder import RecorderOptions
from repro.workloads import ALL_PROFILES, build_workload, profile_by_name

DEFAULT_BUDGET = 400_000
SMOKE_BUDGET = 100_000
DEFAULT_REPEATS = 3
SMOKE_REPEATS = 2
FRAME_RECORDS = 2
QUEUE_DEPTH = 8
CHECKPOINT_PERIOD_S = 0.2

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"


def _spec(name: str, telemetry: bool, profile: bool = False):
    spec = build_workload(profile_by_name(name))
    if telemetry or profile:
        spec = dataclasses.replace(
            spec, config=dataclasses.replace(spec.config, telemetry=telemetry,
                                             profile=profile),
        )
    return spec


def _run(name: str, budget: int, telemetry: bool, profile: bool = False,
         store_dir: str | None = None):
    run_store = None
    if store_dir is not None:
        import shutil

        from repro.rnr.session import SessionManifest
        from repro.store import RunStoreWriter

        shutil.rmtree(store_dir, ignore_errors=True)
        manifest = SessionManifest(benchmark=name, seed=2018,
                                   max_instructions=budget)
        run_store = RunStoreWriter(store_dir, manifest, fsync="always")
    return record_and_replay_pipelined(
        _spec(name, telemetry, profile),
        RecorderOptions(max_instructions=budget),
        CheckpointingOptions(period_s=CHECKPOINT_PERIOD_S),
        backend="thread", frame_records=FRAME_RECORDS,
        queue_depth=QUEUE_DEPTH, run_store=run_store,
    )


def _best_of(name: str, budget: int, telemetry: bool, repeats: int,
             profile: bool = False, store_dir: str | None = None):
    best_seconds, run = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        candidate = _run(name, budget, telemetry, profile, store_dir)
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds, run = elapsed, candidate
    return run, best_seconds


def _digest(run):
    verdicts = tuple(
        (v.kind.value, v.alarm.icount, v.alarm.kind)
        for v in (run.resolution.verdicts if run.resolution else ())
    )
    return (run.recording.log.to_bytes(), run.final_cpu_state, verdicts)


def _geomean(values):
    values = [v for v in values if v]
    if not values:
        return None
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET)
    parser.add_argument("--benchmarks", nargs="*", default=None)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail when the enabled/disabled host-time "
                             "geomean overhead exceeds this percentage")
    parser.add_argument("--max-profile-overhead", type=float, default=None,
                        help="fail when the profiled/disabled host-time "
                             "geomean overhead exceeds this percentage")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: one workload, small budget")
    args = parser.parse_args(argv)

    names = args.benchmarks or [p.name for p in ALL_PROFILES]
    try:
        for name in names:
            profile_by_name(name)
    except WorkloadError as exc:
        parser.error(str(exc))
    budget, repeats = args.budget, args.repeats
    if args.smoke:
        names = names[:1]
        budget = min(budget, SMOKE_BUDGET)
        repeats = min(repeats, SMOKE_REPEATS)

    report: dict = {
        "budget": budget,
        "repeats": repeats,
        "benchmarks": {},
    }
    ratios, profile_ratios, journal_ratios = [], [], []
    all_identical = True
    import tempfile

    store_root = tempfile.mkdtemp(prefix="bench-telemetry-")
    for name in names:
        print(f"[bench_telemetry] {name} (budget {budget}, "
              f"best of {repeats}) ...", flush=True)
        off_run, off_seconds = _best_of(name, budget, False, repeats)
        on_run, on_seconds = _best_of(name, budget, True, repeats)
        prof_run, prof_seconds = _best_of(name, budget, True, repeats,
                                          profile=True)
        store_dir = f"{store_root}/{name}"
        jrn_run, jrn_seconds = _best_of(name, budget, True, repeats,
                                        store_dir=store_dir)
        baseline = _digest(off_run)
        identical = baseline == _digest(on_run)
        prof_identical = baseline == _digest(prof_run)
        jrn_identical = baseline == _digest(jrn_run)
        all_identical = (all_identical and identical and prof_identical
                         and jrn_identical)
        ratio = on_seconds / off_seconds if off_seconds else None
        prof_ratio = prof_seconds / off_seconds if off_seconds else None
        jrn_ratio = jrn_seconds / off_seconds if off_seconds else None
        for bucket, value in ((ratios, ratio),
                              (profile_ratios, prof_ratio),
                              (journal_ratios, jrn_ratio)):
            if value:
                bucket.append(value)
        spans = len(on_run.telemetry.spans) if on_run.telemetry else 0
        samples = (prof_run.telemetry.profile.sample_count
                   if prof_run.telemetry and prof_run.telemetry.profile
                   else 0)

        def pct(value):
            return round((value - 1.0) * 100, 2) if value else None

        report["benchmarks"][name] = {
            "instructions": off_run.recording.metrics.instructions,
            "disabled_host_seconds": round(off_seconds, 4),
            "enabled_host_seconds": round(on_seconds, 4),
            "profiled_host_seconds": round(prof_seconds, 4),
            "journaled_host_seconds": round(jrn_seconds, 4),
            "overhead_pct": pct(ratio),
            "profiled_overhead_pct": pct(prof_ratio),
            "journaled_overhead_pct": pct(jrn_ratio),
            "spans_captured": spans,
            "profile_samples": samples,
            "bit_identical": identical,
            "profiled_bit_identical": prof_identical,
            "journaled_bit_identical": jrn_identical,
        }
        entry = report["benchmarks"][name]
        print(f"    disabled {off_seconds:.3f}s   enabled {on_seconds:.3f}s"
              f"   overhead {entry['overhead_pct']}%   "
              f"spans {spans}   identical={identical}", flush=True)
        print(f"    profiled {prof_seconds:.3f}s "
              f"({entry['profiled_overhead_pct']}%, {samples} samples, "
              f"identical={prof_identical})   "
              f"journaled/fsync-always {jrn_seconds:.3f}s "
              f"({entry['journaled_overhead_pct']}%, "
              f"identical={jrn_identical})", flush=True)
    import shutil

    shutil.rmtree(store_root, ignore_errors=True)

    geomean = _geomean(ratios)
    profile_geomean = _geomean(profile_ratios)
    journal_geomean = _geomean(journal_ratios)
    report["aggregate"] = {
        "overhead_geomean_pct": round((geomean - 1.0) * 100, 2)
        if geomean else None,
        "profiled_overhead_geomean_pct": round((profile_geomean - 1.0) * 100, 2)
        if profile_geomean else None,
        "journaled_overhead_geomean_pct": round((journal_geomean - 1.0) * 100, 2)
        if journal_geomean else None,
        "all_bit_identical": all_identical,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_telemetry] overhead geomean "
          f"{report['aggregate']['overhead_geomean_pct']}% "
          f"(profiled {report['aggregate']['profiled_overhead_geomean_pct']}%, "
          f"journaled {report['aggregate']['journaled_overhead_geomean_pct']}%, "
          f"identical={all_identical}); wrote {args.out}")

    if not all_identical:
        print("[bench_telemetry] FAIL: telemetry/profiler/journal "
              "perturbed a run", file=sys.stderr)
        return 1
    if (args.max_overhead is not None and geomean is not None
            and (geomean - 1.0) * 100 > args.max_overhead):
        print(f"[bench_telemetry] FAIL: overhead geomean exceeds "
              f"{args.max_overhead}%", file=sys.stderr)
        return 1
    if (args.max_profile_overhead is not None and profile_geomean is not None
            and (profile_geomean - 1.0) * 100 > args.max_profile_overhead):
        print(f"[bench_telemetry] FAIL: profiled overhead geomean exceeds "
              f"{args.max_profile_overhead}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
