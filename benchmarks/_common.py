"""Shared machinery for the figure-reproduction benchmarks.

Every benchmark module reproduces one table or figure from the paper's
evaluation: it computes the same rows/series, writes them to
``benchmarks/results/<name>.txt``, prints them, and asserts the
*qualitative shape* the paper reports (who wins, what dominates, where
the crossovers are).  Absolute values differ — the substrate is a
simulator, not the authors' Xeon — and EXPERIMENTS.md records both sides.

Heavy runs are cached per pytest session so the pytest-benchmark timing
tests and the shape assertions share one set of simulations.
"""

from __future__ import annotations

import functools
import pathlib

from repro.core.modes import ALL_RECORDING_SETUPS, record_benchmark
from repro.hypervisor.machine import MachineSpec
from repro.replay import CheckpointingOptions, CheckpointingReplayer
from repro.rnr.recorder import RecordingRun
from repro.workloads import ALL_PROFILES, build_workload

#: Instruction budget for full-size benchmark runs.
BUDGET = 3_000_000

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCHMARK_NAMES = tuple(profile.name for profile in ALL_PROFILES)


@functools.lru_cache(maxsize=8)
def workload(name: str) -> MachineSpec:
    """The full-size spec for one paper benchmark."""
    profile = next(p for p in ALL_PROFILES if p.name == name)
    return build_workload(profile)


@functools.lru_cache(maxsize=32)
def recording(name: str, setup_name: str = "Rec") -> RecordingRun:
    """One benchmark recorded under one named setup, cached."""
    setup = next(s for s in ALL_RECORDING_SETUPS if s.name == setup_name)
    return record_benchmark(workload(name), setup, max_instructions=BUDGET)


@functools.lru_cache(maxsize=32)
def checkpointing_replay(name: str, period_s: float | None):
    """One benchmark's CR run at one checkpoint period, cached."""
    run = recording(name, "Rec")
    replayer = CheckpointingReplayer(
        workload(name), run.log, CheckpointingOptions(period_s=period_s),
    )
    return replayer.run_to_end()


def emit(table_name: str, lines: list[str]):
    """Print a result table and persist it for EXPERIMENTS.md."""
    text = "\n".join(lines)
    print(f"\n{text}")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{table_name}.txt").write_text(text + "\n")


def format_row(label: str, values: dict[str, float],
               fmt: str = "{:>9.2f}") -> str:
    cells = "".join(fmt.format(value) for value in values.values())
    return f"{label:<12}{cells}"


def format_header(columns: list[str], width: int = 9) -> str:
    cells = "".join(f"{column:>{width}}" for column in columns)
    return f"{'':<12}{cells}"
