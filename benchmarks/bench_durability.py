"""Durability harness: what the crash-safe run store costs, per fsync policy.

The robustness tentpole (`repro.store`, `docs/RELIABILITY.md`) journals
every frame and checkpoint of a pipelined run to disk so a killed run
can resume bit-identically.  Durability is **off by default** and must
cost nothing when off; when on, the cost is the journal appends, the
checkpoint pickles, and — dominating everything — the fsync policy.
This harness measures all four shapes per workload and emits
``BENCH_durability.json``:

* **off** — a plain pipelined run (the baseline every other row is
  normalised against);
* **never / interval / always** — durable runs under each fsync policy,
  each checked bit-equivalent to the baseline (same log bytes, same
  verdicts, same final CPU state), with a recover-and-verify pass over
  the finished store.

Usage::

    PYTHONPATH=src python benchmarks/bench_durability.py            # full run
    PYTHONPATH=src python benchmarks/bench_durability.py --smoke    # CI smoke

See ``docs/RELIABILITY.md`` ("Durability & recovery") for the fsync
matrix this quantifies.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import tempfile
import time

from repro.core.parallel import record_and_replay_pipelined
from repro.errors import WorkloadError
from repro.replay.checkpointing import CheckpointingOptions
from repro.rnr.recorder import RecorderOptions
from repro.rnr.session import SessionManifest
from repro.store import RunStoreWriter, recover_run
from repro.workloads import ALL_PROFILES, profile_by_name

DEFAULT_BUDGET = 1_000_000
SMOKE_BUDGET = 150_000
FRAME_RECORDS = 2
CHECKPOINT_PERIOD_S = 0.2
POLICIES = ("never", "interval", "always")
#: Per-policy repetitions — fsync cost is noisy, the median is reported.
REPEATS = 3

DEFAULT_OUT = (pathlib.Path(__file__).resolve().parent.parent
               / "BENCH_durability.json")


def _verdict_keys(run):
    return [(v.kind.value, v.alarm.icount) for v in run.resolution.verdicts]


def _one_run(name: str, budget: int, store_path=None, fsync="interval"):
    """One pipelined run, durable when ``store_path`` is given."""
    manifest = SessionManifest(benchmark=name, seed=2018,
                               max_instructions=budget)
    store = None
    if store_path is not None:
        store = RunStoreWriter(str(store_path), manifest, fsync=fsync,
                               frame_records=FRAME_RECORDS)
    start = time.perf_counter()
    run = record_and_replay_pipelined(
        manifest.build_spec(),
        RecorderOptions(max_instructions=budget),
        CheckpointingOptions(period_s=CHECKPOINT_PERIOD_S),
        backend="thread", frame_records=FRAME_RECORDS,
        run_store=store,
    )
    return run, time.perf_counter() - start


def bench_workload(name: str, budget: int, scratch: pathlib.Path) -> dict:
    baseline, base_seconds = _one_run(name, budget)
    base_log = baseline.recording.log.to_bytes()
    entry: dict = {
        "instructions": baseline.recording.metrics.instructions,
        "log_records": len(baseline.recording.log),
        "off": {"host_seconds": round(base_seconds, 4)},
    }
    for policy in POLICIES:
        seconds = []
        store_bytes = 0
        equivalent = True
        recoverable = True
        for repeat in range(REPEATS):
            store_path = scratch / f"{name}-{policy}-{repeat}"
            shutil.rmtree(store_path, ignore_errors=True)
            run, elapsed = _one_run(name, budget, store_path, policy)
            seconds.append(elapsed)
            equivalent &= (
                run.recording.log.to_bytes() == base_log
                and run.final_cpu_state == baseline.final_cpu_state
                and _verdict_keys(run) == _verdict_keys(baseline)
            )
            point = recover_run(store_path)
            recoverable &= (point.recording_complete
                            and point.log.to_bytes() == base_log)
            store_bytes = sum(f.stat().st_size
                              for f in store_path.rglob("*") if f.is_file())
        seconds.sort()
        median = seconds[len(seconds) // 2]
        entry[policy] = {
            "host_seconds": round(median, 4),
            "overhead_pct": round(100.0 * (median - base_seconds)
                                  / base_seconds, 1) if base_seconds else None,
            "store_bytes": store_bytes,
            "equivalent": equivalent,
            "recoverable": recoverable,
        }
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET)
    parser.add_argument("--benchmarks", nargs="*", default=None)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: one workload, small budget")
    args = parser.parse_args(argv)

    names = args.benchmarks or [p.name for p in ALL_PROFILES]
    try:
        for name in names:
            profile_by_name(name)
    except WorkloadError as exc:
        parser.error(str(exc))
    budget = args.budget
    if args.smoke:
        names = names[:1]
        budget = min(budget, SMOKE_BUDGET)

    report: dict = {
        "budget": budget,
        "frame_records": FRAME_RECORDS,
        "checkpoint_period_s": CHECKPOINT_PERIOD_S,
        "repeats": REPEATS,
        "benchmarks": {},
    }
    ok = True
    with tempfile.TemporaryDirectory(prefix="bench-durability-") as scratch:
        for name in names:
            print(f"[bench_durability] {name} (budget {budget}) ...",
                  flush=True)
            entry = bench_workload(name, budget, pathlib.Path(scratch))
            report["benchmarks"][name] = entry
            for policy in POLICIES:
                row = entry[policy]
                ok &= row["equivalent"] and row["recoverable"]
                print(f"    {policy:<9} {row['host_seconds']:>8.4f}s  "
                      f"({row['overhead_pct']:+.1f}% vs off)  "
                      f"store {row['store_bytes']:,}B  "
                      f"equivalent={row['equivalent']} "
                      f"recoverable={row['recoverable']}", flush=True)

    report["all_equivalent"] = ok
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_durability] report written to {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
