"""Figure 7: checkpointing-replay overhead.

(a) Replay time under four checkpoint periods — none, 5 s, 1 s, 0.2 s —
    normalized to Rec.  Paper: RepNoChk ~1.48x, RepChk1 ~1.59x on
    average; shorter periods cost more; "checkpointing replay runs at a
    speed roughly comparable to recording", so it can be on all the time.
(b) Breakdown of RepChk1 over Rec.  Paper: asynchronous-interrupt
    injection dominates (counter skid + single-stepping); Chk is visible
    and grows with checkpoint frequency.
"""

import pytest

from repro.perf.account import Category, REPLAY_BREAKDOWN
from repro.perf.report import OverheadBreakdown

from benchmarks._common import (
    BENCHMARK_NAMES,
    checkpointing_replay,
    emit,
    format_header,
    format_row,
    recording,
    workload,
)

PERIODS = {"RepNoChk": None, "RepChk5": 5.0, "RepChk1": 1.0,
           "RepChk02": 0.2}


@pytest.fixture(scope="module")
def fig7a():
    table = {}
    for name in BENCHMARK_NAMES:
        rec_cycles = recording(name, "Rec").metrics.total_cycles
        table[name] = {
            label: (checkpointing_replay(name, period)
                    .replay.metrics.total_cycles / rec_cycles)
            for label, period in PERIODS.items()
        }
    return table


@pytest.fixture(scope="module")
def fig7b():
    return {
        name: OverheadBreakdown.from_account(
            name,
            checkpointing_replay(name, 1.0).replay.metrics.account,
            REPLAY_BREAKDOWN,
        )
        for name in BENCHMARK_NAMES
    }


class TestFig7a:
    def test_report(self, fig7a):
        lines = ["Figure 7(a): checkpointing replay time "
                 "(normalized to Rec)", format_header(list(PERIODS))]
        for name, row in fig7a.items():
            lines.append(format_row(name, row))
        means = {
            label: sum(row[label] for row in fig7a.values()) / len(fig7a)
            for label in PERIODS
        }
        lines.append(format_row("mean", means))
        lines.append("paper: RepNoChk ~1.48, RepChk1 ~1.59; denser "
                     "checkpoints cost more")
        emit("fig7a_replay_setups", lines)

    def test_replay_is_roughly_recording_speed(self, fig7a):
        """The deployability claim: CR can run continuously."""
        mean = sum(row["RepChk1"] for row in fig7a.values()) / len(fig7a)
        assert 1.2 <= mean <= 2.2

    def test_replay_without_checkpoints_already_costs(self, fig7a):
        """Paper: 'replaying without checkpointing already has significant
        overhead over Rec' (asynchronous injection)."""
        mean = sum(row["RepNoChk"] for row in fig7a.values()) / len(fig7a)
        assert mean > 1.15

    def test_checkpoint_frequency_ordering(self, fig7a):
        """Denser checkpoints never get cheaper."""
        for name, row in fig7a.items():
            assert row["RepChk02"] >= row["RepChk1"] >= row["RepChk5"] \
                >= row["RepNoChk"] - 1e-9, name

    def test_every_replay_verified_its_digest(self):
        for name in BENCHMARK_NAMES:
            result = checkpointing_replay(name, 1.0)
            assert result.replay.reached_end
            assert result.replay.digest_checked


class TestFig7b:
    def test_report(self, fig7b):
        columns = [cat.value for cat in REPLAY_BREAKDOWN]
        lines = ["Figure 7(b): breakdown of RepChk1 overhead over Rec (%)",
                 format_header(columns, width=11)]
        for name, breakdown in fig7b.items():
            row = {cat.value: breakdown.percent_of(cat)
                   for cat in REPLAY_BREAKDOWN}
            lines.append(format_row(name, row, fmt="{:>11.1f}"))
        lines.append("paper: interrupt injection dominates; Chk visible")
        emit("fig7b_replay_breakdown", lines)

    def test_interrupts_dominate(self, fig7b):
        """Paper: 'interrupt overhead dominates' because asynchronous
        events require single-stepping to the injection point."""
        for name, breakdown in fig7b.items():
            assert breakdown.dominant() is Category.INTERRUPT, name

    def test_checkpointing_contributes_noticeably(self, fig7b):
        for name in ("apache", "fileio", "make", "mysql"):
            assert fig7b[name].percent_of(Category.CHECKPOINT) > 1.0, name

    def test_more_checkpoints_more_chk_cycles(self):
        for name in ("mysql", "make"):
            sparse = checkpointing_replay(name, 5.0)
            dense = checkpointing_replay(name, 0.2)
            assert (dense.replay.metrics.account.cycles(Category.CHECKPOINT)
                    > sparse.replay.metrics.account.cycles(
                        Category.CHECKPOINT)), name


class TestFig7Timing:
    def test_checkpointing_replay_throughput(self, benchmark):
        """pytest-benchmark: CR wall time over a mid-size log."""
        from repro.replay import CheckpointingOptions, CheckpointingReplayer

        run = recording("mysql", "Rec")
        spec = workload("mysql")

        def replay_once():
            replayer = CheckpointingReplayer(
                spec, run.log, CheckpointingOptions(period_s=1.0),
            )
            return replayer.run(max_instructions=120_000)

        result = benchmark(replay_once)
        assert result.metrics.instructions > 0
