"""Figure 9: execution time of alarm replay, normalized to Rec.

The alarm replayer traps on every kernel call and return to model its
software RAS, so its slowdown tracks kernel call/ret density.  Paper:
make and mysql take 30-40x recording time, apache ~50x, radiosity (with
its modest kernel activity) only ~2.8x.  Absolute factors depend on the
kernel-activity ratio of the workloads; the shape to reproduce is that
kernel-heavy workloads pay an order of magnitude more than compute-bound
ones — and that this is why ARs are need-based rather than always-on.
"""

import pytest

from repro.cpu.exits import RopAlarmKind
from repro.perf.account import Category
from repro.replay.alarm import AlarmReplayer, AlarmReplayOptions, TrapScope
from repro.rnr.records import AlarmRecord

from benchmarks._common import (
    BENCHMARK_NAMES,
    checkpointing_replay,
    emit,
    recording,
    workload,
)


def alarm_replay_full(name: str):
    """Replay one benchmark's entire log under AR instrumentation.

    Uses a sentinel alarm past the end of the log, so the AR's software
    RAS and kernel call/ret trapping run over the whole execution — the
    paper's measurement mode for this figure.
    """
    run = recording(name, "Rec")
    sentinel = AlarmRecord(
        icount=run.metrics.instructions + 1,
        kind=RopAlarmKind.MISMATCH,
        pc=0, predicted=None, actual=0, tid=-1,
    )
    replayer = AlarmReplayer(
        workload(name), run.log, sentinel,
        options=AlarmReplayOptions(scope=TrapScope.KERNEL),
    )
    replayer.analyze()
    return replayer


@pytest.fixture(scope="module")
def fig9():
    table = {}
    for name in BENCHMARK_NAMES:
        rec = recording(name, "Rec").metrics.total_cycles
        rep_chk = checkpointing_replay(name, 1.0)
        replayer = alarm_replay_full(name)
        table[name] = {
            "RepChk1": rep_chk.replay.metrics.total_cycles / rec,
            "RepAlarm": (replayer.machine.cpu.icount
                         + replayer.machine.account.total_overhead) / rec,
            "ar_traps": replayer.machine.account.events(Category.AR_TRAP),
        }
    return table


class TestFig9:
    def test_report(self, fig9):
        lines = ["Figure 9: alarm replay time (normalized to Rec)",
                 f"{'':<12}{'RepChk1':>10}{'RepAlarm':>10}{'traps':>10}"]
        for name, row in fig9.items():
            lines.append(f"{name:<12}{row['RepChk1']:>10.2f}"
                         f"{row['RepAlarm']:>10.2f}{row['ar_traps']:>10d}")
        mean = sum(row["RepAlarm"] for row in fig9.values()) / len(fig9)
        lines.append(f"{'mean':<12}{'':>10}{mean:>10.2f}")
        lines.append("paper: make/mysql 30-40x, apache ~50x, "
                     "radiosity ~2.8x")
        emit("fig9_alarm_replay", lines)

    def test_alarm_replay_far_slower_than_checkpointing(self, fig9):
        """The separation argument: ARs are too slow to run always-on."""
        for name in ("apache", "fileio", "make", "mysql"):
            assert fig9[name]["RepAlarm"] > 2 * fig9[name]["RepChk1"], name

    def test_kernel_heavy_workloads_pay_most(self, fig9):
        """apache traps the most (network driver recursion); radiosity
        the least (almost no kernel activity)."""
        assert fig9["apache"]["RepAlarm"] > fig9["radiosity"]["RepAlarm"]
        assert fig9["apache"]["ar_traps"] > fig9["radiosity"]["ar_traps"]

    def test_radiosity_is_cheap(self, fig9):
        """Paper: radiosity takes only ~2.8x — modest kernel activity."""
        assert fig9["radiosity"]["RepAlarm"] < fig9["apache"]["RepAlarm"] / 2

    def test_slowdown_tracks_kernel_call_ret_density(self, fig9):
        """The figure's causal claim, checked directly: ordering by
        slowdown matches ordering by trapped call/ret counts (scaled by
        recording time)."""
        rec = {name: recording(name, "Rec").metrics.total_cycles
               for name in BENCHMARK_NAMES}
        by_slowdown = sorted(BENCHMARK_NAMES,
                             key=lambda n: fig9[n]["RepAlarm"])
        by_density = sorted(BENCHMARK_NAMES,
                            key=lambda n: fig9[n]["ar_traps"] / rec[n])
        assert by_slowdown[-1] == by_density[-1]
        assert by_slowdown[0] == by_density[0]


class TestFig9Timing:
    def test_alarm_replay_throughput(self, benchmark):
        """pytest-benchmark: AR instrumentation cost over a short window."""
        run = recording("mysql", "Rec")
        spec = workload("mysql")
        sentinel = AlarmRecord(icount=10**9, kind=RopAlarmKind.MISMATCH,
                               pc=0, predicted=None, actual=0, tid=-1)

        def replay_window():
            replayer = AlarmReplayer(
                spec, run.log, sentinel,
                options=AlarmReplayOptions(scope=TrapScope.KERNEL,
                                           max_instructions=100_000),
            )
            return replayer.analyze()

        verdict = benchmark(replay_window)
        assert verdict is not None
