"""Figure 8: kernel false alarms suppressed and reported, per 1M instr.

Three stacked series per benchmark: alarms suppressed by the Whitelist,
alarms suppressed by the BackRAS, and the residual FalseAlarm count that
reaches the replayers.  Paper: the filters suppress hundreds-to-thousands
per million instructions; every benchmark except apache passes
*practically zero* to the replayers; apache passes a handful of RAS
underflows caused by deep network-driver nesting under load.
"""

import pytest

from repro.detectors import measure_false_alarm_suppression

from benchmarks._common import (
    BENCHMARK_NAMES,
    BUDGET,
    emit,
    workload,
)

SERIES = ("Whitelist", "BackRAS", "FalseAlarm")


@pytest.fixture(scope="module")
def fig8():
    return {
        name: measure_false_alarm_suppression(workload(name),
                                              max_instructions=BUDGET)
        for name in BENCHMARK_NAMES
    }


class TestFig8:
    def test_report(self, fig8):
        lines = ["Figure 8: kernel false alarms per 1M instructions",
                 f"{'':<12}" + "".join(f"{s:>12}" for s in SERIES)]
        for name, breakdown in fig8.items():
            rows = breakdown.rows()
            lines.append(
                f"{name:<12}" + "".join(f"{rows[s]:>12.2f}" for s in SERIES)
            )
        lines.append("paper: filters suppress nearly everything; only "
                     "apache reports a few underflow FalseAlarms (6.01/1M)")
        emit("fig8_false_alarms", lines)

    def test_filters_suppress_nearly_everything(self, fig8):
        for name, breakdown in fig8.items():
            suppressed = (breakdown.suppressed_by_whitelist
                          + breakdown.suppressed_by_backras)
            assert breakdown.passed_to_replayers <= max(2, suppressed), name

    def test_whitelist_is_the_big_filter(self, fig8):
        """Every context-switch completion is a non-procedural return, so
        the whitelist suppresses at least one alarm per switch."""
        for name in ("apache", "fileio", "make", "mysql"):
            assert fig8[name].suppressed_by_whitelist > 0, name

    def test_backras_suppresses_multithread_pollution(self, fig8):
        """Benchmarks with several threads suffer cross-thread RAS
        pollution without the BackRAS."""
        multithreaded = ("apache", "fileio", "make", "mysql")
        assert any(fig8[name].suppressed_by_backras > 0
                   for name in multithreaded)

    def test_only_apache_reports_false_alarms(self, fig8):
        """The figure's punchline: apache's deep driver recursion is the
        one source of residual kernel false alarms."""
        assert fig8["apache"].passed_to_replayers > 0
        for name in ("fileio", "make", "mysql", "radiosity"):
            assert fig8[name].passed_to_replayers == 0, name

    def test_apache_residual_rate_is_single_digit_scale(self, fig8):
        """Paper reports 6.01 per 1M for apache; ours should be the same
        order of magnitude."""
        rate = fig8["apache"].rows()["FalseAlarm"]
        assert 0.5 <= rate <= 80.0

    def test_quiet_benchmark_is_spotless(self, fig8):
        radiosity = fig8["radiosity"]
        assert radiosity.passed_to_replayers == 0


class TestFig8Timing:
    def test_suppression_measurement_cost(self, benchmark):
        """pytest-benchmark: the three-run differencing on a small guest."""
        spec = workload("radiosity")

        def measure():
            return measure_false_alarm_suppression(
                spec, max_instructions=120_000,
            )

        breakdown = benchmark(measure)
        assert breakdown.instructions > 0
