"""Figure 6: input-log generation rate and BackRAS bandwidth.

(a) Input log rate in MB/s (uncompressed).  Paper: apache is the clear
    leader (~4 MB/s) because packet contents are logged verbatim; the
    others stay well under 1 MB/s.
(b) Bandwidth to save/restore the RAS at context switches.  Paper: small
    everywhere (< 1 MB/s) — "the impact of the architecture on the memory
    system is modest".
"""

import pytest

from repro.rnr.records import NetworkDmaRecord
from repro.rnr.serialize import record_size_bytes

from benchmarks._common import (
    BENCHMARK_NAMES,
    emit,
    format_header,
    recording,
    workload,
)


@pytest.fixture(scope="module")
def fig6():
    rows = {}
    for name in BENCHMARK_NAMES:
        run = recording(name, "Rec")
        config = workload(name).config
        rows[name] = {
            "log MB/s": run.metrics.log_rate_mb_per_s(config),
            "RAS MB/s": run.metrics.backras_bandwidth_mb_per_s(config),
            "log bytes": run.metrics.log_bytes,
        }
    return rows


class TestFig6:
    def test_report(self, fig6):
        lines = ["Figure 6: input log rate (a) and BackRAS bandwidth (b)",
                 format_header(["log MB/s", "RAS MB/s", "log bytes"],
                               width=11)]
        for name, row in fig6.items():
            lines.append(
                f"{name:<12}{row['log MB/s']:>11.4f}"
                f"{row['RAS MB/s']:>11.4f}{row['log bytes']:>11d}"
            )
        lines.append("paper: apache ~4 MB/s log (highest); all RAS "
                     "bandwidths small")
        emit("fig6_log_rates", lines)

    def test_apache_has_the_highest_log_rate(self, fig6):
        apache = fig6["apache"]["log MB/s"]
        for name in BENCHMARK_NAMES:
            if name != "apache":
                assert apache > fig6[name]["log MB/s"], name

    def test_apache_log_is_mostly_packet_content(self):
        run = recording("apache", "Rec")
        network_bytes = sum(
            record_size_bytes(record) for record in run.log.records()
            if isinstance(record, NetworkDmaRecord)
        )
        assert network_bytes > 0.6 * run.metrics.log_bytes

    def test_compute_benchmarks_log_almost_nothing(self, fig6):
        assert fig6["radiosity"]["log bytes"] < fig6["apache"]["log bytes"] / 20

    def test_backras_bandwidth_is_small(self, fig6):
        """Paper: 'the bandwidth to save and restore the RAS at context
        switches is very small' — an order below the apache log rate."""
        for name, row in fig6.items():
            assert row["RAS MB/s"] < 1.0, name

    def test_log_rates_are_nonzero_for_all(self, fig6):
        for name, row in fig6.items():
            assert row["log bytes"] > 0, name


class TestFig6Timing:
    def test_log_serialization_throughput(self, benchmark):
        """pytest-benchmark: serializing the apache log end-to-end."""
        run = recording("apache", "Rec")

        def serialize():
            return run.log.to_bytes()

        data = benchmark(serialize)
        assert len(data) == run.metrics.log_bytes
