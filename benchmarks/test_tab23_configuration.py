"""Tables 2 and 3: configuration surface of the reproduction.

These tables are descriptive in the paper; here they are asserted to stay
in sync with the code that actually runs (the config dataclass and the
five benchmark profiles), so the report can never drift from reality.
"""


from repro.config import DEFAULT_CONFIG
from repro.perf.config_report import render_table2, render_table3
from repro.workloads import ALL_PROFILES

from benchmarks._common import emit


class TestTables2And3:
    def test_report(self):
        lines = [render_table2(DEFAULT_CONFIG), "", render_table3()]
        emit("tab23_configuration", lines)

    def test_table2_reflects_the_live_config(self):
        text = render_table2(DEFAULT_CONFIG)
        assert f"{DEFAULT_CONFIG.ras_entries}-entry RAS" in text
        assert str(DEFAULT_CONFIG.cycles_per_second) in text
        assert str(DEFAULT_CONFIG.costs.vmexit_cycles) in text

    def test_table3_lists_all_five_benchmarks(self):
        text = render_table3()
        for profile in ALL_PROFILES:
            assert profile.name in text

    def test_table3_reflects_event_mixes(self):
        text = render_table3()
        assert "network recv" in text        # apache
        assert "disk read" in text           # fileio/make
        assert "spawn" in text               # make
        assert "timer reads" in text         # mysql/fileio

    def test_paper_alignment_ras_size(self):
        """The paper simulates a 48-entry RAS by default (§7.5)."""
        assert DEFAULT_CONFIG.ras_entries == 48


class TestTables2And3Timing:
    def test_rendering_cost(self, benchmark):
        text = benchmark(lambda: render_table2(DEFAULT_CONFIG)
                         + render_table3())
        assert text
