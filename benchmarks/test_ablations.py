"""Ablations called out by DESIGN.md (beyond the paper's own figures).

* Filters off -> the §4.2 "basic design" alarm flood, quantified.
* Checkpoint-period sweep beyond the paper's three points.
* The inline software shadow stack (§2.3's >100%-overhead strawman)
  versus RnR-Safe's recording cost, on identical work.
* RAS capacity sweep: smaller hardware RAS -> more underflow traffic for
  the CR to absorb, zero change in detection power.
"""

import dataclasses

import pytest

from repro.baselines import run_instrumented_shadow_stack
from repro.core.modes import NO_REC, record_benchmark
from repro.replay import CheckpointingOptions, CheckpointingReplayer
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.workloads import APACHE, build_workload

from benchmarks._common import BUDGET, emit, recording, workload


class TestFilterAblation:
    @pytest.fixture(scope="class")
    def alarm_counts(self):
        spec = workload("apache")
        counts = {}
        for label, backras, whitelist in (
            ("none", False, False),
            ("whitelist", False, True),
            ("both", True, True),
        ):
            options = RecorderOptions(
                backras=backras, whitelist=whitelist, evict_records=False,
                max_instructions=BUDGET, digest=False,
            )
            run = Recorder(spec, options).run()
            kernel_alarms = sum(
                1 for alarm in run.alarms
                if alarm.pc < spec.kernel.layout.user_code_base
            )
            counts[label] = kernel_alarms
        return counts

    def test_report(self, alarm_counts):
        lines = ["Ablation: RAS filters on apache (kernel alarms/run)"]
        for label, count in alarm_counts.items():
            lines.append(f"  filters={label:<10} {count:>6}")
        emit("ablation_filters", lines)

    def test_each_filter_strictly_helps(self, alarm_counts):
        assert (alarm_counts["none"] > alarm_counts["whitelist"]
                >= alarm_counts["both"])

    def test_basic_design_is_several_times_worse(self, alarm_counts):
        """With both hardware filters the alarm stream shrinks severalfold;
        the residual ("both") is dominated by underflow alarms that the
        CR's evict matching then dismisses without any alarm replayer."""
        assert alarm_counts["none"] >= 4 * max(1, alarm_counts["both"])


class TestCheckpointPeriodSweep:
    PERIODS = (None, 8.0, 4.0, 2.0, 1.0, 0.5, 0.2, 0.1)

    @pytest.fixture(scope="class")
    def sweep(self):
        run = recording("mysql", "Rec")
        spec = workload("mysql")
        rows = {}
        for period in self.PERIODS:
            replayer = CheckpointingReplayer(
                spec, run.log, CheckpointingOptions(period_s=period),
            )
            result = replayer.run_to_end()
            label = "none" if period is None else f"{period}s"
            rows[label] = {
                "cycles": result.replay.metrics.total_cycles,
                "checkpoints": len(result.store),
                "storage_words": result.store.storage_words,
            }
        return rows

    def test_report(self, sweep):
        lines = ["Ablation: checkpoint period sweep (mysql)",
                 f"{'period':<8}{'cycles':>12}{'count':>8}{'storage':>10}"]
        for label, row in sweep.items():
            lines.append(f"{label:<8}{row['cycles']:>12}"
                         f"{row['checkpoints']:>8}"
                         f"{row['storage_words']:>10}")
        emit("ablation_checkpoint_sweep", lines)

    def test_cost_monotone_in_frequency(self, sweep):
        ordered = [sweep[label]["cycles"] for label in
                   ("none", "8.0s", "2.0s", "0.5s", "0.1s")]
        assert ordered == sorted(ordered)

    def test_storage_grows_with_frequency(self, sweep):
        assert (sweep["0.1s"]["storage_words"]
                >= sweep["2.0s"]["storage_words"])


class TestInlineShadowStackAblation:
    def test_report_and_shape(self):
        spec = workload("apache")
        native = record_benchmark(spec, NO_REC, max_instructions=BUDGET)
        rec = recording("apache", "Rec")
        inline = run_instrumented_shadow_stack(
            spec, max_instructions=BUDGET, kernel_only=False,
        )
        native_cycles = native.metrics.total_cycles
        rows = {
            "native": 1.0,
            "RnR-Safe Rec": rec.metrics.total_cycles / native_cycles,
            "inline shadow stack": (inline.metrics.total_cycles
                                    / native_cycles),
        }
        lines = ["Ablation: precise inline checking vs RnR-Safe (apache)"]
        for label, value in rows.items():
            lines.append(f"  {label:<22}{value:>8.2f}x native")
        emit("ablation_inline_shadow_stack", lines)
        # The trade the paper is making, in one inequality:
        assert rows["RnR-Safe Rec"] < rows["inline shadow stack"] / 2


class TestRasCapacityAblation:
    @pytest.fixture(scope="class")
    def capacity_sweep(self):
        rows = {}
        for entries in (16, 32, 48, 64):
            config = dataclasses.replace(
                build_workload(APACHE).config, ras_entries=entries,
            )
            spec = build_workload(APACHE, config=config)
            run = Recorder(
                spec, RecorderOptions(max_instructions=BUDGET),
            ).run()
            result = CheckpointingReplayer(
                spec, run.log, CheckpointingOptions(),
            ).run_to_end()
            rows[entries] = {
                "evicts": len(run.evicts),
                "dismissed": result.dismissed_underflows,
                "pending": len(result.pending_alarms),
            }
        return rows

    def test_report(self, capacity_sweep):
        lines = ["Ablation: RAS capacity (apache)",
                 f"{'entries':<8}{'evicts':>8}{'dismissed':>10}"
                 f"{'pending':>9}"]
        for entries, row in capacity_sweep.items():
            lines.append(f"{entries:<8}{row['evicts']:>8}"
                         f"{row['dismissed']:>10}{row['pending']:>9}")
        lines.append("smaller RAS -> more evict/underflow traffic, all "
                     "absorbed by the CR; detection power unchanged")
        emit("ablation_ras_capacity", lines)

    def test_smaller_ras_means_more_evictions(self, capacity_sweep):
        assert (capacity_sweep[16]["evicts"]
                > capacity_sweep[64]["evicts"])

    def test_cr_absorbs_the_extra_traffic(self, capacity_sweep):
        """Whatever the capacity, underflow alarms match evict records
        and never burden the alarm replayers."""
        for entries, row in capacity_sweep.items():
            assert row["dismissed"] >= 0
            # pending alarms are the benign setjmp mismatches, a handful.
            assert row["pending"] <= 10, entries
