"""Section 6 / Figure 10: mounting the kernel ROP attack, end to end.

The paper's narrative, measured: gadgets are harvested from the victim
binary; the payload rides a network message; the vulnerable return raises
the alarm; the checkpointing replayer launches an alarm replayer from the
most recent checkpoint; the AR confirms the ROP; and replay analysis
answers how / who / what.  Also reproduces the two recording policies:
stall-on-alarm prevents the payload from ever executing, continue-mode
lets it run and the forensics prove it did.
"""

import pytest

from repro import (
    APACHE,
    RecorderOptions,
    RnRSafe,
    RnRSafeOptions,
    build_workload,
    deliver_rop_attack,
)
from repro.analysis import build_attack_report
from repro.replay import AlarmReplayer, VerdictKind

from benchmarks._common import BUDGET, emit


@pytest.fixture(scope="module")
def attack_run():
    spec, chain = deliver_rop_attack(build_workload(APACHE))
    options = RnRSafeOptions(
        recorder=RecorderOptions(max_instructions=BUDGET),
    )
    report = RnRSafe(spec, options).run()
    return spec, chain, report


@pytest.fixture(scope="module")
def forensics(attack_run):
    spec, chain, report = attack_run
    hijack = next(o for o in report.attacks
                  if o.verdict.observed_target == chain.stack_words[0])
    replayer = AlarmReplayer(spec, report.recording.log, hijack.alarm)
    verdict = replayer.analyze()
    return build_attack_report(replayer, verdict,
                               recording=report.recording)


class TestSection6:
    def test_report(self, attack_run, forensics):
        spec, chain, report = attack_run
        lines = ["Section 6: mounting a kernel ROP attack"]
        lines.append(f"gadget chain: {[hex(w) for w in chain.stack_words]}")
        lines.append(report.summary())
        lines.append("")
        lines.append(forensics.render())
        emit("sec6_attack", lines)

    def test_gadgets_come_from_the_victim_binary(self, attack_run):
        spec, chain, report = attack_run
        for gadget in chain.gadgets:
            assert spec.kernel.function_at(gadget.addr) is not None

    def test_alarm_raised_and_attack_confirmed(self, attack_run):
        spec, chain, report = attack_run
        assert report.attacks
        assert any(o.verdict.observed_target == chain.stack_words[0]
                   for o in report.attacks)

    def test_benign_alarms_classified_not_dropped(self, attack_run):
        spec, chain, report = attack_run
        for outcome in report.false_positives:
            assert outcome.verdict.kind is VerdictKind.FALSE_POSITIVE

    def test_how_who_what(self, forensics):
        assert forensics.vulnerable_function == "msg_handle"
        assert forensics.task is not None
        assert forensics.staged_chain
        assert forensics.payload_executed  # continue-mode recording

    def test_stall_policy_prevents_payload(self):
        import dataclasses

        profile = dataclasses.replace(APACHE, setjmp_every=0,
                                      packet_len_high=200)
        spec, chain = deliver_rop_attack(build_workload(profile))
        options = RnRSafeOptions(
            recorder=RecorderOptions(max_instructions=BUDGET,
                                     stall_on_alarm=True),
        )
        report = RnRSafe(spec, options).run()
        uid = report.recording.machine.memory.read_word(
            spec.kernel.layout.uid_addr,
        )
        assert report.recording.stop_reason == "alarm_stall"
        assert uid == 1000
        assert report.attacks


class TestSection6Timing:
    def test_attack_confirmation_latency(self, benchmark, attack_run):
        """pytest-benchmark: one AR launch from the latest checkpoint."""
        spec, chain, report = attack_run
        hijack = next(o for o in report.attacks
                      if o.verdict.observed_target == chain.stack_words[0])
        store = report.checkpointing.store
        checkpoint = store.latest_before(hijack.alarm.icount)

        def confirm():
            replayer = AlarmReplayer(
                spec, report.recording.log, hijack.alarm,
                checkpoint=checkpoint, store=store,
            )
            return replayer.analyze()

        verdict = benchmark(confirm)
        assert verdict.kind in (VerdictKind.ROP_CONFIRMED,
                                VerdictKind.INCONCLUSIVE)
