"""Setup shim for environments without the ``wheel`` package.

PEP 660 editable installs need ``bdist_wheel``; this offline environment
lacks it, so ``pip install -e .`` falls back to this legacy path.
"""

from setuptools import setup

setup()
