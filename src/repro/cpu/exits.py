"""VM exits and exit controls — the hardware/hypervisor interface.

A :class:`VmExit` is the hardware's report that guest execution stopped and
control transferred to the hypervisor, mirroring Intel VT-x semantics the
paper builds on.  :class:`ExitControls` is the hardware-side configuration of
*which* events exit — the simulated analogue of VMCS execution controls plus
the paper's new controls:

* ``ras_alarm_exits`` — RAS mispredictions trigger ROP-alarm exits
  (on in the recorded VM, **off** on the replay platform, §4.6.1);
* ``ras_evict_exits`` — about-to-evict RAS entries exit so the hypervisor
  can log Evict records (§4.5);
* ``trap_call_ret`` — every call/return exits, used by the alarm replayer to
  model its software RAS (§4.6.2);
* ``breakpoints`` — instruction-address traps, used to interpose on the
  guest kernel's context switch and thread lifecycle (§5.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class VmExitReason(enum.Enum):
    """Why the guest exited to the hypervisor."""

    RDTSC = "rdtsc"
    RDRAND = "rdrand"
    PIO_IN = "pio_in"
    PIO_OUT = "pio_out"
    MMIO_READ = "mmio_read"
    MMIO_WRITE = "mmio_write"
    HLT = "hlt"
    BREAKPOINT = "breakpoint"
    DEBUG = "debug"
    ROP_ALARM = "rop_alarm"
    RAS_EVICT = "ras_evict"
    CALL_TRAP = "call_trap"
    RET_TRAP = "ret_trap"
    JOP_ALARM = "jop_alarm"
    TRIPLE_FAULT = "triple_fault"


class RopAlarmKind(enum.Enum):
    """Alarm subtype.

    The first three are the RAS-misprediction taxonomy of §4.1; JOP and DOS
    extend the same alarm channel for Table 1's other framework uses.
    """

    #: RAS top disagreed with the actual return target.
    MISMATCH = "mismatch"
    #: Return executed with an empty RAS (deep nesting evicted the entry).
    UNDERFLOW = "underflow"
    #: A whitelisted non-procedural return went to a non-whitelisted target.
    WHITELIST_TARGET = "whitelist_target"
    #: Stray indirect branch/call target (Table 1, JOP row).
    JOP = "jop"
    #: Context-switch starvation (Table 1, DOS row).
    DOS = "dos"


#: The generic name: this enum covers all detector alarm channels.
AlarmKind = RopAlarmKind


@dataclass(frozen=True, slots=True)
class VmExit:
    """One VM exit with its reason-specific payload.

    ``pc`` is the address of the instruction that caused the exit;
    ``next_pc`` is where the guest will resume.  The remaining fields are
    populated per reason (e.g. ``port``/``value`` for PIO, ``predicted`` /
    ``actual`` for ROP alarms, ``evicted`` for RAS evictions).
    """

    reason: VmExitReason
    pc: int
    next_pc: int
    rd: int = 0
    addr: int = 0
    port: int = 0
    value: int = 0
    target: int = 0
    return_addr: int = 0
    predicted: int | None = None
    actual: int = 0
    evicted: int = 0
    alarm_kind: RopAlarmKind | None = None
    detail: str = ""


@dataclass
class ExitControls:
    """Hardware-side switches selecting which events cause VM exits."""

    #: Trap rdtsc (read time-stamp counter) — synchronous nondeterminism.
    trap_rdtsc: bool = True
    #: Trap rdrand — synchronous nondeterminism.
    trap_rdrand: bool = True
    #: Trap loads/stores that hit MMIO windows.  (Port-mapped I/O always
    #: exits: the platform is hypervisor-mediated, §2.1, so IN/OUT have no
    #: non-trapping mode.)
    trap_mmio: bool = True
    #: RAS mispredictions raise ROP-alarm exits (recorded VM only).
    ras_alarm_exits: bool = False
    #: About-to-evict RAS entries raise exits for Evict logging.
    ras_evict_exits: bool = False
    #: The RAS hardware is engaged at all (native runs without the feature
    #: still have a RAS for prediction, but RnR-Safe's bookkeeping is what
    #: this flag represents; turning it off models the RecNoRAS setup).
    ras_bookkeeping: bool = True
    #: Exit on every kernel-mode call and return (alarm replayer, §4.6.2).
    trap_call_ret: bool = False
    #: Extend call/ret trapping to user mode (deeper AR instrumentation for
    #: alarms raised in user code — the paper's "increasing levels of
    #: instrumentation").
    trap_call_ret_user: bool = False
    #: Hardware JOP check on indirect calls/jumps (Table 1, row 2).
    jop_check: bool = False
    #: Instruction-address breakpoints (context-switch interposition).
    breakpoints: set[int] = field(default_factory=set)

    def copy(self) -> "ExitControls":
        """Deep-enough copy (breakpoint set duplicated)."""
        duplicate = ExitControls(**{
            key: value
            for key, value in self.__dict__.items()
            if key != "breakpoints"
        })
        duplicate.breakpoints = set(self.breakpoints)
        return duplicate
