"""Pluggable execution backends for the simulated CPU.

:meth:`repro.cpu.core.Cpu.run` delegates its batched inner loop to an
:class:`ExecutionBackend`.  Two backends exist:

* :class:`InterpreterBackend` (``"interp"``, the default) — the reference
  semantics.  One fetch/decode/dispatch round per instruction, with the
  fetch-page cache and the shared word->(handler, instruction) execution
  cache hoisting the per-instruction cost down to a dict probe plus a
  handler call.
* ``TraceCacheBackend`` (``"trace"``, :mod:`repro.cpu.trace`) — a
  translated fast path.  Basic blocks discovered at branch boundaries are
  compiled once into a single Python closure (a superinstruction chain:
  fused fetch/decode, locals-bound register file and page tables, one
  MMIO/watchpoint guard per memory access instead of per instruction) and
  cached per privilege mode.  Bit-identical to the interpreter by
  construction and by the differential suite
  (``tests/test_backend_equivalence.py``).

Backends are architectural no-ops: every observable artifact — the final
:class:`~repro.cpu.state.CpuState`, log bytes, checkpoints, sentinel
digests, verdicts — is identical whichever backend executes the guest.
The choice rides on :attr:`repro.config.SimulationConfig.exec_backend`,
so it survives pickling into process-pool workers (parallel AR, the
process pipeline, fleet sessions) for free.

Cache-boundedness.  ``_DECODE_CACHE`` and ``_EXEC_CACHE`` are process-wide
and pure (word -> decoded instruction / dispatch pair, never invalidated),
but they are *bounded*: once ``_CACHE_LIMIT`` distinct words have been
seen, both caches are cleared and rebuilt on demand, so a long-lived
process that churns through many workloads cannot grow them without
limit.  They are shared by every backend and every ``Cpu`` instance
because their entries carry no per-instance state — unbound handlers and
frozen ``Instruction`` objects only.  Anything keyed on mutable state
(the trace backend's translated blocks, which bake in memory contents)
lives on the backend *instance* instead.
"""

from __future__ import annotations

import enum

from repro.cpu.exits import VmExit, VmExitReason
from repro.errors import DecodeError, ReproError
from repro.isa.instruction import Instruction, decode
from repro.memory.paging import AccessViolation

_WORD_MASK = 0xFFFF_FFFF_FFFF_FFFF

#: Entries across the shared decode/exec caches before they are cleared.
#: 64Ki distinct instruction words is far beyond any one workload (the
#: whole suite decodes a few thousand); the bound exists so that churning
#: through arbitrarily many generated programs in one process cannot leak.
_CACHE_LIMIT = 1 << 16

#: Process-wide decode cache.  Word -> instruction is a pure function, so
#: the cache is shared by every CPU instance and never invalidated (only
#: cleared when it reaches ``_CACHE_LIMIT``).
_DECODE_CACHE: dict[int, Instruction] = {}

#: Process-wide execution cache: word -> (handler, instruction).  The
#: handler is the class-level dispatch entry for the instruction's opcode,
#: so the hot loop resolves fetch+decode+dispatch with a single dict
#: probe.  Like ``_DECODE_CACHE`` it is pure; both clear together at the
#: size bound.
_EXEC_CACHE: dict[int, tuple] = {}


def _bound_caches():
    """Clear the shared pure caches when they reach the size bound."""
    if len(_EXEC_CACHE) >= _CACHE_LIMIT or len(_DECODE_CACHE) >= _CACHE_LIMIT:
        _EXEC_CACHE.clear()
        _DECODE_CACHE.clear()


def remember_decode(word: int, instr: Instruction):
    """Insert a decoded word into the bounded shared decode cache."""
    _bound_caches()
    _DECODE_CACHE[word] = instr


class FaultKind(enum.IntEnum):
    """Architectural fault codes delivered in ``r10``."""

    ACCESS = 1
    PRIVILEGE = 2
    DECODE = 3
    DIV_ZERO = 4


class _GuestFault(Exception):
    """Internal signal: the current instruction faulted."""

    def __init__(self, kind: FaultKind, detail: str = ""):
        self.kind = kind
        self.detail = detail
        super().__init__(detail)


class ExecutionBackend:
    """Interface every execution backend implements.

    Contract (see ``docs/PERFORMANCE.md`` § Execution backends):

    * :meth:`run` executes **at most** ``max_steps`` batch units and stops
      *exactly* there when no VM exit ends the batch earlier — interrupt
      and async-record delivery points are defined by batch boundaries, so
      overshooting by even one instruction breaks replay bit-identity;
    * every per-instruction architectural effect of the reference
      interpreter (icount increments *before* the handler, fault-streak
      accounting, per-instruction breakpoint checks, MMIO traps) must be
      preserved observably;
    * backends own no architectural state: everything lives on the ``Cpu``
      so checkpoint capture/restore and digests never consult the backend.
    """

    #: Name the backend registers under (``SimulationConfig.exec_backend``).
    name = "?"

    def run(self, cpu, max_steps: int) -> VmExit | None:
        """Execute up to ``max_steps`` instructions on ``cpu``."""
        raise NotImplementedError

    def stats(self) -> dict[str, int]:
        """Translation/cache counters (empty for stateless backends)."""
        return {}

    def invalidate(self):
        """Drop any cached translations (stateless backends: no-op)."""


class InterpreterBackend(ExecutionBackend):
    """The reference batched interpreter (exact seed semantics)."""

    name = "interp"

    def run(self, cpu, max_steps: int) -> VmExit | None:
        """Execute up to ``max_steps`` instructions; stop early on a VM exit.

        This is the batched inner loop: exit-control, dispatch, and decode
        lookups are hoisted out of the per-instruction path, and the
        current fetch page is cached so straight-line code never repeats
        the permission walk.

        Batch contract (see ``docs/PERFORMANCE.md``): nothing outside the
        CPU can interrupt a batch, so callers must size ``max_steps`` such
        that the next external event — a due log record, a due world
        event, an instruction budget — falls at or after the batch end.
        VM exits, guest faults, and breakpoints end a batch from the
        inside; guest stores stay coherent with the fetch cache because
        pages mutate in place, and any host-side remapping bumps
        ``memory.version``, which invalidates the cache at the next
        ``run()`` entry.
        """
        if max_steps <= 0:
            return None
        memory = cpu.memory
        if memory.version != cpu._mem_version:
            cpu._mem_version = memory.version
            cpu._fp_lo, cpu._fp_hi = 1, 0
            cpu._fp_page = None
        controls = cpu.controls
        cpu._trap_mmio = controls.trap_mmio
        cpu._mmio_lo, cpu._mmio_hi = memory.mmio_bounds
        breakpoints = controls.breakpoints
        exec_cache = _EXEC_CACHE
        cache_get = exec_cache.get
        dispatch = cpu._DISPATCH
        fetch_page = memory.fetch_page
        fp_lo = cpu._fp_lo
        fp_hi = cpu._fp_hi
        fp_page = cpu._fp_page
        fp_user = cpu._fp_user
        remaining = max_steps
        try:
            while remaining > 0:
                remaining -= 1
                pc0 = cpu.pc
                if breakpoints:
                    if pc0 in breakpoints \
                            and cpu._skip_breakpoint_at != pc0:
                        return VmExit(VmExitReason.BREAKPOINT,
                                      pc=pc0, next_pc=pc0)
                    cpu._skip_breakpoint_at = None
                if fp_lo <= pc0 < fp_hi and cpu.user == fp_user:
                    word = fp_page[pc0 - fp_lo]
                else:
                    try:
                        fp_page, fp_lo, fp_hi = fetch_page(pc0, cpu.user)
                    except AccessViolation as violation:
                        fp_lo, fp_hi = 1, 0
                        exit_event = cpu._deliver_fault(
                            _GuestFault(FaultKind.ACCESS, str(violation)),
                            pc0,
                        )
                        if exit_event is not None:
                            return exit_event
                        continue
                    fp_user = cpu.user
                    word = fp_page[pc0 - fp_lo]
                pair = cache_get(word)
                if pair is None:
                    try:
                        instr = decode(word)
                    except DecodeError as exc:
                        exit_event = cpu._deliver_fault(
                            _GuestFault(FaultKind.DECODE, str(exc)), pc0
                        )
                        if exit_event is not None:
                            return exit_event
                        continue
                    _bound_caches()
                    _DECODE_CACHE[word] = instr
                    pair = (dispatch[instr.op], instr)
                    exec_cache[word] = pair
                cpu.icount += 1
                try:
                    exit_event = pair[0](cpu, pair[1])
                except _GuestFault as fault:
                    exit_event = cpu._deliver_fault(fault, pc0)
                    if exit_event is not None:
                        return exit_event
                    continue
                except AccessViolation as violation:
                    exit_event = cpu._deliver_fault(
                        _GuestFault(FaultKind.ACCESS, str(violation)), pc0
                    )
                    if exit_event is not None:
                        return exit_event
                    continue
                if exit_event is not None:
                    return exit_event
            return None
        finally:
            cpu._fp_lo, cpu._fp_hi = fp_lo, fp_hi
            cpu._fp_page, cpu._fp_user = fp_page, fp_user


#: Registered backend names (``"trace"`` resolves lazily to avoid paying
#: the translator import on interpreter-only runs).
BACKEND_NAMES = ("interp", "trace")


def create_backend(name: str) -> ExecutionBackend:
    """Instantiate the execution backend registered under ``name``."""
    if name == "interp":
        return InterpreterBackend()
    if name == "trace":
        from repro.cpu.trace import TraceCacheBackend

        return TraceCacheBackend()
    raise ReproError(
        f"unknown exec backend {name!r} (choose from {BACKEND_NAMES})"
    )
