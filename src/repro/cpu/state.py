"""Architectural CPU state capture for checkpoints and introspection.

A checkpoint stores "a page with the processor state (PC, stack pointer, and
the rest of the registers)" (§4.6.1).  :class:`CpuState` is that page's
contents.  The RAS is deliberately *not* part of it: at checkpoint time the
hardware has just dumped the RAS into the BackRAS, and the checkpoint stores
the whole BackRAS separately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import REG_COUNT

#: Bit layout of the flags word pushed on interrupt delivery and restored
#: by ``iret``: (name, bit).
FLAGS_FIELDS = (("zero", 0), ("negative", 1), ("user", 2), ("int_enabled", 3))


@dataclass(frozen=True, slots=True)
class CpuState:
    """Immutable snapshot of all architectural register state."""

    regs: tuple[int, ...]
    pc: int
    zero: bool
    negative: bool
    user: bool
    int_enabled: bool
    icount: int
    halted: bool

    def __post_init__(self):
        if len(self.regs) != REG_COUNT:
            raise ValueError(
                f"expected {REG_COUNT} registers, got {len(self.regs)}"
            )

    def pack_flags(self) -> int:
        """Encode the flag bits as the architectural flags word."""
        word = 0
        for name, bit in FLAGS_FIELDS:
            if getattr(self, name):
                word |= 1 << bit
        return word


def unpack_flags(word: int) -> dict[str, bool]:
    """Decode a flags word into named booleans."""
    return {name: bool(word >> bit & 1) for name, bit in FLAGS_FIELDS}
