"""The CPU execution engine.

Executes one guest instruction per :meth:`Cpu.step`, returning a
:class:`~repro.cpu.exits.VmExit` whenever an armed exit control fires.  The
engine is uniprocessor (as in the paper's evaluation), so the only
nondeterminism is what the hypervisor injects: interrupt timing and the
results of rdtsc/rdrand/PIO/MMIO.

Architectural conventions (fixed by the hardware):

* ``r14`` (``sp``) is the stack pointer used by push/pop/call/ret and by
  trap frames; stacks grow downward;
* ``r10`` receives the interrupt vector (on IRQ delivery) or fault code
  (on fault delivery) when the kernel handler starts;
* ``r11`` receives the syscall number on ``syscall`` entry;
* interrupt/fault delivery pushes a flags word then the resume PC;
  ``iret`` pops them in reverse order.
"""

from __future__ import annotations

import enum

from repro.config import SimulationConfig
from repro.cpu.exits import ExitControls, RopAlarmKind, VmExit, VmExitReason
from repro.cpu.ras import ReturnAddressStack
from repro.cpu.state import CpuState, unpack_flags
from repro.errors import DecodeError
from repro.isa.instruction import Instruction, decode
from repro.isa.opcodes import SP, Opcode
from repro.memory.paging import AccessViolation
from repro.memory.physical import PhysicalMemory

#: Register that carries the vector/fault code into kernel handlers.
IRQ_VECTOR_REG = 10
#: Register that carries the syscall number into the syscall handler.
SYSCALL_NUM_REG = 11

_WORD_MASK = 0xFFFF_FFFF_FFFF_FFFF

#: Process-wide decode cache.  Word -> instruction is a pure function, so
#: the cache is shared by every CPU instance and never invalidated.
_DECODE_CACHE: dict[int, Instruction] = {}


class FaultKind(enum.IntEnum):
    """Architectural fault codes delivered in ``r10``."""

    ACCESS = 1
    PRIVILEGE = 2
    DECODE = 3
    DIV_ZERO = 4


class _GuestFault(Exception):
    """Internal signal: the current instruction faulted."""

    def __init__(self, kind: FaultKind, detail: str = ""):
        self.kind = kind
        self.detail = detail
        super().__init__(detail)


class Cpu:
    """One simulated processor core attached to guest physical memory."""

    def __init__(self, memory: PhysicalMemory, config: SimulationConfig,
                 controls: ExitControls | None = None):
        self.memory = memory
        self.config = config
        self.controls = controls if controls is not None else ExitControls()
        self.regs: list[int] = [0] * 16
        self.pc = 0
        self.zero = False
        self.negative = False
        self.user = False
        self.int_enabled = False
        self.icount = 0
        self.halted = False
        self.ras = ReturnAddressStack(config.ras_entries)
        #: PC of the kernel's one non-procedural return (RetWhitelist, §4.4).
        self.ret_whitelist: int | None = None
        #: Legal targets of the whitelisted return (TarWhitelist, §4.4).
        self.tar_whitelist: frozenset[int] = frozenset()
        #: Hardware JOP function-boundary table: tuple of (begin, end).
        self.jop_table: tuple[tuple[int, int], ...] = ()
        #: Hardware entry vectors (programmed at boot from the kernel image).
        self.vec_syscall = 0
        self.vec_irq = 0
        self.vec_fault = 0
        self._skip_breakpoint_at: int | None = None
        self._fault_streak = 0
        self._last_fault_icount = -10**9
        self._dispatch = self._build_dispatch()

    # ------------------------------------------------------------------
    # state capture / restore
    # ------------------------------------------------------------------

    def capture_state(self) -> CpuState:
        """Snapshot all architectural register state (checkpointing)."""
        return CpuState(
            regs=tuple(self.regs),
            pc=self.pc,
            zero=self.zero,
            negative=self.negative,
            user=self.user,
            int_enabled=self.int_enabled,
            icount=self.icount,
            halted=self.halted,
        )

    def restore_state(self, state: CpuState):
        """Load architectural register state (checkpoint restore)."""
        self.regs = list(state.regs)
        self.pc = state.pc
        self.zero = state.zero
        self.negative = state.negative
        self.user = state.user
        self.int_enabled = state.int_enabled
        self.icount = state.icount
        self.halted = state.halted
        self._skip_breakpoint_at = None
        self._fault_streak = 0

    # ------------------------------------------------------------------
    # hypervisor-facing controls
    # ------------------------------------------------------------------

    def skip_breakpoint_once(self):
        """Let the next step execute the instruction under the breakpoint."""
        self._skip_breakpoint_at = self.pc

    def raise_interrupt(self, vector: int) -> VmExit | None:
        """Deliver an external interrupt now (hypervisor injection).

        The caller must ensure ``int_enabled`` (or accept delivery anyway,
        which the hypervisor never does).  Pushes a flags word and the
        resume PC on the current stack, enters kernel mode with interrupts
        masked, and vectors to the IRQ entry.  Returns a VM exit only if
        frame pushes fault badly enough to triple-fault.
        """
        flags = self.capture_state().pack_flags()
        try:
            self._push_word(flags)
            self._push_word(self.pc)
        except _GuestFault as fault:
            return self._deliver_fault(fault, self.pc)
        self.user = False
        self.int_enabled = False
        self.regs[IRQ_VECTOR_REG] = vector
        self.pc = self.vec_irq
        self.halted = False
        return None

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def step(self) -> VmExit | None:
        """Execute one instruction; return a VM exit if one fired."""
        pc0 = self.pc
        if self.controls.breakpoints and pc0 in self.controls.breakpoints \
                and self._skip_breakpoint_at != pc0:
            return VmExit(VmExitReason.BREAKPOINT, pc=pc0, next_pc=pc0)
        self._skip_breakpoint_at = None
        try:
            word = self.memory.fetch(pc0, self.user)
        except AccessViolation as violation:
            return self._deliver_fault(
                _GuestFault(FaultKind.ACCESS, str(violation)), pc0
            )
        instr = _DECODE_CACHE.get(word)
        if instr is None:
            try:
                instr = decode(word)
            except DecodeError as exc:
                return self._deliver_fault(
                    _GuestFault(FaultKind.DECODE, str(exc)), pc0
                )
            _DECODE_CACHE[word] = instr
        self.icount += 1
        try:
            return self._dispatch[instr.op](instr)
        except _GuestFault as fault:
            return self._deliver_fault(fault, pc0)
        except AccessViolation as violation:
            return self._deliver_fault(
                _GuestFault(FaultKind.ACCESS, str(violation)), pc0
            )

    # ------------------------------------------------------------------
    # fault plumbing
    # ------------------------------------------------------------------

    def _deliver_fault(self, fault: _GuestFault, pc0: int) -> VmExit | None:
        """Vector the guest to its fault handler, or triple-fault out."""
        if self.icount - self._last_fault_icount < 16:
            self._fault_streak += 1
        else:
            self._fault_streak = 1
        self._last_fault_icount = self.icount
        if self._fault_streak > 4 or not self.vec_fault:
            return VmExit(
                VmExitReason.TRIPLE_FAULT,
                pc=pc0,
                next_pc=pc0,
                value=int(fault.kind),
                detail=fault.detail,
            )
        flags = self.capture_state().pack_flags()
        try:
            self._push_word(flags)
            self._push_word(pc0)
        except (AccessViolation, _GuestFault):
            return VmExit(
                VmExitReason.TRIPLE_FAULT,
                pc=pc0,
                next_pc=pc0,
                value=int(fault.kind),
                detail=f"stack unusable during fault delivery: {fault.detail}",
            )
        self.user = False
        self.int_enabled = False
        self.regs[IRQ_VECTOR_REG] = int(fault.kind)
        self.pc = self.vec_fault
        return None

    # ------------------------------------------------------------------
    # stack helpers
    # ------------------------------------------------------------------

    def _push_word(self, value: int):
        sp = (self.regs[SP] - 1) & _WORD_MASK
        self.memory.store(sp, value, self.user)
        self.regs[SP] = sp

    def _pop_word(self) -> int:
        sp = self.regs[SP]
        value = self.memory.load(sp, self.user)
        self.regs[SP] = (sp + 1) & _WORD_MASK
        return value

    def _set_flags(self, lhs: int, rhs: int):
        self.zero = lhs == rhs
        self.negative = _signed(lhs) < _signed(rhs)

    # ------------------------------------------------------------------
    # instruction handlers
    # ------------------------------------------------------------------

    def _build_dispatch(self):
        return {
            Opcode.NOP: self._op_nop,
            Opcode.HLT: self._op_hlt,
            Opcode.LI: self._op_li,
            Opcode.MOV: self._op_mov,
            Opcode.ADD: self._op_add,
            Opcode.SUB: self._op_sub,
            Opcode.MUL: self._op_mul,
            Opcode.DIV: self._op_div,
            Opcode.AND: self._op_and,
            Opcode.OR: self._op_or,
            Opcode.XOR: self._op_xor,
            Opcode.SHL: self._op_shl,
            Opcode.SHR: self._op_shr,
            Opcode.ADDI: self._op_addi,
            Opcode.CMP: self._op_cmp,
            Opcode.CMPI: self._op_cmpi,
            Opcode.LD: self._op_ld,
            Opcode.ST: self._op_st,
            Opcode.PUSH: self._op_push,
            Opcode.POP: self._op_pop,
            Opcode.CALL: self._op_call,
            Opcode.CALLI: self._op_calli,
            Opcode.RET: self._op_ret,
            Opcode.JMP: self._op_jmp,
            Opcode.JMPI: self._op_jmpi,
            Opcode.JZ: self._op_jz,
            Opcode.JNZ: self._op_jnz,
            Opcode.JLT: self._op_jlt,
            Opcode.JGE: self._op_jge,
            Opcode.SYSCALL: self._op_syscall,
            Opcode.SYSRET: self._op_sysret,
            Opcode.IRET: self._op_iret,
            Opcode.INT3: self._op_int3,
            Opcode.RDTSC: self._op_rdtsc,
            Opcode.RDRAND: self._op_rdrand,
            Opcode.IN: self._op_in,
            Opcode.OUT: self._op_out,
            Opcode.CLI: self._op_cli,
            Opcode.STI: self._op_sti,
        }

    def _require_kernel(self, what: str):
        if self.user:
            raise _GuestFault(FaultKind.PRIVILEGE, f"{what} in user mode")

    def _op_nop(self, instr):
        self.pc += 1
        return None

    def _op_hlt(self, instr):
        self._require_kernel("hlt")
        pc0 = self.pc
        self.pc += 1
        self.halted = True
        return VmExit(VmExitReason.HLT, pc=pc0, next_pc=self.pc)

    def _op_li(self, instr):
        self.regs[instr.rd] = instr.imm & _WORD_MASK
        self.pc += 1
        return None

    def _op_mov(self, instr):
        self.regs[instr.rd] = self.regs[instr.rs1]
        self.pc += 1
        return None

    def _op_add(self, instr):
        self.regs[instr.rd] = (
            self.regs[instr.rs1] + self.regs[instr.rs2]
        ) & _WORD_MASK
        self.pc += 1
        return None

    def _op_sub(self, instr):
        self.regs[instr.rd] = (
            self.regs[instr.rs1] - self.regs[instr.rs2]
        ) & _WORD_MASK
        self.pc += 1
        return None

    def _op_mul(self, instr):
        self.regs[instr.rd] = (
            self.regs[instr.rs1] * self.regs[instr.rs2]
        ) & _WORD_MASK
        self.pc += 1
        return None

    def _op_div(self, instr):
        divisor = self.regs[instr.rs2]
        if divisor == 0:
            raise _GuestFault(FaultKind.DIV_ZERO, "divide by zero")
        self.regs[instr.rd] = self.regs[instr.rs1] // divisor
        self.pc += 1
        return None

    def _op_and(self, instr):
        self.regs[instr.rd] = self.regs[instr.rs1] & self.regs[instr.rs2]
        self.pc += 1
        return None

    def _op_or(self, instr):
        self.regs[instr.rd] = self.regs[instr.rs1] | self.regs[instr.rs2]
        self.pc += 1
        return None

    def _op_xor(self, instr):
        self.regs[instr.rd] = self.regs[instr.rs1] ^ self.regs[instr.rs2]
        self.pc += 1
        return None

    def _op_shl(self, instr):
        shift = self.regs[instr.rs2] & 63
        self.regs[instr.rd] = (self.regs[instr.rs1] << shift) & _WORD_MASK
        self.pc += 1
        return None

    def _op_shr(self, instr):
        shift = self.regs[instr.rs2] & 63
        self.regs[instr.rd] = self.regs[instr.rs1] >> shift
        self.pc += 1
        return None

    def _op_addi(self, instr):
        self.regs[instr.rd] = (self.regs[instr.rs1] + instr.imm) & _WORD_MASK
        self.pc += 1
        return None

    def _op_cmp(self, instr):
        self._set_flags(self.regs[instr.rs1], self.regs[instr.rs2])
        self.pc += 1
        return None

    def _op_cmpi(self, instr):
        self._set_flags(self.regs[instr.rs1], instr.imm & _WORD_MASK)
        self.pc += 1
        return None

    def _op_ld(self, instr):
        addr = (self.regs[instr.rs1] + instr.imm) & _WORD_MASK
        if self.controls.trap_mmio and self.memory.is_mmio(addr):
            pc0 = self.pc
            self.pc += 1
            return VmExit(
                VmExitReason.MMIO_READ, pc=pc0, next_pc=self.pc,
                rd=instr.rd, addr=addr,
            )
        self.regs[instr.rd] = self.memory.load(addr, self.user)
        self.pc += 1
        return None

    def _op_st(self, instr):
        addr = (self.regs[instr.rs1] + instr.imm) & _WORD_MASK
        value = self.regs[instr.rs2]
        if self.controls.trap_mmio and self.memory.is_mmio(addr):
            pc0 = self.pc
            self.pc += 1
            return VmExit(
                VmExitReason.MMIO_WRITE, pc=pc0, next_pc=self.pc,
                addr=addr, value=value,
            )
        self.memory.store(addr, value, self.user)
        self.pc += 1
        return None

    def _op_push(self, instr):
        self._push_word(self.regs[instr.rs1])
        self.pc += 1
        return None

    def _op_pop(self, instr):
        self.regs[instr.rd] = self._pop_word()
        self.pc += 1
        return None

    # ---------------- control transfer ----------------

    def _op_call(self, instr):
        return self._do_call(instr.imm & _WORD_MASK, indirect=False)

    def _op_calli(self, instr):
        target = self.regs[instr.rs1]
        jop_exit = self._jop_check(target)
        call_exit = self._do_call(target, indirect=True)
        return jop_exit or call_exit

    def _do_call(self, target: int, indirect: bool) -> VmExit | None:
        pc0 = self.pc
        return_addr = pc0 + 1
        self._push_word(return_addr)
        evicted = self.ras.push(return_addr)
        self.pc = target
        if evicted is not None and self.controls.ras_evict_exits:
            return VmExit(
                VmExitReason.RAS_EVICT, pc=pc0, next_pc=target,
                evicted=evicted,
            )
        if self._call_ret_trapped():
            return VmExit(
                VmExitReason.CALL_TRAP, pc=pc0, next_pc=target,
                target=target, return_addr=return_addr,
            )
        return None

    def _call_ret_trapped(self) -> bool:
        """Whether the alarm replayer's call/ret trap applies right now."""
        if not self.controls.trap_call_ret:
            return False
        return not self.user or self.controls.trap_call_ret_user

    def _op_ret(self, instr):
        pc0 = self.pc
        whitelisted = self.ret_whitelist == pc0
        predicted: int | None = None
        underflow = False
        if not whitelisted:
            if self.ras.empty:
                underflow = True
            else:
                predicted = self.ras.pop()
        target = self._pop_word()
        self.pc = target
        if self._call_ret_trapped():
            return VmExit(
                VmExitReason.RET_TRAP, pc=pc0, next_pc=target,
                target=target, actual=target, predicted=predicted,
            )
        if not self.controls.ras_alarm_exits:
            return None
        if whitelisted:
            if target not in self.tar_whitelist:
                return VmExit(
                    VmExitReason.ROP_ALARM, pc=pc0, next_pc=target,
                    actual=target, predicted=None,
                    alarm_kind=RopAlarmKind.WHITELIST_TARGET,
                )
            return None
        if underflow:
            return VmExit(
                VmExitReason.ROP_ALARM, pc=pc0, next_pc=target,
                actual=target, predicted=None,
                alarm_kind=RopAlarmKind.UNDERFLOW,
            )
        if predicted != target:
            return VmExit(
                VmExitReason.ROP_ALARM, pc=pc0, next_pc=target,
                actual=target, predicted=predicted,
                alarm_kind=RopAlarmKind.MISMATCH,
            )
        return None

    def _op_jmp(self, instr):
        self.pc = instr.imm & _WORD_MASK
        return None

    def _op_jmpi(self, instr):
        target = self.regs[instr.rs1]
        jop_exit = self._jop_check(target)
        self.pc = target
        return jop_exit

    def _jop_check(self, target: int) -> VmExit | None:
        """Hardware JOP legality check on indirect transfers (Table 1)."""
        if not self.controls.jop_check or not self.jop_table:
            return None
        pc0 = self.pc
        for begin, end in self.jop_table:
            if target == begin:
                return None
            if begin <= pc0 < end and begin <= target < end:
                return None
        return VmExit(
            VmExitReason.JOP_ALARM, pc=pc0, next_pc=target, target=target,
        )

    def _branch(self, take: bool, target: int):
        self.pc = target & _WORD_MASK if take else self.pc + 1

    def _op_jz(self, instr):
        self._branch(self.zero, instr.imm)
        return None

    def _op_jnz(self, instr):
        self._branch(not self.zero, instr.imm)
        return None

    def _op_jlt(self, instr):
        self._branch(self.negative, instr.imm)
        return None

    def _op_jge(self, instr):
        self._branch(not self.negative, instr.imm)
        return None

    # ---------------- privilege transitions ----------------

    def _op_syscall(self, instr):
        if not self.user:
            raise _GuestFault(FaultKind.PRIVILEGE, "syscall from kernel mode")
        self._push_word(self.pc + 1)
        self.user = False
        self.regs[SYSCALL_NUM_REG] = instr.imm & _WORD_MASK
        self.pc = self.vec_syscall
        return None

    def _op_sysret(self, instr):
        self._require_kernel("sysret")
        target = self._pop_word()
        self.user = True
        self.pc = target
        return None

    def _op_iret(self, instr):
        self._require_kernel("iret")
        resume_pc = self._pop_word()
        flags = unpack_flags(self._pop_word())
        self.pc = resume_pc
        self.zero = flags["zero"]
        self.negative = flags["negative"]
        self.user = flags["user"]
        self.int_enabled = flags["int_enabled"]
        return None

    def _op_int3(self, instr):
        pc0 = self.pc
        self.pc += 1
        return VmExit(VmExitReason.DEBUG, pc=pc0, next_pc=self.pc)

    # ---------------- nondeterministic instructions ----------------

    def _op_rdtsc(self, instr):
        pc0 = self.pc
        self.pc += 1
        if self.controls.trap_rdtsc:
            return VmExit(
                VmExitReason.RDTSC, pc=pc0, next_pc=self.pc, rd=instr.rd,
            )
        # Untrapped rdtsc (native runs): a deterministic pseudo-TSC.
        self.regs[instr.rd] = self.icount
        return None

    def _op_rdrand(self, instr):
        pc0 = self.pc
        self.pc += 1
        if self.controls.trap_rdrand:
            return VmExit(
                VmExitReason.RDRAND, pc=pc0, next_pc=self.pc, rd=instr.rd,
            )
        self.regs[instr.rd] = (self.icount * 2654435761) & _WORD_MASK
        return None

    def _op_in(self, instr):
        self._require_kernel("in")
        pc0 = self.pc
        self.pc += 1
        return VmExit(
            VmExitReason.PIO_IN, pc=pc0, next_pc=self.pc,
            rd=instr.rd, port=instr.imm,
        )

    def _op_out(self, instr):
        self._require_kernel("out")
        pc0 = self.pc
        self.pc += 1
        return VmExit(
            VmExitReason.PIO_OUT, pc=pc0, next_pc=self.pc,
            port=instr.imm, value=self.regs[instr.rs1],
        )

    def _op_cli(self, instr):
        self._require_kernel("cli")
        self.int_enabled = False
        self.pc += 1
        return None

    def _op_sti(self, instr):
        self._require_kernel("sti")
        self.int_enabled = True
        self.pc += 1
        return None


def _signed(value: int) -> int:
    """Interpret a 64-bit word as signed."""
    return value - 2**64 if value >= 2**63 else value
