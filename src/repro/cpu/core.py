"""The CPU execution engine.

Executes one guest instruction per :meth:`Cpu.step`, returning a
:class:`~repro.cpu.exits.VmExit` whenever an armed exit control fires.  The
engine is uniprocessor (as in the paper's evaluation), so the only
nondeterminism is what the hypervisor injects: interrupt timing and the
results of rdtsc/rdrand/PIO/MMIO.

Architectural conventions (fixed by the hardware):

* ``r14`` (``sp``) is the stack pointer used by push/pop/call/ret and by
  trap frames; stacks grow downward;
* ``r10`` receives the interrupt vector (on IRQ delivery) or fault code
  (on fault delivery) when the kernel handler starts;
* ``r11`` receives the syscall number on ``syscall`` entry;
* interrupt/fault delivery pushes a flags word then the resume PC;
  ``iret`` pops them in reverse order.
"""

from __future__ import annotations

from repro.config import SimulationConfig

# The decode/exec caches, fault types, and the batched interpreter loop
# live in :mod:`repro.cpu.backend`; the names are re-exported here because
# they are part of this module's historical API surface.
from repro.cpu.backend import (  # noqa: F401 - re-exports
    _DECODE_CACHE,
    _EXEC_CACHE,
    FaultKind,
    _GuestFault,
    create_backend,
)
from repro.cpu.exits import ExitControls, RopAlarmKind, VmExit, VmExitReason
from repro.cpu.ras import ReturnAddressStack
from repro.cpu.state import CpuState, unpack_flags
from repro.isa.instruction import Instruction
from repro.isa.opcodes import SP, Opcode
from repro.memory.paging import AccessViolation
from repro.memory.physical import PhysicalMemory

#: Register that carries the vector/fault code into kernel handlers.
IRQ_VECTOR_REG = 10
#: Register that carries the syscall number into the syscall handler.
SYSCALL_NUM_REG = 11

_WORD_MASK = 0xFFFF_FFFF_FFFF_FFFF

#: Batch bound meaning "no external limit" (callers without a budget).
UNBOUNDED_STEPS = 1 << 62


class Cpu:
    """One simulated processor core attached to guest physical memory."""

    def __init__(self, memory: PhysicalMemory, config: SimulationConfig,
                 controls: ExitControls | None = None):
        self.memory = memory
        self.config = config
        self.controls = controls if controls is not None else ExitControls()
        self.regs: list[int] = [0] * 16
        self.pc = 0
        self.zero = False
        self.negative = False
        self.user = False
        self.int_enabled = False
        self.icount = 0
        self.halted = False
        self.ras = ReturnAddressStack(config.ras_entries)
        #: PC of the kernel's one non-procedural return (RetWhitelist, §4.4).
        self.ret_whitelist: int | None = None
        #: Legal targets of the whitelisted return (TarWhitelist, §4.4).
        self.tar_whitelist: frozenset[int] = frozenset()
        #: Hardware JOP function-boundary table: tuple of (begin, end).
        self.jop_table: tuple[tuple[int, int], ...] = ()
        #: Hardware entry vectors (programmed at boot from the kernel image).
        self.vec_syscall = 0
        self.vec_irq = 0
        self.vec_fault = 0
        self._skip_breakpoint_at: int | None = None
        self._fault_streak = 0
        self._last_fault_icount = -10**9
        # Fetch-page cache: while ``_fp_lo <= pc < _fp_hi`` and the mode
        # matches ``_fp_user``, instruction words come straight out of
        # ``_fp_page`` with no permission walk.  Invalidated whenever
        # ``memory.version`` moves (permission changes, page restores).
        self._fp_lo = 1
        self._fp_hi = 0
        self._fp_page = None
        self._fp_user = False
        self._mem_version = -1
        # Exit-control hoists refreshed at every run() entry.
        self._trap_mmio = self.controls.trap_mmio
        self._mmio_lo, self._mmio_hi = memory.mmio_bounds
        #: Execution backend (``config.exec_backend``): owns the batched
        #: run loop but no architectural state — checkpoints and digests
        #: never consult it.
        self.backend = create_backend(config.exec_backend)

    # ------------------------------------------------------------------
    # state capture / restore
    # ------------------------------------------------------------------

    def capture_state(self) -> CpuState:
        """Snapshot all architectural register state (checkpointing)."""
        return CpuState(
            regs=tuple(self.regs),
            pc=self.pc,
            zero=self.zero,
            negative=self.negative,
            user=self.user,
            int_enabled=self.int_enabled,
            icount=self.icount,
            halted=self.halted,
        )

    def restore_state(self, state: CpuState):
        """Load architectural register state (checkpoint restore).

        The register file is overwritten *in place*: translated code from
        the trace backend binds the list object itself, so it must stay
        stable across checkpoint restores.
        """
        self.regs[:] = state.regs
        self.pc = state.pc
        self.zero = state.zero
        self.negative = state.negative
        self.user = state.user
        self.int_enabled = state.int_enabled
        self.icount = state.icount
        self.halted = state.halted
        self._skip_breakpoint_at = None
        self._fault_streak = 0

    # ------------------------------------------------------------------
    # hypervisor-facing controls
    # ------------------------------------------------------------------

    def skip_breakpoint_once(self):
        """Let the next step execute the instruction under the breakpoint."""
        self._skip_breakpoint_at = self.pc

    def raise_interrupt(self, vector: int) -> VmExit | None:
        """Deliver an external interrupt now (hypervisor injection).

        The caller must ensure ``int_enabled`` (or accept delivery anyway,
        which the hypervisor never does).  Pushes a flags word and the
        resume PC on the current stack, enters kernel mode with interrupts
        masked, and vectors to the IRQ entry.  Returns a VM exit only if
        frame pushes fault badly enough to triple-fault.
        """
        flags = self.capture_state().pack_flags()
        try:
            self._push_word(flags)
            self._push_word(self.pc)
        except _GuestFault as fault:
            return self._deliver_fault(fault, self.pc)
        self.user = False
        self.int_enabled = False
        self.regs[IRQ_VECTOR_REG] = vector
        self.pc = self.vec_irq
        self.halted = False
        return None

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def step(self) -> VmExit | None:
        """Execute one instruction; return a VM exit if one fired."""
        return self.run(1)

    def run(self, max_steps: int) -> VmExit | None:
        """Execute up to ``max_steps`` instructions; stop early on a VM exit.

        Delegates to the configured :class:`~repro.cpu.backend
        .ExecutionBackend` (``"interp"`` — the reference batched
        interpreter — by default, or the ``"trace"`` translated fast path).

        Batch contract (see ``docs/PERFORMANCE.md``): nothing outside the
        CPU can interrupt a batch, so callers must size ``max_steps`` such
        that the next external event — a due log record, a due world event,
        an instruction budget — falls at or after the batch end.  VM exits,
        guest faults, and breakpoints end a batch from the inside; guest
        stores stay coherent with the fetch cache because pages mutate in
        place, and any host-side remapping bumps ``memory.version``, which
        invalidates backend caches at the next ``run()`` entry.
        """
        return self.backend.run(self, max_steps)

    # ------------------------------------------------------------------
    # fault plumbing
    # ------------------------------------------------------------------

    def _deliver_fault(self, fault: _GuestFault, pc0: int) -> VmExit | None:
        """Vector the guest to its fault handler, or triple-fault out."""
        if self.icount - self._last_fault_icount < 16:
            self._fault_streak += 1
        else:
            self._fault_streak = 1
        self._last_fault_icount = self.icount
        if self._fault_streak > 4 or not self.vec_fault:
            return VmExit(
                VmExitReason.TRIPLE_FAULT,
                pc=pc0,
                next_pc=pc0,
                value=int(fault.kind),
                detail=fault.detail,
            )
        flags = self.capture_state().pack_flags()
        try:
            self._push_word(flags)
            self._push_word(pc0)
        except (AccessViolation, _GuestFault):
            return VmExit(
                VmExitReason.TRIPLE_FAULT,
                pc=pc0,
                next_pc=pc0,
                value=int(fault.kind),
                detail=f"stack unusable during fault delivery: {fault.detail}",
            )
        self.user = False
        self.int_enabled = False
        self.regs[IRQ_VECTOR_REG] = int(fault.kind)
        self.pc = self.vec_fault
        return None

    # ------------------------------------------------------------------
    # stack helpers
    # ------------------------------------------------------------------

    def _push_word(self, value: int):
        sp = (self.regs[SP] - 1) & _WORD_MASK
        self.memory.store(sp, value, self.user)
        self.regs[SP] = sp

    def _pop_word(self) -> int:
        sp = self.regs[SP]
        value = self.memory.load(sp, self.user)
        self.regs[SP] = (sp + 1) & _WORD_MASK
        return value

    def _set_flags(self, lhs: int, rhs: int):
        self.zero = lhs == rhs
        self.negative = _signed(lhs) < _signed(rhs)

    # ------------------------------------------------------------------
    # instruction handlers
    # ------------------------------------------------------------------

    def _require_kernel(self, what: str):
        if self.user:
            raise _GuestFault(FaultKind.PRIVILEGE, f"{what} in user mode")

    def _op_nop(self, instr):
        self.pc += 1
        return None

    def _op_hlt(self, instr):
        self._require_kernel("hlt")
        pc0 = self.pc
        self.pc += 1
        self.halted = True
        return VmExit(VmExitReason.HLT, pc=pc0, next_pc=self.pc)

    def _op_li(self, instr):
        self.regs[instr.rd] = instr.imm & _WORD_MASK
        self.pc += 1
        return None

    def _op_mov(self, instr):
        self.regs[instr.rd] = self.regs[instr.rs1]
        self.pc += 1
        return None

    def _op_add(self, instr):
        self.regs[instr.rd] = (
            self.regs[instr.rs1] + self.regs[instr.rs2]
        ) & _WORD_MASK
        self.pc += 1
        return None

    def _op_sub(self, instr):
        self.regs[instr.rd] = (
            self.regs[instr.rs1] - self.regs[instr.rs2]
        ) & _WORD_MASK
        self.pc += 1
        return None

    def _op_mul(self, instr):
        self.regs[instr.rd] = (
            self.regs[instr.rs1] * self.regs[instr.rs2]
        ) & _WORD_MASK
        self.pc += 1
        return None

    def _op_div(self, instr):
        divisor = self.regs[instr.rs2]
        if divisor == 0:
            raise _GuestFault(FaultKind.DIV_ZERO, "divide by zero")
        self.regs[instr.rd] = self.regs[instr.rs1] // divisor
        self.pc += 1
        return None

    def _op_and(self, instr):
        self.regs[instr.rd] = self.regs[instr.rs1] & self.regs[instr.rs2]
        self.pc += 1
        return None

    def _op_or(self, instr):
        self.regs[instr.rd] = self.regs[instr.rs1] | self.regs[instr.rs2]
        self.pc += 1
        return None

    def _op_xor(self, instr):
        self.regs[instr.rd] = self.regs[instr.rs1] ^ self.regs[instr.rs2]
        self.pc += 1
        return None

    def _op_shl(self, instr):
        shift = self.regs[instr.rs2] & 63
        self.regs[instr.rd] = (self.regs[instr.rs1] << shift) & _WORD_MASK
        self.pc += 1
        return None

    def _op_shr(self, instr):
        shift = self.regs[instr.rs2] & 63
        self.regs[instr.rd] = self.regs[instr.rs1] >> shift
        self.pc += 1
        return None

    def _op_addi(self, instr):
        self.regs[instr.rd] = (self.regs[instr.rs1] + instr.imm) & _WORD_MASK
        self.pc += 1
        return None

    def _op_cmp(self, instr):
        self._set_flags(self.regs[instr.rs1], self.regs[instr.rs2])
        self.pc += 1
        return None

    def _op_cmpi(self, instr):
        self._set_flags(self.regs[instr.rs1], instr.imm & _WORD_MASK)
        self.pc += 1
        return None

    def _op_ld(self, instr):
        addr = (self.regs[instr.rs1] + instr.imm) & _WORD_MASK
        if self._trap_mmio and self._mmio_lo <= addr < self._mmio_hi \
                and self.memory.is_mmio(addr):
            pc0 = self.pc
            self.pc += 1
            return VmExit(
                VmExitReason.MMIO_READ, pc=pc0, next_pc=self.pc,
                rd=instr.rd, addr=addr,
            )
        self.regs[instr.rd] = self.memory.load(addr, self.user)
        self.pc += 1
        return None

    def _op_st(self, instr):
        addr = (self.regs[instr.rs1] + instr.imm) & _WORD_MASK
        value = self.regs[instr.rs2]
        if self._trap_mmio and self._mmio_lo <= addr < self._mmio_hi \
                and self.memory.is_mmio(addr):
            pc0 = self.pc
            self.pc += 1
            return VmExit(
                VmExitReason.MMIO_WRITE, pc=pc0, next_pc=self.pc,
                addr=addr, value=value,
            )
        self.memory.store(addr, value, self.user)
        self.pc += 1
        return None

    def _op_push(self, instr):
        self._push_word(self.regs[instr.rs1])
        self.pc += 1
        return None

    def _op_pop(self, instr):
        self.regs[instr.rd] = self._pop_word()
        self.pc += 1
        return None

    # ---------------- control transfer ----------------

    def _op_call(self, instr):
        return self._do_call(instr.imm & _WORD_MASK, indirect=False)

    def _op_calli(self, instr):
        target = self.regs[instr.rs1]
        jop_exit = self._jop_check(target)
        call_exit = self._do_call(target, indirect=True)
        return jop_exit or call_exit

    def _do_call(self, target: int, indirect: bool) -> VmExit | None:
        pc0 = self.pc
        return_addr = pc0 + 1
        self._push_word(return_addr)
        evicted = self.ras.push(return_addr)
        self.pc = target
        if evicted is not None and self.controls.ras_evict_exits:
            return VmExit(
                VmExitReason.RAS_EVICT, pc=pc0, next_pc=target,
                evicted=evicted,
            )
        if self._call_ret_trapped():
            return VmExit(
                VmExitReason.CALL_TRAP, pc=pc0, next_pc=target,
                target=target, return_addr=return_addr,
            )
        return None

    def _call_ret_trapped(self) -> bool:
        """Whether the alarm replayer's call/ret trap applies right now."""
        if not self.controls.trap_call_ret:
            return False
        return not self.user or self.controls.trap_call_ret_user

    def _op_ret(self, instr):
        pc0 = self.pc
        whitelisted = self.ret_whitelist == pc0
        predicted: int | None = None
        underflow = False
        if not whitelisted:
            if self.ras.empty:
                underflow = True
            else:
                predicted = self.ras.pop()
        target = self._pop_word()
        self.pc = target
        if self._call_ret_trapped():
            return VmExit(
                VmExitReason.RET_TRAP, pc=pc0, next_pc=target,
                target=target, actual=target, predicted=predicted,
            )
        if not self.controls.ras_alarm_exits:
            return None
        if whitelisted:
            if target not in self.tar_whitelist:
                return VmExit(
                    VmExitReason.ROP_ALARM, pc=pc0, next_pc=target,
                    actual=target, predicted=None,
                    alarm_kind=RopAlarmKind.WHITELIST_TARGET,
                )
            return None
        if underflow:
            return VmExit(
                VmExitReason.ROP_ALARM, pc=pc0, next_pc=target,
                actual=target, predicted=None,
                alarm_kind=RopAlarmKind.UNDERFLOW,
            )
        if predicted != target:
            return VmExit(
                VmExitReason.ROP_ALARM, pc=pc0, next_pc=target,
                actual=target, predicted=predicted,
                alarm_kind=RopAlarmKind.MISMATCH,
            )
        return None

    def _op_jmp(self, instr):
        self.pc = instr.imm & _WORD_MASK
        return None

    def _op_jmpi(self, instr):
        target = self.regs[instr.rs1]
        jop_exit = self._jop_check(target)
        self.pc = target
        return jop_exit

    def _jop_check(self, target: int) -> VmExit | None:
        """Hardware JOP legality check on indirect transfers (Table 1)."""
        if not self.controls.jop_check or not self.jop_table:
            return None
        pc0 = self.pc
        for begin, end in self.jop_table:
            if target == begin:
                return None
            if begin <= pc0 < end and begin <= target < end:
                return None
        return VmExit(
            VmExitReason.JOP_ALARM, pc=pc0, next_pc=target, target=target,
        )

    def _branch(self, take: bool, target: int):
        self.pc = target & _WORD_MASK if take else self.pc + 1

    def _op_jz(self, instr):
        self._branch(self.zero, instr.imm)
        return None

    def _op_jnz(self, instr):
        self._branch(not self.zero, instr.imm)
        return None

    def _op_jlt(self, instr):
        self._branch(self.negative, instr.imm)
        return None

    def _op_jge(self, instr):
        self._branch(not self.negative, instr.imm)
        return None

    # ---------------- privilege transitions ----------------

    def _op_syscall(self, instr):
        if not self.user:
            raise _GuestFault(FaultKind.PRIVILEGE, "syscall from kernel mode")
        self._push_word(self.pc + 1)
        self.user = False
        self.regs[SYSCALL_NUM_REG] = instr.imm & _WORD_MASK
        self.pc = self.vec_syscall
        return None

    def _op_sysret(self, instr):
        self._require_kernel("sysret")
        target = self._pop_word()
        self.user = True
        self.pc = target
        return None

    def _op_iret(self, instr):
        self._require_kernel("iret")
        resume_pc = self._pop_word()
        flags = unpack_flags(self._pop_word())
        self.pc = resume_pc
        self.zero = flags["zero"]
        self.negative = flags["negative"]
        self.user = flags["user"]
        self.int_enabled = flags["int_enabled"]
        return None

    def _op_int3(self, instr):
        pc0 = self.pc
        self.pc += 1
        return VmExit(VmExitReason.DEBUG, pc=pc0, next_pc=self.pc)

    # ---------------- nondeterministic instructions ----------------

    def _op_rdtsc(self, instr):
        pc0 = self.pc
        self.pc += 1
        if self.controls.trap_rdtsc:
            return VmExit(
                VmExitReason.RDTSC, pc=pc0, next_pc=self.pc, rd=instr.rd,
            )
        # Untrapped rdtsc (native runs): a deterministic pseudo-TSC.
        self.regs[instr.rd] = self.icount
        return None

    def _op_rdrand(self, instr):
        pc0 = self.pc
        self.pc += 1
        if self.controls.trap_rdrand:
            return VmExit(
                VmExitReason.RDRAND, pc=pc0, next_pc=self.pc, rd=instr.rd,
            )
        self.regs[instr.rd] = (self.icount * 2654435761) & _WORD_MASK
        return None

    def _op_in(self, instr):
        self._require_kernel("in")
        pc0 = self.pc
        self.pc += 1
        return VmExit(
            VmExitReason.PIO_IN, pc=pc0, next_pc=self.pc,
            rd=instr.rd, port=instr.imm,
        )

    def _op_out(self, instr):
        self._require_kernel("out")
        pc0 = self.pc
        self.pc += 1
        return VmExit(
            VmExitReason.PIO_OUT, pc=pc0, next_pc=self.pc,
            port=instr.imm, value=self.regs[instr.rs1],
        )

    def _op_cli(self, instr):
        self._require_kernel("cli")
        self.int_enabled = False
        self.pc += 1
        return None

    def _op_sti(self, instr):
        self._require_kernel("sti")
        self.int_enabled = True
        self.pc += 1
        return None


def _signed(value: int) -> int:
    """Interpret a 64-bit word as signed."""
    return value - 2**64 if value >= 2**63 else value


def _build_dispatch_table() -> tuple:
    """Opcode-int-indexed dispatch table of unbound handler functions.

    Built once at import: every :class:`Cpu` instance shares it, and the
    run loop resolves a handler with a plain tuple index instead of a dict
    lookup or per-instance bound-method table.
    """
    handlers = {
        Opcode.NOP: Cpu._op_nop,
        Opcode.HLT: Cpu._op_hlt,
        Opcode.LI: Cpu._op_li,
        Opcode.MOV: Cpu._op_mov,
        Opcode.ADD: Cpu._op_add,
        Opcode.SUB: Cpu._op_sub,
        Opcode.MUL: Cpu._op_mul,
        Opcode.DIV: Cpu._op_div,
        Opcode.AND: Cpu._op_and,
        Opcode.OR: Cpu._op_or,
        Opcode.XOR: Cpu._op_xor,
        Opcode.SHL: Cpu._op_shl,
        Opcode.SHR: Cpu._op_shr,
        Opcode.ADDI: Cpu._op_addi,
        Opcode.CMP: Cpu._op_cmp,
        Opcode.CMPI: Cpu._op_cmpi,
        Opcode.LD: Cpu._op_ld,
        Opcode.ST: Cpu._op_st,
        Opcode.PUSH: Cpu._op_push,
        Opcode.POP: Cpu._op_pop,
        Opcode.CALL: Cpu._op_call,
        Opcode.CALLI: Cpu._op_calli,
        Opcode.RET: Cpu._op_ret,
        Opcode.JMP: Cpu._op_jmp,
        Opcode.JMPI: Cpu._op_jmpi,
        Opcode.JZ: Cpu._op_jz,
        Opcode.JNZ: Cpu._op_jnz,
        Opcode.JLT: Cpu._op_jlt,
        Opcode.JGE: Cpu._op_jge,
        Opcode.SYSCALL: Cpu._op_syscall,
        Opcode.SYSRET: Cpu._op_sysret,
        Opcode.IRET: Cpu._op_iret,
        Opcode.INT3: Cpu._op_int3,
        Opcode.RDTSC: Cpu._op_rdtsc,
        Opcode.RDRAND: Cpu._op_rdrand,
        Opcode.IN: Cpu._op_in,
        Opcode.OUT: Cpu._op_out,
        Opcode.CLI: Cpu._op_cli,
        Opcode.STI: Cpu._op_sti,
    }
    table: list = [None] * (max(int(op) for op in Opcode) + 1)
    for op, handler in handlers.items():
        table[int(op)] = handler
    return tuple(table)


Cpu._DISPATCH = _build_dispatch_table()
