"""The hardware Return Address Stack (RAS) model.

A fixed-capacity LIFO of predicted return targets (§2.4).  ``call`` pushes
the fall-through address; ``ret`` pops the prediction.  Three behaviours
matter to RnR-Safe and are modelled faithfully:

* **eviction** — pushing into a full RAS silently drops the *oldest* entry
  in a conventional processor; RnR-Safe's hardware instead reports the
  about-to-be-evicted entry so the hypervisor can log an Evict record (§4.5);
* **underflow** — popping an empty RAS yields no prediction, which the
  conventional RAS counts as a misprediction;
* **dump/restore** — microcode saves and reloads the whole RAS around
  context switches into the per-thread BackRAS (§4.3).
"""

from __future__ import annotations

from repro.errors import ReproError

#: An immutable copy of RAS contents, oldest entry first.
RasSnapshot = tuple[int, ...]


class ReturnAddressStack:
    """Fixed-capacity return-address stack.

    Entries are stored oldest-first; ``entries[-1]`` is the top of stack
    (the next prediction).
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ReproError(f"RAS capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: list[int] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """Whether the next push will evict."""
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        """Whether the next pop will underflow."""
        return not self._entries

    def peek(self) -> int | None:
        """Current top-of-stack prediction without popping."""
        return self._entries[-1] if self._entries else None

    def push(self, return_addr: int) -> int | None:
        """Push a predicted return target.

        Returns the evicted (oldest) entry when the RAS was full, else
        ``None``.  The caller — the CPU core — turns a non-``None`` result
        into a RAS-evict VM exit when that exit control is armed.
        """
        evicted = None
        if len(self._entries) >= self.capacity:
            evicted = self._entries.pop(0)
        self._entries.append(return_addr)
        return evicted

    def pop(self) -> int | None:
        """Pop the prediction, or ``None`` on underflow."""
        if not self._entries:
            return None
        return self._entries.pop()

    def save(self) -> RasSnapshot:
        """Microcode dump of the full RAS (context switch / checkpoint)."""
        return tuple(self._entries)

    def restore(self, snapshot: RasSnapshot):
        """Microcode reload of a previously dumped RAS."""
        if len(snapshot) > self.capacity:
            raise ReproError(
                f"snapshot of {len(snapshot)} entries exceeds capacity "
                f"{self.capacity}"
            )
        self._entries = list(snapshot)

    def clear(self):
        """Empty the RAS (boot, or BackRAS entry for a brand-new thread)."""
        self._entries = []
