"""Simulated processor: execution engine, RAS hardware, VM-exit machinery.

This package models the paper's proposed hardware:

* a fixed-capacity Return Address Stack with eviction and underflow events
  (:mod:`repro.cpu.ras`);
* the Ret/Tar whitelists and the Whitelisted flag for the kernel's
  non-procedural return (§4.4);
* microcoded BackRAS dump/restore hooks driven by the hypervisor (§4.3);
* configurable exit controls (which events cause VM exits), the simulated
  analogue of Intel VT-x VMCS execution controls (§5.1).
"""

from repro.cpu.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    InterpreterBackend,
    create_backend,
)
from repro.cpu.exits import (
    ExitControls,
    RopAlarmKind,
    VmExit,
    VmExitReason,
)
from repro.cpu.ras import RasSnapshot, ReturnAddressStack
from repro.cpu.state import CpuState, FLAGS_FIELDS
from repro.cpu.core import Cpu, IRQ_VECTOR_REG, SYSCALL_NUM_REG

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "InterpreterBackend",
    "create_backend",
    "ExitControls",
    "RopAlarmKind",
    "VmExit",
    "VmExitReason",
    "RasSnapshot",
    "ReturnAddressStack",
    "CpuState",
    "FLAGS_FIELDS",
    "Cpu",
    "IRQ_VECTOR_REG",
    "SYSCALL_NUM_REG",
]
