"""Trace-cache translated execution backend (``exec_backend="trace"``).

Superblocks are discovered at branch boundaries and translated **once**
into a single Python closure — a superinstruction chain with fetch and
decode fused away at translation time:

* straight-line ALU/flag instructions compile to locals-bound list
  operations on the register file (no handler call, no per-instruction
  fetch, no dict probe);
* comparison flags live in closure locals and are written back to the
  CPU only at block exits, fault points, and handler calls — the only
  places they are architecturally observable;
* loads/stores/push/pop inline the page-table walk (permission bit tests
  against baked-in literals, direct ``array`` indexing); anything the
  fast path rejects — MMIO (device pages are never mapped with
  permissions, so the permission guard subsumes the bounds check),
  violations, observed or executable pages — delegates to the reference
  handler and ends the block;
* translation continues *through* control flow wherever the successor is
  static: unconditional jumps are followed (the ``jmp`` itself costs one
  icount unit and zero generated code), direct calls run the reference
  ``call`` handler and keep translating at the callee, and conditional
  branches keep translating down the fall-through path, compiling the
  taken side into an early ``return`` — so a superblock typically ends
  only at a ``ret``/``jmpi``/syscall or when it revisits an address;
* everything else that can produce a VM exit or mutate privileged state
  (indirect transfers, syscalls, rdtsc/rdrand, port I/O, cli/sti, div)
  calls the *same* unbound handler the interpreter dispatches to, after
  materializing ``pc``/``icount``/flags exactly as the interpreter would
  have;
* a superblock whose walk returns to its own entry (a loop of any shape:
  backward conditional branch, ``jmp`` chain, mid-loop entry) compiles
  to an internal ``while`` with a fuel counter, so hot loop bodies run
  many iterations per dispatch — with icount and flags accumulated in
  locals — without touching the block cache at all.

Bit-identity rules (the contract the differential fuzzer enforces):

* ``icount`` is incremented *before* every potentially-faulting or
  handler-called instruction (accumulated increments are flushed at that
  point), and ``pc`` is materialized to the faulting instruction's
  address before anything that can raise — so fault delivery, the
  fault-streak triple-fault logic, and every VM exit observe exactly the
  interpreter's architectural state;
* a dispatch never executes past ``max_steps``: translations are
  **budget-capped** — when the remaining batch budget is smaller than
  the full block size, a shorter variant is translated for the
  power-of-two bucket of the remaining budget (recorder batches are
  bounded by world-event horizons and are often tiny, so these variants
  are the recording fast path) — which is what preserves interrupt
  delivery at every icount offset;
* blocks never span a watchpoint (breakpoint) address, and the
  breakpoint check runs before every block entry, so ``BREAKPOINT``
  exits fire at the same instruction they would under the interpreter.

Cache keying and invalidation: per-backend blocks are keyed on
``(pc, budget bucket, privilege mode)`` and the whole cache is tied to
``PhysicalMemory.version`` — any version bump (remapping, permission
changes, page-object replacement, and — since this backend exists —
writes into executable pages) flushes every translation.  Guest stores
that reach an executable page take the translated slow path, which ends
the current block immediately, so even a store into the *currently
executing* block cannot run stale code: the next dispatch sees the
version bump and retranslates.  The version check also runs per block
dispatch (not only at ``run()`` entry) to catch mid-batch self-modifying
stores that target *other* cached blocks.

Compiled closures are additionally shared through a module-level code
cache keyed by the *decoded walk itself* (entry, mode, page size, and
the exact instruction sequence), not by address alone — so the recorder,
checkpointing replayer, and every alarm replayer of the same image reuse
one compilation, and two machines with different code at the same pc can
never collide.  Content-addressed entries are immutable and never stale;
the cache is only bounded, never invalidated.
"""

from __future__ import annotations

from repro.cpu.backend import (
    _DECODE_CACHE,
    ExecutionBackend,
    FaultKind,
    InterpreterBackend,
    _GuestFault,
    remember_decode,
)
from repro.cpu.exits import VmExit, VmExitReason
from repro.errors import DecodeError
from repro.isa.instruction import decode
from repro.isa.opcodes import CONTROL_FLOW, SP, Opcode
from repro.memory.paging import AccessViolation

_M = 0xFFFF_FFFF_FFFF_FFFF
#: XOR-ing both sides with the sign bit turns unsigned ``<`` into the
#: architectural signed comparison (orders [MIN_INT, MAX_INT] correctly).
_SIGN = 1 << 63

#: Longest translated superblock, in retired instructions (power of two:
#: shorter budget-capped variants use the power-of-two buckets below it).
_MAX_BLOCK = 128
#: Cached translations per backend instance before the cache is cleared.
_MAX_BLOCKS = 4096

#: Budget-bucket quantization: translations exist only for caps
#: {1, 4, 16, max_block}, so a pc accumulates at most four variants
#: instead of one per power of two (compilation is the dominant cost of
#: the recorder's small, event-bounded batches).  Indexed by
#: ``remaining.bit_length() - 1``; larger budgets use the full cap.
_CAP_QUANT = (0, 0, 2, 2, 4, 4, 4)

#: Module-level compiled-code cache shared by every backend instance,
#: keyed by (entry, mode, page size, walked instructions, terminator).
#: Content-addressed: entries are never stale, only evicted for size.
_CODE_CACHE: dict = {}
_CODE_CACHE_LIMIT = 1 << 14

_OP_ALU = {
    Opcode.ADD: "+",
    Opcode.SUB: "-",
    Opcode.MUL: "*",
}
_OP_LOGIC = {
    Opcode.AND: "&",
    Opcode.OR: "|",
    Opcode.XOR: "^",
}
#: Flag expression under which a conditional branch is taken, in
#: (attribute-resident, local-resident) forms.
_OP_BRANCH = {
    Opcode.JZ: ("cpu.zero", "_z"),
    Opcode.JNZ: ("not cpu.zero", "not _z"),
    Opcode.JLT: ("cpu.negative", "_n"),
    Opcode.JGE: ("not cpu.negative", "not _n"),
}
#: Flag expression under which a loop-terminator branch *exits* the loop.
_OP_BRANCH_EXIT = {
    Opcode.JZ: ("not cpu.zero", "not _z"),
    Opcode.JNZ: ("cpu.zero", "_z"),
    Opcode.JLT: ("not cpu.negative", "not _n"),
    Opcode.JGE: ("cpu.negative", "_n"),
}
_FLAG_PRODUCERS = frozenset({Opcode.CMP, Opcode.CMPI})


class _Block:
    """One translated superblock: the compiled closure and its worst-case
    retirement length (actual retirement may be shorter on an early
    branch exit, never longer).

    Instances are per-cache-key wrappers (``hits``/``short`` are local
    promotion state); only ``fn``/``length`` are shared through the
    module-level code cache."""

    __slots__ = ("fn", "length", "hits", "short")

    def __init__(self, fn, length: int):
        self.fn = fn
        self.length = length
        self.hits = 0
        self.short = False


class TraceCacheBackend(ExecutionBackend):
    """Translate-and-cache execution backend."""

    name = "trace"

    def __init__(self, max_block: int = _MAX_BLOCK,
                 max_blocks: int = _MAX_BLOCKS):
        self._blocks: dict[int, _Block] = {}
        self._max_block = max_block
        #: log2 of the largest translation bucket (max_block rounded down
        #: to a power of two).
        self._cap_log = max(max_block.bit_length() - 1, 0)
        self._capacity = max_blocks
        self._mem_version = -1
        self._bp_snapshot: frozenset[int] = frozenset()
        #: Reference interpreter, kept as the correctness safety net for
        #: any dispatch the translator cannot cover — it shares the Cpu's
        #: architectural state, so switching mid-batch is seamless.
        self._interp = InterpreterBackend()
        self.blocks_translated = 0
        self.block_hits = 0
        self.block_misses = 0
        self.shared_code_hits = 0
        self.promotions = 0
        self.invalidations = 0
        self.fallback_steps = 0
        self.entry_faults = 0

    # ------------------------------------------------------------------
    # ExecutionBackend interface
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "blocks_translated": self.blocks_translated,
            "block_hits": self.block_hits,
            "block_misses": self.block_misses,
            "shared_code_hits": self.shared_code_hits,
            "promotions": self.promotions,
            "invalidations": self.invalidations,
            "fallback_steps": self.fallback_steps,
            "entry_faults": self.entry_faults,
            "cached_blocks": len(self._blocks),
        }

    def invalidate(self):
        self._blocks.clear()
        self._mem_version = -1

    def run(self, cpu, max_steps: int) -> VmExit | None:
        if max_steps <= 0:
            return None
        memory = cpu.memory
        blocks = self._blocks
        version = memory.version
        if version != self._mem_version:
            self._mem_version = version
            if blocks:
                blocks.clear()
                self.invalidations += 1
        controls = cpu.controls
        cpu._trap_mmio = controls.trap_mmio
        cpu._mmio_lo, cpu._mmio_hi = memory.mmio_bounds
        breakpoints = controls.breakpoints
        if breakpoints != self._bp_snapshot:
            self._bp_snapshot = frozenset(breakpoints)
            if blocks:
                blocks.clear()
                self.invalidations += 1
        blocks_get = blocks.get
        deliver = cpu._deliver_fault
        regs = cpu.regs
        cap_log_max = self._cap_log
        max_cap = 1 << cap_log_max
        remaining = max_steps
        hits = 0
        try:
            while remaining > 0:
                pc0 = cpu.pc
                if breakpoints:
                    if pc0 in breakpoints \
                            and cpu._skip_breakpoint_at != pc0:
                        return VmExit(VmExitReason.BREAKPOINT,
                                      pc=pc0, next_pc=pc0)
                    # The skip token is cleared only on the paths where
                    # *this* dispatcher executes (block body / entry
                    # fault); the interpreter-tail fallback re-checks and
                    # clears it itself, so it must still be armed there.
                if memory.version != version:
                    # A guest store rewrote executable memory mid-batch:
                    # every translation is suspect, not just the block
                    # that contained the store.
                    version = memory.version
                    self._mem_version = version
                    blocks.clear()
                    self.invalidations += 1
                # Budget bucket: a quantized power of two not exceeding
                # the remaining batch budget, so every cached variant is
                # dispatchable (length <= bucket <= remaining).
                if remaining >= max_cap:
                    cap_log = cap_log_max
                else:
                    cap_log = remaining.bit_length() - 1
                    cap_log = _CAP_QUANT[cap_log if cap_log < 7 else 6]
                key = (pc0 << 4) | (cap_log << 1) | cpu.user
                block = blocks_get(key)
                if block is None:
                    self.block_misses += 1
                    # Tiered translation: the first translation for a
                    # large bucket is capped at 16 steps — cheap to
                    # compile and usually shared with the recorder's
                    # small-batch variants — and is promoted to the full
                    # bucket once the block proves hot.  (Loop blocks
                    # whose body fits the provisional cap never need
                    # promotion: the internal fuel counter already runs
                    # them for the whole budget.)
                    cap = 1 << cap_log
                    block, failure = self._translate(
                        cpu, pc0, 16 if cap > 16 else cap)
                    if block is None:
                        # Entry fetch/decode fault: deliver it exactly as
                        # the interpreter would (one batch unit consumed,
                        # icount untouched).
                        remaining -= 1
                        self.entry_faults += 1
                        if breakpoints:
                            cpu._skip_breakpoint_at = None
                        exit_event = deliver(failure, pc0)
                        if exit_event is not None:
                            return exit_event
                        continue
                    if len(blocks) >= self._capacity:
                        blocks.clear()
                        self.invalidations += 1
                    block.short = cap > 16
                    blocks[key] = block
                    self.blocks_translated += 1
                else:
                    hits += 1
                    if block.short:
                        block.hits += 1
                        if block.hits >= 3:
                            full, _ = self._translate(cpu, pc0,
                                                      1 << cap_log)
                            if full is not None:
                                blocks[key] = full
                                block = full
                                self.promotions += 1
                length = block.length
                if length > remaining:
                    # Safety net — budget-capped translation keeps
                    # length <= bucket <= remaining, so this only fires
                    # on a misconfigured cap.  Run the tail on the
                    # reference interpreter so external events land
                    # exactly.  The skip-breakpoint token stays armed —
                    # the interpreter performs its own check-and-clear.
                    self.fallback_steps += remaining
                    return self._interp.run(cpu, remaining)
                if breakpoints:
                    cpu._skip_breakpoint_at = None
                before = cpu.icount
                try:
                    exit_event = block.fn(cpu, regs, memory,
                                          remaining // length)
                except _GuestFault as fault:
                    remaining -= cpu.icount - before
                    exit_event = deliver(fault, cpu.pc)
                    if exit_event is not None:
                        return exit_event
                    continue
                except AccessViolation as violation:
                    remaining -= cpu.icount - before
                    exit_event = deliver(
                        _GuestFault(FaultKind.ACCESS, str(violation)),
                        cpu.pc,
                    )
                    if exit_event is not None:
                        return exit_event
                    continue
                remaining -= cpu.icount - before
                if exit_event is not None:
                    return exit_event
            return None
        finally:
            self.block_hits += hits

    # ------------------------------------------------------------------
    # superblock discovery
    # ------------------------------------------------------------------

    def _translate(self, cpu, entry: int, cap: int):
        """Walk the superblock at ``entry`` in the current mode, bounded
        by ``cap`` retired instructions.

        Returns ``(block, None)`` on success or ``(None, fault)`` when
        the *first* instruction cannot be fetched or decoded (the caller
        delivers the fault; later failures simply end the block early so
        the fault fires when execution actually reaches it).

        The walk follows unconditional jumps and direct calls — and
        ``ret``s whose matching call is in-block, since their return
        address is then statically known (the generated code still runs
        the reference ``ret`` handler, and a guard ends the block if the
        guest redirected the return, e.g. a ROP pivot) — and falls
        through conditional branches; it stops at dynamic or
        mode-changing CONTROL_FLOW ops (unmatched ret/jmpi/calli/
        syscall/...), watchpoint addresses, unfetchable or undecodable
        words, the budget cap, and — crucially — any address it has
        already visited.  A revisit of the block *entry* makes the whole
        superblock an internal loop.

        ``steps`` items are ``(pc, instr, kind, aux)`` with kind
        ``"plain"`` (inline, falls through), ``"branch"`` (conditional:
        taken side is an early return, fall-through continues), ``"jmp"``
        (followed unconditional jump: one icount unit, no code),
        ``"call"`` (reference handler runs, translation continues at the
        static callee), or ``"ret"`` (reference handler runs, ``aux`` is
        the statically expected return address, guarded at runtime).
        ``term`` is the tuple describing how the block ends.
        """
        memory = cpu.memory
        user = cpu.user
        bps = self._bp_snapshot
        fetch_page = memory.fetch_page
        decode_get = _DECODE_CACHE.get
        page, lo, hi = None, 1, 0
        steps: list[tuple[int, object, str, int]] = []
        visited: set[int] = set()
        #: Return addresses of in-block direct calls (LIFO), letting the
        #: walk continue through the matching rets.
        rstack: list[int] = []
        term = None
        addr = entry
        while len(steps) < cap:
            if steps and (addr in bps or addr in visited):
                term = ("goto", addr)
                break
            if not lo <= addr < hi:
                try:
                    page, lo, hi = fetch_page(addr, user)
                except AccessViolation as violation:
                    if not steps:
                        return None, _GuestFault(FaultKind.ACCESS,
                                                 str(violation))
                    term = ("goto", addr)
                    break
            word = page[addr - lo]
            instr = decode_get(word)
            if instr is None:
                try:
                    instr = decode(word)
                except DecodeError as exc:
                    if not steps:
                        return None, _GuestFault(FaultKind.DECODE, str(exc))
                    term = ("goto", addr)
                    break
                remember_decode(word, instr)
            op = instr.op
            if op in _OP_BRANCH:
                target = instr.imm & _M
                if target == entry and entry not in bps:
                    term = ("loopcond", addr, instr)
                    break
                steps.append((addr, instr, "branch", 0))
                visited.add(addr)
                addr += 1
                continue
            if op == Opcode.JMP:
                target = instr.imm & _M
                if target == entry and entry not in bps:
                    term = ("loopjmp", addr, instr)
                    break
                if target in visited or target in bps:
                    term = ("jmp", addr, instr)
                    break
                steps.append((addr, instr, "jmp", 0))
                visited.add(addr)
                addr = target
                continue
            if op == Opcode.CALL:
                # Direct call: the reference handler does the push, RAS
                # bookkeeping, and any alarm exit; the callee entry is
                # static, so translation continues there.
                target = instr.imm & _M
                if target in visited or target in bps:
                    term = ("handler", addr, instr)
                    break
                steps.append((addr, instr, "call", 0))
                visited.add(addr)
                rstack.append(addr + 1)
                addr = target
                continue
            if op == Opcode.RET and rstack:
                # Matched ret: the in-block call pushed addr+1, so the
                # expected return target is static.  The handler still
                # performs the architectural pop / RAS check; a guard
                # after it ends the block if the stack was redirected.
                expected = rstack.pop()
                if expected in bps:
                    term = ("handler", addr, instr)
                    break
                steps.append((addr, instr, "ret", expected))
                visited.add(addr)
                addr = expected
                continue
            if op in CONTROL_FLOW:
                term = ("handler", addr, instr)
                break
            steps.append((addr, instr, "plain", 0))
            visited.add(addr)
            addr += 1
        if term is None:
            term = ("goto", addr)
        if term[0] == "goto" and term[1] == entry and entry not in bps:
            # The walk cycled back to the entry without a terminator
            # instruction (a jmp-chain loop or a mid-loop entry): the
            # whole superblock is the loop body.
            term = ("loopgoto",)
        # Shared compiled-code cache: the walk result *is* the program
        # content, so identical walks (across budget buckets, backend
        # instances, and whole record/replay phases of the same image)
        # reuse one compilation, and differing code never collides.
        code_key = (entry, user, memory.page_size, tuple(steps), term)
        cached = _CODE_CACHE.get(code_key)
        if cached is not None:
            self.shared_code_hits += 1
            return _Block(cached[0], cached[1]), None
        block = self._compile(cpu, entry, steps, term)
        if len(_CODE_CACHE) >= _CODE_CACHE_LIMIT:
            _CODE_CACHE.clear()
        _CODE_CACHE[code_key] = (block.fn, block.length)
        return block, None

    # ------------------------------------------------------------------
    # translation (codegen)
    # ------------------------------------------------------------------

    def _compile(self, cpu, entry: int, steps: list, term: tuple) -> _Block:
        """Compile a walked superblock into one closure.

        ``icount`` bookkeeping: increments for non-faulting inlined
        instructions accumulate into the next flush point (any
        instruction that can fault, call a handler, take a branch exit,
        or end the block), so the counter is architecturally exact at
        every point it can be observed, while pure ALU runs cost zero
        per-instruction updates.  Loop blocks accumulate whole
        iterations into a local (``_ic``) and comparison flags into
        locals (``_z``/``_n``), written back only on the exit paths.
        """
        psz = cpu.memory.page_size
        dispatch = cpu._DISPATCH
        ns: dict = {}
        needs: set[str] = set()
        loop = term[0] in ("loopcond", "loopjmp", "loopgoto")
        pad = "        " if loop else "    "
        lines: list[str] = []
        pending = 0
        #: Worst-case retired instructions per loop iteration / dispatch.
        length = len(steps) + (1 if term[0] != "goto" else 0)
        # Flag residency: in a loop that computes flags anywhere, the
        # locals are authoritative for the whole body (seeded from the
        # CPU before the loop) so iterations never touch the attributes;
        # straight-line blocks localize flags from the first producer on.
        has_flags = any(s[1].op in _FLAG_PRODUCERS for s in steps)
        flags_local = flags_dirty = loop and has_flags

        def flush(extra: int = 0):
            """Unconditional (top-level) icount writeback, continuing."""
            nonlocal pending
            count = pending + extra
            if loop:
                if count:
                    lines.append(f"{pad}cpu.icount += _ic + {count}")
                else:
                    lines.append(f"{pad}cpu.icount += _ic")
                lines.append(f"{pad}_ic = 0")
            elif count:
                lines.append(f"{pad}cpu.icount += {count}")
            pending = 0

        def exit_lines(extra: int, indent: str) -> list[str]:
            """Flag + icount writeback for a path that leaves the block
            (return or raise).  Emitted inside conditionals, so it never
            changes the codegen-time residency state."""
            out = []
            if flags_dirty:
                out += [f"{indent}cpu.zero = _z",
                        f"{indent}cpu.negative = _n"]
            count = pending + extra
            if loop:
                out.append(f"{indent}cpu.icount += _ic + {count}"
                           if count else f"{indent}cpu.icount += _ic")
            elif count:
                out.append(f"{indent}cpu.icount += {count}")
            return out

        for index, (pc, instr, kind, aux) in enumerate(steps):
            op = instr.op
            rd, a, b, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
            k = index
            if kind == "jmp":
                # Followed unconditional jump: retires one unit, emits
                # nothing — the next step bakes its own pc.
                pending += 1
            elif kind == "branch":
                cond = _OP_BRANCH[op][1 if flags_local else 0]
                lines.append(f"{pad}if {cond}:")
                lines += exit_lines(1, pad + "    ")
                lines += [
                    f"{pad}    cpu.pc = {imm & _M}",
                    f"{pad}    return None",
                ]
                pending += 1
            elif kind == "call":
                # Direct call.  The fast path reproduces the full
                # ``_do_call`` sequence — return-address push, RAS push,
                # fall through to the static callee — but only when every
                # precondition is established by *pure reads first*:
                # writable ordinary stack page, no observers, RAS has
                # room (no evict, so no evict exit), and the call/ret
                # trap is disarmed.  Anything else delegates to the
                # reference handler *before any mutation*, so the alarm
                # machinery always runs from pristine state.
                needs.update(("mem", "write", "callret"))
                ns[f"_h{k}"] = dispatch[op]
                ns[f"_i{k}"] = instr
                flush(1)
                lines += [
                    f"{pad}_sp = (regs[{SP}] - 1) & {_M}",
                    f"{pad}_pi = _sp // {psz}",
                    f"{pad}_p = pms_get(_pi, 0)",
                    f"{pad}_re = _ras._entries",
                    f"{pad}if _p & 2 and (not u or _p & 8) "
                    f"and not _p & 4 and not obs "
                    f"and len(_re) < _rcap and not _tcr:",
                    f"{pad}    pgs[_pi][_sp % {psz}] = {pc + 1}",
                    f"{pad}    dirty_add(_pi)",
                    f"{pad}    regs[{SP}] = _sp",
                    f"{pad}    _re.append({pc + 1})",
                    f"{pad}else:",
                ]
                if flags_dirty:
                    # The handler can raise (stack violation): the fault
                    # path must observe architectural flags.  Handlers
                    # never *write* flags, so the locals stay
                    # authoritative at the join.
                    lines += [f"{pad}    cpu.zero = _z",
                              f"{pad}    cpu.negative = _n"]
                lines += [
                    f"{pad}    cpu.pc = {pc}",
                    f"{pad}    _e = _h{k}(cpu, _i{k})",
                    f"{pad}    if _e is not None:",
                    f"{pad}        return _e",
                ]
            elif kind == "ret":
                # Matched return.  The fast path fires only when pure
                # reads prove the handler's outcome is "pop, no exit, no
                # alarm, continue at the statically expected address":
                # readable stack page, pc not ret-whitelisted, RAS
                # non-empty, the stacked word equals both the RAS
                # prediction and the walk's expected address, trap
                # disarmed.  Everything else — underflow, mismatch, a
                # redirected return (stack smash / ROP pivot), whitelist
                # checks — runs the reference handler from pristine
                # state, and the guard ends the block so the dispatcher
                # re-enters at the actual target.
                needs.update(("mem", "callret"))
                ns[f"_h{k}"] = dispatch[op]
                ns[f"_i{k}"] = instr
                flush(1)
                lines += [
                    f"{pad}_sp = regs[{SP}]",
                    f"{pad}_pi = _sp // {psz}",
                    f"{pad}_p = pms_get(_pi, 0)",
                    f"{pad}_re = _ras._entries",
                    f"{pad}if _p & 1 and (not u or _p & 8) and _re "
                    f"and not _tcr and cpu.ret_whitelist != {pc} "
                    f"and pgs[_pi][_sp % {psz}] == {aux} "
                    f"and _re[-1] == {aux}:",
                    f"{pad}    _re.pop()",
                    f"{pad}    regs[{SP}] = (_sp + 1) & {_M}",
                    f"{pad}else:",
                ]
                if flags_dirty:
                    lines += [f"{pad}    cpu.zero = _z",
                              f"{pad}    cpu.negative = _n"]
                lines += [
                    f"{pad}    cpu.pc = {pc}",
                    f"{pad}    _e = _h{k}(cpu, _i{k})",
                    f"{pad}    if _e is not None:",
                    f"{pad}        return _e",
                    f"{pad}    if cpu.pc != {aux}:",
                    f"{pad}        return None",
                ]
            elif op == Opcode.NOP:
                pending += 1
            elif op == Opcode.LI:
                lines.append(f"{pad}regs[{rd}] = {imm & _M}")
                pending += 1
            elif op == Opcode.MOV:
                lines.append(f"{pad}regs[{rd}] = regs[{a}]")
                pending += 1
            elif op in _OP_ALU:
                lines.append(
                    f"{pad}regs[{rd}] = (regs[{a}] {_OP_ALU[op]} "
                    f"regs[{b}]) & {_M}"
                )
                pending += 1
            elif op in _OP_LOGIC:
                lines.append(
                    f"{pad}regs[{rd}] = regs[{a}] {_OP_LOGIC[op]} regs[{b}]"
                )
                pending += 1
            elif op == Opcode.SHL:
                lines.append(
                    f"{pad}regs[{rd}] = (regs[{a}] << (regs[{b}] & 63)) "
                    f"& {_M}"
                )
                pending += 1
            elif op == Opcode.SHR:
                lines.append(f"{pad}regs[{rd}] = regs[{a}] >> (regs[{b}] & 63)")
                pending += 1
            elif op == Opcode.ADDI:
                lines.append(f"{pad}regs[{rd}] = (regs[{a}] + {imm}) & {_M}")
                pending += 1
            elif op == Opcode.CMP:
                lines += [
                    f"{pad}_a = regs[{a}]",
                    f"{pad}_b = regs[{b}]",
                    f"{pad}_z = _a == _b",
                    f"{pad}_n = (_a ^ {_SIGN}) < (_b ^ {_SIGN})",
                ]
                flags_local = flags_dirty = True
                pending += 1
            elif op == Opcode.CMPI:
                rhs = imm & _M
                lines += [
                    f"{pad}_a = regs[{a}]",
                    f"{pad}_z = _a == {rhs}",
                    f"{pad}_n = (_a ^ {_SIGN}) < {rhs ^ _SIGN}",
                ]
                flags_local = flags_dirty = True
                pending += 1
            elif op == Opcode.DIV:
                # Fast path cannot fault; the zero divisor takes the
                # handler (which raises the architectural fault) after
                # materializing pc/icount/flags.
                ns[f"_h{k}"] = dispatch[op]
                ns[f"_i{k}"] = instr
                lines += [
                    f"{pad}_b = regs[{b}]",
                    f"{pad}if _b:",
                    f"{pad}    regs[{rd}] = regs[{a}] // _b",
                    f"{pad}else:",
                ]
                lines += exit_lines(1, pad + "    ")
                lines += [
                    f"{pad}    cpu.pc = {pc}",
                    f"{pad}    _e = _h{k}(cpu, _i{k})",
                    f"{pad}    if _e is not None:",
                    f"{pad}        return _e",
                    f"{pad}    return None",
                ]
                pending += 1
            elif op == Opcode.LD:
                # Fast path: mapped, readable, mode-permitted pages (MMIO
                # pages are never mapped with permissions, so the guard
                # also rejects device addresses).  Everything else — MMIO
                # trap, violation — delegates to the reference handler,
                # which re-runs the full architectural sequence and ends
                # the block.
                needs.add("mem")
                ns[f"_h{k}"] = dispatch[op]
                ns[f"_i{k}"] = instr
                lines += [
                    f"{pad}_a = (regs[{a}] + {imm}) & {_M}",
                    f"{pad}_pi = _a // {psz}",
                    f"{pad}_p = pms_get(_pi, 0)",
                    f"{pad}if _p & 1 and (not u or _p & 8):",
                    f"{pad}    regs[{rd}] = pgs[_pi][_a % {psz}]",
                    f"{pad}else:",
                ]
                lines += exit_lines(1, pad + "    ")
                lines += [
                    f"{pad}    cpu.pc = {pc}",
                    f"{pad}    return _h{k}(cpu, _i{k})",
                ]
                pending += 1
            elif op == Opcode.ST:
                # Slow path (violation, MMIO, observers, or a write into
                # an executable page — self-modifying code bumps
                # memory.version) runs the reference handler and ends the
                # block so no stale translation can run.
                needs.update(("mem", "write"))
                ns[f"_h{k}"] = dispatch[op]
                ns[f"_i{k}"] = instr
                lines += [
                    f"{pad}_a = (regs[{a}] + {imm}) & {_M}",
                    f"{pad}_pi = _a // {psz}",
                    f"{pad}_p = pms_get(_pi, 0)",
                    f"{pad}if _p & 2 and (not u or _p & 8) "
                    f"and not _p & 4 and not obs:",
                    f"{pad}    pgs[_pi][_a % {psz}] = regs[{b}] & {_M}",
                    f"{pad}    dirty_add(_pi)",
                    f"{pad}else:",
                ]
                lines += exit_lines(1, pad + "    ")
                lines += [
                    f"{pad}    cpu.pc = {pc}",
                    f"{pad}    return _h{k}(cpu, _i{k})",
                ]
                pending += 1
            elif op == Opcode.PUSH:
                needs.update(("mem", "write"))
                ns[f"_h{k}"] = dispatch[op]
                ns[f"_i{k}"] = instr
                lines += [
                    f"{pad}_sp = (regs[{SP}] - 1) & {_M}",
                    f"{pad}_pi = _sp // {psz}",
                    f"{pad}_p = pms_get(_pi, 0)",
                    f"{pad}if _p & 2 and (not u or _p & 8) "
                    f"and not _p & 4 and not obs:",
                    f"{pad}    pgs[_pi][_sp % {psz}] = regs[{a}] & {_M}",
                    f"{pad}    dirty_add(_pi)",
                    f"{pad}    regs[{SP}] = _sp",
                    f"{pad}else:",
                ]
                lines += exit_lines(1, pad + "    ")
                lines += [
                    f"{pad}    cpu.pc = {pc}",
                    f"{pad}    return _h{k}(cpu, _i{k})",
                ]
                pending += 1
            elif op == Opcode.POP:
                needs.add("mem")
                ns[f"_h{k}"] = dispatch[op]
                ns[f"_i{k}"] = instr
                lines += [
                    f"{pad}_sp = regs[{SP}]",
                    f"{pad}_pi = _sp // {psz}",
                    f"{pad}_p = pms_get(_pi, 0)",
                    f"{pad}if _p & 1 and (not u or _p & 8):",
                    f"{pad}    regs[{rd}] = pgs[_pi][_sp % {psz}]",
                    f"{pad}    regs[{SP}] = (_sp + 1) & {_M}",
                    f"{pad}else:",
                ]
                lines += exit_lines(1, pad + "    ")
                lines += [
                    f"{pad}    cpu.pc = {pc}",
                    f"{pad}    return _h{k}(cpu, _i{k})",
                ]
                pending += 1
            else:
                # rdtsc/rdrand/in/out/int3/cli/sti: rare, may exit or
                # fault — run the reference handler with exact state.
                # Handlers never touch the comparison flags, so loop
                # locals stay authoritative across the call.
                ns[f"_h{k}"] = dispatch[op]
                ns[f"_i{k}"] = instr
                if flags_dirty:
                    lines += [f"{pad}cpu.zero = _z",
                              f"{pad}cpu.negative = _n"]
                    if not loop:
                        flags_dirty = False
                        flags_local = False
                flush(1)
                lines += [
                    f"{pad}cpu.pc = {pc}",
                    f"{pad}_e = _h{k}(cpu, _i{k})",
                    f"{pad}if _e is not None:",
                    f"{pad}    return _e",
                ]
        # Terminator.
        kind = term[0]
        if kind == "handler":
            _, pc, instr = term
            ns["_ht"] = dispatch[instr.op]
            ns["_it"] = instr
            lines += exit_lines(1, pad)
            if instr.op == Opcode.RET:
                # Unmatched return (the dominant block terminator in
                # call-heavy code).  Same pure-reads-first discipline as
                # the in-block matched ret, except the target is dynamic:
                # when the stacked word matches the RAS prediction and
                # nothing is trapped or whitelisted, pop and jump; every
                # other case reaches the reference handler untouched.
                needs.update(("mem", "callret"))
                lines += [
                    f"{pad}_sp = regs[{SP}]",
                    f"{pad}_pi = _sp // {psz}",
                    f"{pad}_p = pms_get(_pi, 0)",
                    f"{pad}_re = _ras._entries",
                    f"{pad}if _p & 1 and (not u or _p & 8) and _re "
                    f"and not _tcr and cpu.ret_whitelist != {pc}:",
                    f"{pad}    _t = pgs[_pi][_sp % {psz}]",
                    f"{pad}    if _re[-1] == _t:",
                    f"{pad}        _re.pop()",
                    f"{pad}        regs[{SP}] = (_sp + 1) & {_M}",
                    f"{pad}        cpu.pc = _t",
                    f"{pad}        return None",
                    f"{pad}cpu.pc = {pc}",
                    f"{pad}return _ht(cpu, _it)",
                ]
            elif instr.op == Opcode.CALL:
                # Direct call to an already-visited target: can't keep
                # translating, but the push/RAS fast path still applies.
                target = instr.imm & _M
                needs.update(("mem", "write", "callret"))
                lines += [
                    f"{pad}_sp = (regs[{SP}] - 1) & {_M}",
                    f"{pad}_pi = _sp // {psz}",
                    f"{pad}_p = pms_get(_pi, 0)",
                    f"{pad}_re = _ras._entries",
                    f"{pad}if _p & 2 and (not u or _p & 8) "
                    f"and not _p & 4 and not obs "
                    f"and len(_re) < _rcap and not _tcr:",
                    f"{pad}    pgs[_pi][_sp % {psz}] = {pc + 1}",
                    f"{pad}    dirty_add(_pi)",
                    f"{pad}    regs[{SP}] = _sp",
                    f"{pad}    _re.append({pc + 1})",
                    f"{pad}    cpu.pc = {target}",
                    f"{pad}    return None",
                    f"{pad}cpu.pc = {pc}",
                    f"{pad}return _ht(cpu, _it)",
                ]
            else:
                lines += [
                    f"{pad}cpu.pc = {pc}",
                    f"{pad}return _ht(cpu, _it)",
                ]
        elif kind == "jmp":
            _, pc, instr = term
            lines += exit_lines(1, pad)
            lines += [
                f"{pad}cpu.pc = {instr.imm & _M}",
                f"{pad}return None",
            ]
        elif kind == "goto":
            lines += exit_lines(0, pad)
            lines += [
                f"{pad}cpu.pc = {term[1]}",
                f"{pad}return None",
            ]
        elif kind == "loopcond":
            _, pc, instr = term
            cond = _OP_BRANCH_EXIT[instr.op][1 if flags_local else 0]
            lines.append(f"{pad}if {cond}:")
            lines += exit_lines(1, pad + "    ")
            lines += [
                f"{pad}    cpu.pc = {pc + 1}",
                f"{pad}    return None",
                f"{pad}_ic += {pending + 1}",
                f"{pad}reps -= 1",
                f"{pad}if not reps:",
            ]
            pending = 0
            lines += exit_lines(0, pad + "    ")
            lines += [
                f"{pad}    cpu.pc = {entry}",
                f"{pad}    return None",
            ]
        else:  # loopjmp (jmp-to-entry) / loopgoto (walk cycled to entry)
            iteration = pending + (1 if kind == "loopjmp" else 0)
            if iteration:
                lines.append(f"{pad}_ic += {iteration}")
            lines += [
                f"{pad}reps -= 1",
                f"{pad}if not reps:",
            ]
            pending = 0
            lines += exit_lines(0, pad + "    ")
            lines += [
                f"{pad}    cpu.pc = {entry}",
                f"{pad}    return None",
            ]
        preamble = []
        if "mem" in needs:
            preamble += [
                "    u = cpu.user",
                "    pgs = memory._pages",
                "    pms_get = memory._perms.get",
            ]
        if "write" in needs:
            preamble += [
                "    dirty_add = memory._dirty.add",
                "    obs = memory.write_observers",
            ]
        if "callret" in needs:
            # RAS capacity is immutable; the entry list is re-read at
            # each use site because ``ras.restore`` replaces it.  The
            # call/ret trap cannot be re-armed mid-block (only exit
            # handling does that, between dispatches).
            preamble += [
                "    _ras = cpu.ras",
                "    _rcap = _ras.capacity",
                "    _c = cpu.controls",
                "    _tcr = _c.trap_call_ret and "
                "(not u or _c.trap_call_ret_user)",
            ]
        body = lines
        if loop:
            if has_flags:
                preamble += [
                    "    _z = cpu.zero",
                    "    _n = cpu.negative",
                ]
            preamble.append("    _ic = 0")
            body = ["    while True:"] + body
        source = "\n".join(
            ["def _block(cpu, regs, memory, reps):"] + preamble + body
        )
        code = compile(source, f"<trace@{entry:#x}>", "exec")
        exec(code, ns)  # noqa: S102 - translator output, fully generated here
        return _Block(ns["_block"], max(length, 1))
