"""Input-log record types.

Two families (§7.3):

* **Synchronous** records carry the result of a nondeterministic instruction
  (rdtsc, rdrand, IN, MMIO read).  Replay consumes one at the matching VM
  exit — no instruction count needed, order is enough.
* **Asynchronous** records are pinned to an exact instruction count:
  interrupt injections and the DMA landings that precede them.  Replay must
  steer execution to that count before applying them.

RnR-Safe adds :class:`AlarmRecord` (the alarm marker of Figure 1) and
:class:`EvictRecord` (§4.5, for dismissing RAS-underflow false positives).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.exits import RopAlarmKind


@dataclass(frozen=True, slots=True)
class RdtscRecord:
    """Result of one rdtsc."""

    value: int


@dataclass(frozen=True, slots=True)
class RdrandRecord:
    """Result of one rdrand."""

    value: int


@dataclass(frozen=True, slots=True)
class PioInRecord:
    """Result of one IN instruction."""

    port: int
    value: int


@dataclass(frozen=True, slots=True)
class MmioReadRecord:
    """Result of one MMIO load."""

    addr: int
    value: int


@dataclass(frozen=True, slots=True)
class InterruptRecord:
    """An external interrupt delivered at instruction ``icount``."""

    icount: int
    vector: int


@dataclass(frozen=True, slots=True)
class DiskDmaRecord:
    """A disk read landed in guest memory at ``icount``.

    Content is *not* logged: the replayer regenerates it from its replica
    virtual disk (which is why checkpoints include modified disk blocks).
    """

    icount: int
    block: int
    addr: int


@dataclass(frozen=True, slots=True)
class NetworkDmaRecord:
    """A network packet landed in the RX ring at ``icount``.

    Unlike disk data, packet payloads are external input and must be logged
    verbatim — the dominant contributor to apache's log rate (Figure 6a).
    """

    icount: int
    addr: int
    words: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class EvictRecord:
    """A RAS entry was evicted (deep nesting) in thread ``tid`` (§4.5)."""

    icount: int
    tid: int
    value: int


@dataclass(frozen=True, slots=True)
class AlarmRecord:
    """The alarm marker: the detector suspected an attack at ``icount``."""

    icount: int
    kind: RopAlarmKind
    pc: int
    predicted: int | None
    actual: int
    tid: int


@dataclass(frozen=True, slots=True)
class SentinelRecord:
    """A divergence sentinel: rolling CPU-state digest at ``icount``.

    The recorder emits one every ``sentinel_records`` log records — a CRC
    of registers + pc + icount chained onto the previous sentinel's digest,
    so the sequence attests the whole execution prefix, not just one
    snapshot.  Replayers recompute the chain and raise
    :class:`~repro.errors.ReplayDivergenceError` on the first mismatch,
    turning silent non-determinism into a diagnosable failure bounded to
    one inter-sentinel window.
    """

    icount: int
    digest: int


@dataclass(frozen=True, slots=True)
class EndRecord:
    """End of the recorded execution, with an optional state digest."""

    icount: int
    digest: int = 0


Record = (
    RdtscRecord
    | RdrandRecord
    | PioInRecord
    | MmioReadRecord
    | InterruptRecord
    | DiskDmaRecord
    | NetworkDmaRecord
    | EvictRecord
    | AlarmRecord
    | SentinelRecord
    | EndRecord
)

_ASYNC_TYPES = (
    InterruptRecord,
    DiskDmaRecord,
    NetworkDmaRecord,
    EvictRecord,
    AlarmRecord,
    SentinelRecord,
    EndRecord,
)

#: Records that *attest* the execution rather than drive it: sentinel
#: digests and the End record's final state digest are derived from the
#: machine state, so when two logs disagree only here the divergence is in
#: the executions, not in the recorded inputs.  ``repro.diffing`` compares
#: them on a separate track (digest mismatch => state divergence window)
#: from the semantic input records.
_ATTESTATION_TYPES = (SentinelRecord, EndRecord)


def is_async_record(record: Record) -> bool:
    """Whether replay applies this record at a pinned instruction count.

    Evict and alarm records are not *injected* (they are markers the
    checkpointing replayer interprets), but they are ordered by instruction
    count like the true asynchronous events.
    """
    return isinstance(record, _ASYNC_TYPES)


def is_attestation_record(record: Record) -> bool:
    """Whether this record carries a derived digest instead of an input."""
    return isinstance(record, _ATTESTATION_TYPES)


def record_kind(record: Record) -> str:
    """Stable lowercase kind name for reports (``"rdtsc"``, ``"end"``...)."""
    name = type(record).__name__
    return name[:-len("Record")].lower() if name.endswith("Record") else name


def record_payload(record: Record) -> dict:
    """The record as a JSON-ready payload dict (kind plus its fields).

    Enum fields flatten to their values and word tuples to lists, so the
    result round-trips through ``json.dumps`` — the shape ``repro diff``
    reports a divergence in.
    """
    payload: dict = {"kind": record_kind(record)}
    for name in type(record).__slots__:
        value = getattr(record, name)
        if isinstance(value, RopAlarmKind):
            value = value.value
        elif isinstance(value, tuple):
            value = list(value)
        payload[name] = value
    return payload
