"""The recording hypervisor: runs the guest, logs nondeterminism, detects.

One class covers the paper's four recording-side setups (§8.1) through its
options:

* ``NoRecPV``  — no logging, paravirtual I/O cost model;
* ``NoRec``    — no logging, emulated (hypervisor-mediated) I/O;
* ``RecNoRAS`` — full input logging, RAS machinery off;
* ``Rec``      — full RnR-Safe recording: logging + BackRAS + whitelists +
  alarm/evict exits.

The RAS-filter switches (``backras``, ``whitelist``, ``evict_records``) are
independently toggleable for the Figure 8 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.exits import ExitControls, VmExit, VmExitReason
from repro.errors import HypervisorError
from repro.hypervisor.emulation import emulate_pio_in, emulate_pio_out
from repro.hypervisor.interpose import ContextSwitchInterposer
from repro.hypervisor.machine import GuestMachine, MachineSpec
from repro.kernel.tasks import current_task
from repro.obs.profile import GuestProfiler
from repro.obs.telemetry import Telemetry, TelemetrySnapshot
from repro.perf.account import Category
from repro.perf.report import RunMetrics
from repro.replay.checkpoint import CheckpointStore
from repro.replay.epoch import EpochPlan, finalize_epoch_plan
from repro.rnr.log import InputLog
from repro.rnr.records import (
    AlarmRecord,
    DiskDmaRecord,
    EndRecord,
    EvictRecord,
    InterruptRecord,
    MmioReadRecord,
    NetworkDmaRecord,
    PioInRecord,
    RdrandRecord,
    RdtscRecord,
    SentinelRecord,
)


@dataclass(frozen=True)
class RecorderOptions:
    """Recording-side configuration."""

    #: Log nondeterministic inputs (off for the NoRec baselines).
    log_enabled: bool = True
    #: RAS alarm exits armed (the ROP detector's trigger).
    alarms: bool = True
    #: BackRAS save/restore at context switches (multithreading filter).
    backras: bool = True
    #: Ret/Tar whitelists programmed (non-procedural-return filter).
    whitelist: bool = True
    #: Evict-record exits armed (underflow filter support).
    evict_records: bool = True
    #: Hardware JOP check armed (Table 1, JOP row).
    jop_check: bool = False
    #: Paravirtual-driver cost model (NoRecPV).
    paravirtual: bool = False
    #: Stop the recorded VM at the first alarm ("depending on the risk
    #: tolerance of the workload", §3).
    stall_on_alarm: bool = False
    #: Instruction budget.
    max_instructions: int = 1_000_000
    #: Compute and store a final state digest in the End record.
    digest: bool = True
    #: Emit a divergence sentinel (rolling CPU digest) every this many log
    #: records; ``None`` disables sentinels entirely (zero cost, and the
    #: log bytes are exactly the pre-sentinel format).  The emission point
    #: is a deterministic function of the execution — record count, not
    #: transport framing — so sequential and pipelined runs of the same
    #: spec produce byte-identical logs.
    sentinel_records: int | None = None
    #: Epoch-boundary targets for parallel replay (see
    #: ``repro.replay.epoch``): at the first safe run-loop top at or past
    #: each target icount the recorder captures a boundary checkpoint into
    #: the run's :class:`~repro.replay.epoch.EpochPlan`.  Captures charge
    #: zero simulated cycles and append nothing to the log, so a planned
    #: recording is byte-identical to an unplanned one.  Requires
    #: ``log_enabled`` and ``backras``.  Empty disables planning.
    epoch_boundaries: tuple[int, ...] = ()


@dataclass
class RecordingRun:
    """Everything a recording produces."""

    metrics: RunMetrics
    log: InputLog
    #: ``None`` when the run was rebuilt from a durable run store's
    #: sealed journal (``repro.store``): the guest never re-executed, so
    #: there is no machine to hand back — only the log and the metrics
    #: persisted at seal time.
    machine: GuestMachine | None
    alarms: list[AlarmRecord] = field(default_factory=list)
    evicts: list[EvictRecord] = field(default_factory=list)
    jop_alarms: list[AlarmRecord] = field(default_factory=list)
    #: Simulated cycle at which each alarm was logged (by alarm icount).
    alarm_cycles: dict[int, int] = field(default_factory=dict)
    #: Recorder-side telemetry (``None`` unless ``config.telemetry``).
    telemetry: TelemetrySnapshot | None = None
    #: Stop reason persisted at seal time, for machine-less restored runs.
    restored_stop_reason: str | None = None
    #: Epoch partition captured at record time (``None`` unless the
    #: options asked for ``epoch_boundaries``); feed it to
    #: ``repro.core.parallel.replay_parallel``.
    epoch_plan: "EpochPlan | None" = None

    @property
    def stop_reason(self) -> str:
        if self.machine is None:
            return self.restored_stop_reason or "restored"
        return self.machine.stop_reason


class Recorder:
    """Runs one recording (or baseline) session over a machine spec."""

    def __init__(self, spec: MachineSpec,
                 options: RecorderOptions | None = None,
                 log: InputLog | None = None,
                 telemetry: Telemetry | None = None):
        """``log`` lets a deployment inject its own sink — the streaming
        pipeline passes a :class:`~repro.rnr.log.RecordingLogTee` so frames
        flow to the replayer while the recording is still running.
        ``telemetry`` lets a driver inject a pre-built collector (e.g. one
        carrying a fleet heartbeat reporter); by default one is created iff
        ``spec.config.telemetry`` is on."""
        self.spec = spec
        self.options = options if options is not None else RecorderOptions()
        self.machine = GuestMachine(spec, self._build_controls(),
                                    with_world=True)
        self.log = log if log is not None else InputLog()
        self.interposer = ContextSwitchInterposer(
            kernel=spec.kernel,
            vmcs=self.machine.vmcs,
            memory=self.machine.memory,
            manage_backras=self.options.backras,
        )
        self._program_vmcs()
        self.alarms: list[AlarmRecord] = []
        self.evicts: list[EvictRecord] = []
        self.jop_alarms: list[AlarmRecord] = []
        #: Simulated cycle at which each alarm was logged (keyed by the
        #: alarm's instruction count) — used for §8.4's response window.
        self.alarm_cycles: dict[int, int] = {}
        #: Optional recording-side watchdogs (e.g. the DOS detector);
        #: polled at every VM exit with the machine as argument.
        self.watchdogs: list = []
        self._costs = spec.config.costs
        #: Rolling sentinel digest chain (divergence audit).
        self._sentinel_crc = 0
        self._records_at_sentinel = 0
        #: Epoch planning (parallel replay): remaining capture targets,
        #: the boundary-checkpoint store, and the raw captures.
        targets = tuple(sorted({b for b in self.options.epoch_boundaries
                                if b > 0}))
        if targets and not (self.options.log_enabled
                            and self.options.backras):
            raise HypervisorError(
                "epoch planning replays the input log through the BackRAS "
                "interposer; epoch_boundaries requires log_enabled and "
                "backras"
            )
        self._epoch_targets: list[int] = list(targets)
        self._epoch_store = CheckpointStore() if targets else None
        self._epoch_captures: list[tuple[int, int, int]] = []
        #: Nil-sink fast path: ``None`` unless telemetry is enabled, so
        #: the run loop pays one ``is not None`` test per batch at most.
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry.for_config(spec.config, "record"))
        #: Deterministic guest profiler (``None`` unless ``config.profile``).
        #: Bit-transparent: it only caps batch sizes at sample boundaries,
        #: which batch-schedule invariance guarantees cannot change the
        #: recording, and reads guest state without mutating it.
        self.profiler = GuestProfiler.for_config(
            spec.config, "record", kernel=spec.kernel)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    def _build_controls(self) -> ExitControls:
        options = self.options
        return ExitControls(
            trap_rdtsc=options.log_enabled,
            trap_rdrand=options.log_enabled,
            ras_alarm_exits=options.alarms,
            ras_evict_exits=options.alarms and options.evict_records,
            jop_check=options.jop_check,
        )

    def _program_vmcs(self):
        kernel = self.spec.kernel
        vmcs = self.machine.vmcs
        if self.options.backras:
            vmcs.controls.breakpoints |= self.interposer.breakpoints()
        if self.options.whitelist:
            vmcs.set_ret_whitelist(kernel.ctxsw_ret_pc)
            vmcs.set_tar_whitelist(kernel.whitelist_targets)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> RecordingRun:
        machine = self.machine
        cpu = machine.cpu
        world = machine.world
        intc = machine.intc
        options = self.options
        max_instructions = options.max_instructions
        sentinel_every = (options.sentinel_records
                          if options.log_enabled else None)
        tel = self.telemetry
        if tel is not None:
            tel.beat("record", cpu.icount)
            phase_token = tel.begin("record", "phase", cpu.icount)
            exit_counter = tel.registry.tagged("record.vm_exits")
            batch_hist = tel.registry.histogram("record.batch_instructions")
            last_icount = cpu.icount
        machine.timer.start(0)
        epoch_targets = self._epoch_targets
        prof = self.profiler
        while not machine.stopped:
            # Profiler sample first: the loop top is the quiescent point
            # both record and replay pass at every stride grid icount
            # (the batch cap below guarantees execution stops there), and
            # sampling before interrupt injection means the captured PC is
            # the interrupted instruction on both sides.
            if prof is not None:
                prof.maybe_sample(cpu, self.interposer.current_tid)
            # Epoch capture next, before the sentinel check and world
            # events: records logged later at this loop top then land at
            # positions past the captured InputLogPtr, i.e. in the *next*
            # epoch, whose worker applies them from the restored seed
            # exactly as this loop is about to.  Deferred while a
            # breakpoint skip is armed — the just-handled breakpoint exit
            # must stay inside the epoch that re-executes it (see
            # ``repro.replay.epoch``).
            if (epoch_targets and cpu.icount >= epoch_targets[0]
                    and cpu._skip_breakpoint_at is None):
                self._capture_epoch_boundary()
            if (sentinel_every is not None
                    and len(self.log) - self._records_at_sentinel
                    >= sentinel_every):
                self._emit_sentinel()
            if cpu.icount >= max_instructions:
                machine.stop("budget")
                break
            if world.next_due is not None and machine.now >= world.next_due:
                world.run_due(machine.now)
            if intc.has_pending and cpu.int_enabled and not cpu.halted:
                self._inject_interrupt(intc.take())
            # Batch bound: simulated time advances exactly one cycle per
            # instruction inside a batch (overhead is only charged at exit
            # boundaries), so stopping ``next_due - now`` instructions out
            # re-checks world events at the same boundary the per-step loop
            # would have.  A pending-but-masked interrupt forces single
            # stepping: the guest may re-enable interrupts at any
            # instruction and delivery timing is part of the recording.
            if intc.has_pending:
                batch = 1
            else:
                batch = max_instructions - cpu.icount
                next_due = world.next_due
                if next_due is not None:
                    until_due = next_due - machine.now
                    if until_due < batch:
                        batch = until_due if until_due > 0 else 1
            if prof is not None:
                batch = prof.cap_batch(batch, cpu.icount)
            exit_event = cpu.run(batch)
            if tel is not None:
                icount = cpu.icount
                batch_hist.observe(icount - last_icount)
                last_icount = icount
                if exit_event is not None:
                    exit_counter.add(exit_event.reason.value)
                tel.maybe_beat("record", icount)
            if exit_event is not None:
                self._handle_exit(exit_event)
                for watchdog in self.watchdogs:
                    alarm = watchdog.check(machine)
                    if alarm is not None:
                        self._log_watchdog_alarm(alarm)
        machine.timer.stop()
        if prof is not None:
            # A stop raised mid-batch (halt, shutdown) skips the loop top;
            # sample the final grid point here so replay — whose loop top
            # still passes it before consuming the End record — agrees.
            prof.maybe_sample(cpu, self.interposer.current_tid)
        if options.log_enabled:
            digest = machine.state_digest() if options.digest else 0
            self.log.append(EndRecord(icount=cpu.icount, digest=digest))
        if tel is not None:
            self._sample_telemetry()
            tel.end(phase_token, cpu.icount, stop=machine.stop_reason)
        return self._build_result()

    # ------------------------------------------------------------------
    # divergence sentinels
    # ------------------------------------------------------------------

    def _emit_sentinel(self):
        """Append one rolling CPU-digest sentinel at the current icount.

        Called between CPU batches, where the guest is quiescent and every
        earlier nondeterministic input is already in the log — a replayer
        that has consumed the same prefix must be in the identical CPU
        state here, so the digest is directly comparable.
        """
        machine = self.machine
        self._sentinel_crc = machine.cpu_digest(self._sentinel_crc)
        size = self.log.append(SentinelRecord(
            icount=machine.cpu.icount, digest=self._sentinel_crc,
        ))
        self._records_at_sentinel = len(self.log)
        machine.charge(
            Category.CHECKPOINT,
            int(size * self._costs.log_write_cycles_per_byte),
        )

    # ------------------------------------------------------------------
    # epoch planning (parallel replay)
    # ------------------------------------------------------------------

    def _capture_epoch_boundary(self):
        """Checkpoint the machine for the epoch plan.  Charges nothing.

        The capture must not perturb the recording in any way — a single
        charged cycle would shift ``machine.now``, change world-event
        timing and rdtsc values, and therefore the log bytes.  It
        consumes the dirty sets (the only other consumer is the CR's own
        checkpointing, which never runs on the recording side) and reads
        the BackRAS through the non-mutating snapshot so the interposer's
        byte counters stay untouched.
        """
        machine = self.machine
        cpu = machine.cpu
        targets = self._epoch_targets
        while targets and targets[0] <= cpu.icount:
            targets.pop(0)
        tid = self.interposer.current_tid
        backras = self.interposer.backras.snapshot()
        if tid >= 0:
            # The live RAS belongs to the running thread; fold it in the
            # same way take_checkpoint's hardware dump would, but without
            # mutating the store's counters.
            backras[tid] = machine.vmcs.dump_ras()
        dirty_pages = machine.memory.dirty_pages()
        dirty_blocks = machine.disk.dirty_blocks()
        checkpoint = self._epoch_store.add(
            icount=cpu.icount,
            cycles=machine.now,
            cpu_state=cpu.capture_state(),
            pages=machine.memory.snapshot_pages(dirty_pages),
            disk_blocks=machine.disk.snapshot_blocks(dirty_blocks),
            backras=backras,
            current_tid=tid,
            log_position=len(self.log),
            disk_regs=machine.disk_dev.capture_regs(),
        )
        machine.memory.clear_dirty()
        machine.disk.clear_dirty()
        self._epoch_captures.append(
            (cpu.icount, len(self.log), checkpoint.checkpoint_id))

    def _epoch_plan(self) -> EpochPlan | None:
        if self._epoch_store is None or not self._epoch_captures:
            return None
        return finalize_epoch_plan(self._epoch_store, self._epoch_captures,
                                   self.log)

    # ------------------------------------------------------------------
    # interrupt injection (asynchronous events, §7.3)
    # ------------------------------------------------------------------

    def _inject_interrupt(self, vector: int):
        machine = self.machine
        cpu = machine.cpu
        costs = self._costs
        log_enabled = self.options.log_enabled
        if self.telemetry is not None:
            self.telemetry.count("record.interrupts_injected")
        # Land any DMA pinned to this delivery point first, so replay can
        # reproduce the memory change at the same instruction count.
        for block, addr in machine.disk_dev.flush_dma():
            if log_enabled:
                size = self.log.append(
                    DiskDmaRecord(icount=cpu.icount, block=block, addr=addr)
                )
                machine.charge(
                    Category.INTERRUPT,
                    int(size * costs.log_write_cycles_per_byte),
                )
        for addr, words in machine.nic.flush_dma():
            if log_enabled:
                size = self.log.append(
                    NetworkDmaRecord(icount=cpu.icount, addr=addr,
                                     words=tuple(words))
                )
                machine.charge(
                    Category.NETWORK,
                    int(size * costs.log_write_cycles_per_byte),
                )
        # Delivery itself is baseline hypervisor work (NoRec pays it too).
        machine.charge(Category.DEVICE, self._device_exit_cost())
        if log_enabled:
            size = self.log.append(
                InterruptRecord(icount=cpu.icount, vector=vector)
            )
            machine.charge(
                Category.INTERRUPT,
                int(size * costs.log_write_cycles_per_byte) + 400,
            )
        fatal = cpu.raise_interrupt(vector)
        if fatal is not None:
            machine.stop(f"triple_fault: {fatal.detail}")

    def _device_exit_cost(self) -> int:
        costs = self._costs
        base = costs.vmexit_cycles + costs.device_emulation_cycles
        if self.options.paravirtual:
            return int(base * (1.0 - costs.pv_exit_discount))
        return base

    # ------------------------------------------------------------------
    # VM exit dispatch
    # ------------------------------------------------------------------

    def _handle_exit(self, exit_event: VmExit):
        machine = self.machine
        cpu = machine.cpu
        costs = self._costs
        reason = exit_event.reason
        log_enabled = self.options.log_enabled

        if reason is VmExitReason.RDTSC:
            value = machine.world.tsc(machine.now)
            cpu.regs[exit_event.rd] = value
            size = self.log.append(RdtscRecord(value=value))
            machine.charge(
                Category.RDTSC,
                costs.vmexit_cycles
                + int(size * costs.log_write_cycles_per_byte),
            )
        elif reason is VmExitReason.RDRAND:
            value = machine.world.random_word()
            cpu.regs[exit_event.rd] = value
            size = self.log.append(RdrandRecord(value=value))
            machine.charge(
                Category.RDTSC,
                costs.vmexit_cycles
                + int(size * costs.log_write_cycles_per_byte),
            )
        elif reason is VmExitReason.PIO_IN:
            value = emulate_pio_in(machine, exit_event)
            cpu.regs[exit_event.rd] = value
            machine.charge(Category.DEVICE, self._device_exit_cost())
            if log_enabled:
                size = self.log.append(
                    PioInRecord(port=exit_event.port, value=value)
                )
                machine.charge(
                    Category.PIO_MMIO,
                    int(size * costs.log_write_cycles_per_byte) + 50,
                )
        elif reason is VmExitReason.PIO_OUT:
            shutdown = emulate_pio_out(machine, exit_event)
            machine.charge(Category.DEVICE, self._device_exit_cost())
            if shutdown:
                machine.stop("shutdown")
        elif reason is VmExitReason.MMIO_READ:
            value = machine.mmio.read(exit_event.addr)
            cpu.regs[exit_event.rd] = value
            machine.charge(Category.DEVICE, self._device_exit_cost())
            if log_enabled:
                size = self.log.append(
                    MmioReadRecord(addr=exit_event.addr, value=value)
                )
                machine.charge(
                    Category.PIO_MMIO,
                    int(size * costs.log_write_cycles_per_byte) + 50,
                )
        elif reason is VmExitReason.MMIO_WRITE:
            machine.mmio.write(exit_event.addr, exit_event.value)
            machine.charge(Category.DEVICE, self._device_exit_cost())
        elif reason is VmExitReason.BREAKPOINT:
            self.interposer.on_breakpoint(exit_event.pc)
            machine.charge(
                Category.RAS,
                costs.vmexit_cycles + costs.ras_save_cycles
                + costs.ras_restore_cycles,
            )
        elif reason is VmExitReason.ROP_ALARM:
            self._on_rop_alarm(exit_event)
        elif reason is VmExitReason.RAS_EVICT:
            self._on_evict(exit_event)
        elif reason is VmExitReason.JOP_ALARM:
            self._on_jop_alarm(exit_event)
        elif reason is VmExitReason.HLT:
            machine.stop("halt")
        elif reason is VmExitReason.TRIPLE_FAULT:
            machine.stop(f"triple_fault: {exit_event.detail}")
        elif reason is VmExitReason.DEBUG:
            machine.charge(Category.DEVICE, costs.vmexit_cycles)
        else:
            raise HypervisorError(
                f"recorder cannot handle VM exit {reason.value}"
            )

    def _current_tid(self) -> int:
        task = current_task(self.machine.memory, self.machine.layout)
        return task.tid if task is not None else -1

    def _on_rop_alarm(self, exit_event: VmExit):
        machine = self.machine
        record = AlarmRecord(
            icount=machine.cpu.icount,
            kind=exit_event.alarm_kind,
            pc=exit_event.pc,
            predicted=exit_event.predicted,
            actual=exit_event.actual,
            tid=self._current_tid(),
        )
        self.alarms.append(record)
        self.alarm_cycles[record.icount] = machine.now
        charge = self._costs.vmexit_cycles
        if self.options.log_enabled:
            size = self.log.append(record)
            charge += int(size * self._costs.log_write_cycles_per_byte)
        machine.charge(Category.ALARM, charge)
        if self.options.stall_on_alarm:
            machine.stop("alarm_stall")

    def _on_evict(self, exit_event: VmExit):
        machine = self.machine
        record = EvictRecord(
            icount=machine.cpu.icount,
            tid=self._current_tid(),
            value=exit_event.evicted,
        )
        self.evicts.append(record)
        charge = self._costs.vmexit_cycles
        if self.options.log_enabled:
            size = self.log.append(record)
            charge += int(size * self._costs.log_write_cycles_per_byte)
        machine.charge(Category.ALARM, charge)

    def _on_jop_alarm(self, exit_event: VmExit):
        from repro.cpu.exits import RopAlarmKind

        machine = self.machine
        record = AlarmRecord(
            icount=machine.cpu.icount,
            kind=RopAlarmKind.JOP,
            pc=exit_event.pc,
            predicted=None,
            actual=exit_event.target,
            tid=self._current_tid(),
        )
        self.jop_alarms.append(record)
        self.alarm_cycles[record.icount] = machine.now
        charge = self._costs.vmexit_cycles
        if self.options.log_enabled:
            size = self.log.append(record)
            charge += int(size * self._costs.log_write_cycles_per_byte)
        machine.charge(Category.ALARM, charge)
        if self.options.stall_on_alarm:
            machine.stop("alarm_stall")

    def _log_watchdog_alarm(self, record: AlarmRecord):
        machine = self.machine
        self.alarms.append(record)
        self.alarm_cycles[record.icount] = machine.now
        charge = self._costs.vmexit_cycles
        if self.options.log_enabled:
            size = self.log.append(record)
            charge += int(size * self._costs.log_write_cycles_per_byte)
        machine.charge(Category.ALARM, charge)
        if self.options.stall_on_alarm:
            machine.stop("alarm_stall")

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _sample_telemetry(self):
        """Fold end-of-run ground truth into the recorder's registry.

        Counts are sampled once from the structures the run already
        maintains (log sizes, alarm lists, the machine's cycle account) —
        never accumulated per record on the hot path — so the snapshot
        matches the run's own results exactly by construction.
        """
        tel = self.telemetry
        machine = self.machine
        registry = tel.registry
        registry.counter("record.instructions").add(machine.cpu.icount)
        registry.counter("record.log_bytes").add(self.log.total_bytes)
        registry.counter("record.log_records").add(len(self.log))
        log_tags = registry.tagged("record.log_records_by_tag")
        for tag, (count, size) in self.log.tag_stats().items():
            log_tags.add(tag, size, count)
        alarms = registry.tagged("alarms")
        if self.alarms:
            alarms.add("raised", len(self.alarms), len(self.alarms))
        if self.jop_alarms:
            alarms.add("jop", len(self.jop_alarms), len(self.jop_alarms))
        if self.evicts:
            alarms.add("evicts", len(self.evicts), len(self.evicts))
        registry.counter("record.context_switches").add(
            self.interposer.context_switches)
        backend = machine.cpu.backend
        backend_stats = backend.stats()
        if backend_stats:
            exec_stats = registry.tagged(f"record.exec.{backend.name}")
            for name, value in backend_stats.items():
                exec_stats.add(name, value)
        # One source of truth: snapshot the simulated cycle account itself.
        registry.adopt_tagged("record.overhead_cycles",
                              machine.account.counter)
        if self.profiler is not None:
            tel.attach_profile(self.profiler.snapshot(backend_stats))

    def _build_result(self) -> RecordingRun:
        machine = self.machine
        metrics = RunMetrics(
            label=self.spec.label,
            instructions=machine.cpu.icount,
            guest_cycles=machine.cpu.icount,
            account=machine.account,
            log_bytes=self.log.total_bytes,
            backras_bytes=self.interposer.backras.bytes_moved,
            alarms=len(self.alarms),
            evicts=len(self.evicts),
            context_switches=self.interposer.context_switches,
        )
        return RecordingRun(
            metrics=metrics,
            log=self.log,
            machine=machine,
            alarms=self.alarms,
            evicts=self.evicts,
            jop_alarms=self.jop_alarms,
            alarm_cycles=dict(self.alarm_cycles),
            telemetry=(self.telemetry.snapshot()
                       if self.telemetry is not None else None),
            epoch_plan=self._epoch_plan(),
        )
