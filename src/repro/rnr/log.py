"""The input log: an ordered sequence of records plus consumption cursors.

The recorder appends; replayers consume through :class:`LogCursor`, which is
the in-memory analogue of the paper's ``InputLogPtr`` — a checkpoint stores
a cursor position so an alarm replayer can resume consumption mid-log.

The streaming layer lives here too: :class:`StreamingLogWriter` chunks a
record stream into fixed-size frames (see ``repro.rnr.serialize`` for the
wire format), :class:`StreamingLogReader` reassembles frames into records
while building a seekable frame index, :class:`RecordingLogTee` lets a
recorder feed a frame queue *while* recording, and
:class:`FrameQueueCursor` lets a replayer consume that queue with
backpressure — together they turn "record everything, then replay
everything" into a pipeline whose wall-clock is the max of the phases,
not their sum.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import LogCorruptionError, LogError
from repro.rnr.records import Record, is_async_record
from repro.rnr.serialize import (
    FrameHeader,
    encode_frame,
    encode_frame_v3,
    encode_record_into,
    parse_frame,
    parse_record,
)

#: Default records per frame.  Small enough that the consumer starts within
#: a fraction of a guest second of the producer, large enough that framing
#: overhead (5–9 header bytes) stays well under 1% of payload.
DEFAULT_FRAME_RECORDS = 512


class InputLog:
    """Append-only record log with byte-accurate size accounting."""

    def __init__(self):
        self._records: list[Record] = []
        self._sizes: list[int] = []
        self.total_bytes = 0
        #: Reused encode buffer: sizing a record allocates nothing.
        self._scratch = bytearray()

    def append(self, record: Record) -> int:
        """Append one record; returns its serialized size in bytes."""
        scratch = self._scratch
        scratch.clear()
        size = encode_record_into(record, scratch)
        self._records.append(record)
        self._sizes.append(size)
        self.total_bytes += size
        return size

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    def records(self) -> tuple[Record, ...]:
        """All records (for analysis and tests)."""
        return tuple(self._records)

    def cursor(self, position: int = 0) -> "LogCursor":
        """A consumption cursor starting at ``position``."""
        return LogCursor(self, position)

    def bytes_between(self, start: int, end: int) -> int:
        """Serialized size of records in ``[start, end)`` (§8.4 metrics)."""
        return sum(self._sizes[start:end])

    def tag_stats(self) -> dict[str, tuple[int, int]]:
        """Per-record-type ``(count, bytes)`` totals.

        One O(n) walk over the already-kept parallel record/size lists —
        telemetry samples this once at end of recording instead of paying
        a counter update per append on the hot path.
        """
        stats: dict[str, list[int]] = {}
        for record, size in zip(self._records, self._sizes):
            name = type(record).__name__
            cell = stats.get(name)
            if cell is None:
                stats[name] = [1, size]
            else:
                cell[0] += 1
                cell[1] += size
        return {name: (count, size) for name, (count, size) in stats.items()}

    def to_bytes(self) -> bytes:
        """Serialize the whole log (round-trip tested)."""
        out = bytearray()
        for record in self._records:
            encode_record_into(record, out)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "InputLog":
        """Parse a serialized log."""
        log = cls()
        offset = 0
        while offset < len(data):
            record, offset = parse_record(data, offset)
            log.append(record)
        return log


class LogCursor:
    """A replayer's position in the log (the ``InputLogPtr``)."""

    def __init__(self, log: InputLog, position: int = 0):
        self._log = log
        self.position = position

    @property
    def log(self) -> InputLog:
        """The log this cursor walks (read-only use)."""
        return self._log

    def peek(self) -> Record | None:
        """The next unconsumed record, or ``None`` at end of log."""
        if self.position >= len(self._log):
            return None
        return self._log[self.position]

    def pop(self) -> Record:
        """Consume and return the next record."""
        record = self.peek()
        if record is None:
            raise LogError("log cursor ran past the end of the log")
        self.position += 1
        return record

    def expect(self, record_type: type) -> Record:
        """Consume the next record, asserting its type (divergence check)."""
        record = self.pop()
        if not isinstance(record, record_type):
            raise LogError(
                f"log divergence: expected {record_type.__name__}, found "
                f"{type(record).__name__} at position {self.position - 1}"
            )
        return record

    def clone(self) -> "LogCursor":
        """An independent cursor at the same position."""
        return LogCursor(self._log, self.position)


# ----------------------------------------------------------------------
# streaming: chunked frames
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FrameInfo:
    """One frame's place in a reassembled stream (the frame index)."""

    index: int
    #: Position of the frame's first record in the reassembled log.
    record_offset: int
    record_count: int
    first_icount: int
    last_icount: int
    #: Byte offset of the frame (header included) in the framed stream.
    byte_offset: int
    payload_length: int


class StreamingLogWriter:
    """Chunks an append-only record stream into fixed-size frames.

    Records are encoded straight into one reused ``bytearray`` per frame —
    no per-record bytes objects — and a completed frame is emitted either
    through the ``on_frame`` callback (streaming deployments: the callback
    typically blocks on a bounded queue, which is the backpressure) or
    accumulated for :meth:`take_frames`.  Frame payloads concatenate to
    exactly the batch serialization of the appended records.
    """

    def __init__(self, frame_records: int = DEFAULT_FRAME_RECORDS,
                 on_frame=None, integrity: bool = True):
        """``integrity`` selects the frame version: ``True`` (default)
        emits v3 frames carrying a sequence number and a payload CRC-32, so
        transport corruption and dropped frames are detectable; ``False``
        emits the bare v2 envelope (same payload bytes either way)."""
        if frame_records < 1:
            raise LogError(f"frame_records must be >= 1, got {frame_records}")
        self.frame_records = frame_records
        self.integrity = integrity
        self._on_frame = on_frame
        self._buffer = bytearray()
        self._count = 0
        #: icount context carried across frames: the icount of the last
        #: asynchronous record seen so far.
        self._icount = 0
        self._frame_first_icount = 0
        self._pending: list[bytes] = []
        self.frames_emitted = 0
        self.records_written = 0
        self.payload_bytes = 0
        self._finished = False

    def append(self, record: Record) -> int:
        """Buffer one record; returns its serialized size in bytes."""
        if self._finished:
            raise LogError("cannot append to a finished StreamingLogWriter")
        size = encode_record_into(record, self._buffer)
        self._count += 1
        self.records_written += 1
        self.payload_bytes += size
        if is_async_record(record):
            self._icount = record.icount
        if self._count >= self.frame_records:
            self._emit()
        return size

    def _emit(self):
        if self.integrity:
            frame = encode_frame_v3(
                self._buffer, self.frames_emitted, self._count,
                self._frame_first_icount, self._icount,
            )
        else:
            frame = encode_frame(
                self._buffer, self._count,
                self._frame_first_icount, self._icount,
            )
        self._buffer.clear()
        self._count = 0
        self._frame_first_icount = self._icount
        self.frames_emitted += 1
        if self._on_frame is not None:
            self._on_frame(frame)
        else:
            self._pending.append(frame)

    def finish(self):
        """Flush the trailing partial frame.  Idempotent."""
        if self._finished:
            return
        if self._count:
            self._emit()
        self._finished = True

    def take_frames(self) -> list[bytes]:
        """Drain completed frames accumulated without an ``on_frame``."""
        frames = self._pending
        self._pending = []
        return frames


class StreamingLogReader:
    """Reassembles frames into records, building a seekable frame index.

    ``start_index`` opens the reader mid-stream at a known frame boundary
    (an epoch slice seeked via :meth:`latest_frame_before` or the run-store
    journal index): the first frame fed is *expected* to carry sequence
    number ``start_index``, and its payload CRC is still validated by
    ``parse_frame`` — a mid-stream reader never trusts the seek index over
    the frame's own integrity envelope.  A first frame whose sequence
    number disagrees with the seek position raises
    :class:`~repro.errors.LogCorruptionError` exactly like a dropped frame
    would.
    """

    def __init__(self, start_index: int = 0, retain_records: bool = True):
        """``retain_records=False`` turns the reader into a pure pass-
        through: sequence numbers, CRCs and the frame index are still
        validated and built, but decoded records are only *returned* from
        :meth:`feed`, never accumulated — a streaming consumer (the run
        differ) can walk an arbitrarily large journal in bounded memory.
        """
        if start_index < 0:
            raise LogError(
                f"start_index must be >= 0, got {start_index}")
        self.start_index = start_index
        self.retain_records = retain_records
        self.records: list[Record] = []
        #: Records decoded so far (equals ``len(self.records)`` when
        #: retaining; keeps the frame index's offsets honest when not).
        self.records_seen = 0
        self.frames: list[FrameInfo] = []
        self._byte_offset = 0
        #: first_icounts parallel to ``frames`` (sorted; icounts are
        #: monotone in the log) for :meth:`latest_frame_before`.
        self._first_icounts: list[int] = []

    def feed(self, frame: bytes) -> list[Record]:
        """Consume exactly one frame; returns its decoded records."""
        header, records, end = parse_frame(frame, 0)
        if end != len(frame):
            raise LogError(
                f"frame at byte offset {self._byte_offset} carries "
                f"{len(frame) - end} trailing bytes"
            )
        self._index(header, len(frame))
        if self.retain_records:
            self.records.extend(records)
        self.records_seen += len(records)
        return records

    def feed_stream(self, data: bytes, offset: int = 0) -> list[Record]:
        """Consume a concatenation of frames (e.g. a framed session file)."""
        added: list[Record] = []
        while offset < len(data):
            header, records, next_offset = parse_frame(data, offset)
            self._index(header, next_offset - offset)
            if self.retain_records:
                self.records.extend(records)
            self.records_seen += len(records)
            added.extend(records)
            offset = next_offset
        return added

    def _index(self, header: FrameHeader, frame_bytes: int):
        # v3 frames carry their sequence number: a gap means the transport
        # dropped (or reordered) a frame, which silently loses records —
        # fail loudly instead, naming the hole.  A reader opened mid-stream
        # expects its first frame at ``start_index``, not 0.
        expected = self.start_index + len(self.frames)
        if (header.frame_index is not None
                and header.frame_index != expected):
            raise LogCorruptionError(
                f"frame sequence gap: received frame "
                f"{header.frame_index}, expected {expected} — a "
                f"frame was dropped or reordered in transit",
                byte_offset=self._byte_offset,
                frame_index=header.frame_index,
            )
        self.frames.append(FrameInfo(
            index=self.start_index + len(self.frames),
            record_offset=self.records_seen,
            record_count=header.record_count,
            first_icount=header.first_icount,
            last_icount=header.last_icount,
            byte_offset=self._byte_offset,
            payload_length=header.payload_length,
        ))
        self._first_icounts.append(header.first_icount)
        self._byte_offset += frame_bytes

    def latest_frame_before(self, icount: int) -> FrameInfo | None:
        """The newest frame whose records all start at or before ``icount``.

        Seeking: a consumer that wants the stream from instruction
        ``icount`` onward starts at this frame's ``record_offset`` (frames
        are indexed by the icount context at their first record).
        """
        position = bisect_right(self._first_icounts, icount)
        if position == 0:
            return None
        return self.frames[position - 1]

    def to_log(self) -> InputLog:
        """Materialize the records consumed so far as an :class:`InputLog`."""
        log = InputLog()
        for record in self.records:
            log.append(record)
        return log


class RecordingLogTee(InputLog):
    """An :class:`InputLog` that simultaneously streams itself as frames.

    Drop-in for the recorder's log: every appended record lands in the
    in-memory log (so ``RecordingRun`` keeps its exact API and bytes) *and*
    in a :class:`StreamingLogWriter` whose completed frames flow to the
    pipeline's frame queue.  The record is encoded once — the frame buffer
    is the size-accounting source, so tee-ing costs nothing over a plain
    log.
    """

    def __init__(self, writer: StreamingLogWriter):
        super().__init__()
        self.writer = writer

    def append(self, record: Record) -> int:
        size = self.writer.append(record)
        self._records.append(record)
        self._sizes.append(size)
        self.total_bytes += size
        return size

    def finish(self):
        """Flush the writer's trailing partial frame."""
        self.writer.finish()


class FrameQueueCursor(LogCursor):
    """A cursor that pulls frames from a bounded queue on demand.

    The replay engine's consumption loop calls :meth:`peek` before every
    batch; when the in-memory log runs dry this cursor blocks on
    ``frame_source()`` (typically ``queue.Queue.get``) for the next frame,
    decodes it into the log, and continues — ``None`` from the source
    means end of stream.  The producer side blocks on a full queue, which
    is the pipeline's backpressure.

    ``clock`` (set by the pipeline executor to the replayer's simulated
    clock) timestamps the completion of each frame's consumption, giving
    the coupled production/consumption timelines that
    ``repro.core.pipeline.couple_pipeline`` folds into the overlapped
    deployment makespan.
    """

    def __init__(self, log: InputLog, frame_source,
                 reader: StreamingLogReader | None = None,
                 start_index: int = 0):
        super().__init__(log, 0)
        self._source = frame_source
        self.reader = (reader if reader is not None
                       else StreamingLogReader(start_index=start_index))
        self.closed = False
        #: Simulated cycle at which each frame was fully consumed (the
        #: final frame's entry is appended by the executor at end of run).
        self.frame_consumed_cycles: list[int] = []
        self.clock = None

    def peek(self) -> Record | None:
        log = self._log
        while self.position >= len(log) and not self.closed:
            frame = self._source()
            if frame is None:
                self.closed = True
                break
            if self.reader.frames and self.clock is not None:
                # Fetching frame k means frames < k are fully consumed.
                self.frame_consumed_cycles.append(self.clock())
            for record in self.reader.feed(frame):
                log.append(record)
        return super().peek()

    def finalize_timeline(self, now: int):
        """Record the final frame's consumption time (end of replay)."""
        if self.clock is None:
            return
        while len(self.frame_consumed_cycles) < len(self.reader.frames):
            self.frame_consumed_cycles.append(now)
