"""The input log: an ordered sequence of records plus consumption cursors.

The recorder appends; replayers consume through :class:`LogCursor`, which is
the in-memory analogue of the paper's ``InputLogPtr`` — a checkpoint stores
a cursor position so an alarm replayer can resume consumption mid-log.
"""

from __future__ import annotations

from repro.errors import LogError
from repro.rnr.records import Record
from repro.rnr.serialize import record_size_bytes, serialize_record, parse_record


class InputLog:
    """Append-only record log with byte-accurate size accounting."""

    def __init__(self):
        self._records: list[Record] = []
        self._sizes: list[int] = []
        self.total_bytes = 0

    def append(self, record: Record) -> int:
        """Append one record; returns its serialized size in bytes."""
        size = record_size_bytes(record)
        self._records.append(record)
        self._sizes.append(size)
        self.total_bytes += size
        return size

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    def records(self) -> tuple[Record, ...]:
        """All records (for analysis and tests)."""
        return tuple(self._records)

    def cursor(self, position: int = 0) -> "LogCursor":
        """A consumption cursor starting at ``position``."""
        return LogCursor(self, position)

    def bytes_between(self, start: int, end: int) -> int:
        """Serialized size of records in ``[start, end)`` (§8.4 metrics)."""
        return sum(self._sizes[start:end])

    def to_bytes(self) -> bytes:
        """Serialize the whole log (round-trip tested)."""
        out = bytearray()
        for record in self._records:
            out.extend(serialize_record(record))
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "InputLog":
        """Parse a serialized log."""
        log = cls()
        offset = 0
        while offset < len(data):
            record, offset = parse_record(data, offset)
            log.append(record)
        return log


class LogCursor:
    """A replayer's position in the log (the ``InputLogPtr``)."""

    def __init__(self, log: InputLog, position: int = 0):
        self._log = log
        self.position = position

    @property
    def log(self) -> InputLog:
        """The log this cursor walks (read-only use)."""
        return self._log

    def peek(self) -> Record | None:
        """The next unconsumed record, or ``None`` at end of log."""
        if self.position >= len(self._log):
            return None
        return self._log[self.position]

    def pop(self) -> Record:
        """Consume and return the next record."""
        record = self.peek()
        if record is None:
            raise LogError("log cursor ran past the end of the log")
        self.position += 1
        return record

    def expect(self, record_type: type) -> Record:
        """Consume the next record, asserting its type (divergence check)."""
        record = self.pop()
        if not isinstance(record, record_type):
            raise LogError(
                f"log divergence: expected {record_type.__name__}, found "
                f"{type(record).__name__} at position {self.position - 1}"
            )
        return record

    def clone(self) -> "LogCursor":
        """An independent cursor at the same position."""
        return LogCursor(self._log, self.position)
