"""Binary serialization of log records and chunked frame framing.

The log-rate results (Figure 6a) depend on honest byte counts, so records
are actually serialized — varint-packed, uncompressed ("We do not compress
the data", §8.1) — and the parser round-trips them exactly.

Two layers live here:

* the **record codec** (tag byte + varint fields), unchanged on the wire
  since the seed, plus batch ``encode_records``/``decode_records`` entry
  points that pack straight into one ``bytearray`` (no per-record bytes
  churn);
* the **frame codec**: fixed-size frames of varint records for streaming
  a log from a recorder to a concurrently running replayer (rr-style
  chunked traces).  A frame is a magic byte, a varint header carrying the
  record count, the first/last instruction count covered, and the payload
  byte length, followed by the payload — which is *exactly* the batch
  serialization of its records, so the concatenation of all frame
  payloads is byte-identical to ``InputLog.to_bytes()``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.cpu.exits import RopAlarmKind
from repro.errors import LogCorruptionError, LogError
from repro.rnr.records import (
    AlarmRecord,
    DiskDmaRecord,
    EndRecord,
    EvictRecord,
    InterruptRecord,
    MmioReadRecord,
    NetworkDmaRecord,
    PioInRecord,
    RdrandRecord,
    RdtscRecord,
    Record,
    SentinelRecord,
)

_TAGS: dict[type, int] = {
    RdtscRecord: 1,
    RdrandRecord: 2,
    PioInRecord: 3,
    MmioReadRecord: 4,
    InterruptRecord: 5,
    DiskDmaRecord: 6,
    NetworkDmaRecord: 7,
    EvictRecord: 8,
    AlarmRecord: 9,
    EndRecord: 10,
    SentinelRecord: 11,
}
_TYPES = {tag: cls for cls, tag in _TAGS.items()}

_ALARM_KINDS = {kind: index for index, kind in enumerate(RopAlarmKind)}
_ALARM_KINDS_REV = {index: kind for kind, index in _ALARM_KINDS.items()}


def _pack_varint(value: int, out: bytearray):
    """LEB128-style unsigned varint."""
    if value < 0:
        raise LogError(f"cannot varint-encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _unpack_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise LogError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _fields_of(record: Record) -> list[int]:
    """Flatten a record into unsigned integers for varint packing."""
    if isinstance(record, RdtscRecord):
        return [record.value]
    if isinstance(record, RdrandRecord):
        return [record.value]
    if isinstance(record, PioInRecord):
        return [record.port, record.value]
    if isinstance(record, MmioReadRecord):
        return [record.addr, record.value]
    if isinstance(record, InterruptRecord):
        return [record.icount, record.vector]
    if isinstance(record, DiskDmaRecord):
        return [record.icount, record.block, record.addr]
    if isinstance(record, NetworkDmaRecord):
        return [record.icount, record.addr, len(record.words), *record.words]
    if isinstance(record, EvictRecord):
        return [record.icount, record.tid + 1, record.value]
    if isinstance(record, AlarmRecord):
        predicted = 0 if record.predicted is None else record.predicted + 1
        return [
            record.icount,
            _ALARM_KINDS[record.kind],
            record.pc,
            predicted,
            record.actual,
            record.tid + 1,
        ]
    if isinstance(record, SentinelRecord):
        return [record.icount, record.digest]
    if isinstance(record, EndRecord):
        return [record.icount, record.digest]
    raise LogError(f"unknown record type {type(record).__name__}")


def encode_record_into(record: Record, out: bytearray) -> int:
    """Append one record's encoding to ``out``; returns its size in bytes.

    The workhorse behind every encoding entry point: callers that own a
    long-lived buffer (the streaming writer, ``InputLog.append``) pay no
    intermediate ``bytes`` allocation per record.
    """
    start = len(out)
    out.append(_TAGS[type(record)])
    for value in _fields_of(record):
        _pack_varint(value, out)
    return len(out) - start


def serialize_record(record: Record) -> bytes:
    """Encode one record as tag byte + varint fields."""
    out = bytearray()
    encode_record_into(record, out)
    return bytes(out)


def record_size_bytes(record: Record) -> int:
    """Serialized size of one record (log-rate accounting)."""
    out = bytearray()
    return encode_record_into(record, out)


def encode_records(records) -> bytes:
    """Batch-encode a sequence of records into one contiguous buffer."""
    out = bytearray()
    for record in records:
        encode_record_into(record, out)
    return bytes(out)


def decode_records(data: bytes, offset: int = 0,
                   count: int | None = None) -> list[Record]:
    """Decode ``count`` records (or all remaining) starting at ``offset``."""
    records: list[Record] = []
    end = len(data)
    while offset < end and (count is None or len(records) < count):
        record, offset = parse_record(data, offset)
        records.append(record)
    if count is not None and len(records) != count:
        raise LogError(
            f"expected {count} records, found {len(records)} before "
            f"end of data"
        )
    return records


def parse_record(data: bytes, offset: int = 0) -> tuple[Record, int]:
    """Decode one record from ``data`` at ``offset``.

    Returns the record and the offset just past it.
    """
    if offset >= len(data):
        raise LogError("parse past end of log")
    tag = data[offset]
    offset += 1
    cls = _TYPES.get(tag)
    if cls is None:
        raise LogError(f"unknown record tag {tag}")

    def read() -> int:
        nonlocal offset
        value, offset = _unpack_varint(data, offset)
        return value

    if cls is RdtscRecord:
        return RdtscRecord(value=read()), offset
    if cls is RdrandRecord:
        return RdrandRecord(value=read()), offset
    if cls is PioInRecord:
        return PioInRecord(port=read(), value=read()), offset
    if cls is MmioReadRecord:
        return MmioReadRecord(addr=read(), value=read()), offset
    if cls is InterruptRecord:
        return InterruptRecord(icount=read(), vector=read()), offset
    if cls is DiskDmaRecord:
        return DiskDmaRecord(icount=read(), block=read(), addr=read()), offset
    if cls is NetworkDmaRecord:
        icount = read()
        addr = read()
        count = read()
        # Every word costs at least one byte, so a count beyond the
        # remaining data is corruption — reject it before looping (a
        # flipped length byte must not turn into a near-endless parse).
        if count > len(data) - offset:
            raise LogError(
                f"NetworkDma word count {count} exceeds the "
                f"{len(data) - offset} bytes remaining"
            )
        words = tuple(read() for _ in range(count))
        return NetworkDmaRecord(icount=icount, addr=addr, words=words), offset
    if cls is EvictRecord:
        return EvictRecord(icount=read(), tid=read() - 1, value=read()), offset
    if cls is AlarmRecord:
        icount = read()
        kind_index = read()
        kind = _ALARM_KINDS_REV.get(kind_index)
        if kind is None:
            raise LogError(f"unknown alarm kind index {kind_index}")
        pc = read()
        predicted_raw = read()
        predicted = None if predicted_raw == 0 else predicted_raw - 1
        return AlarmRecord(
            icount=icount,
            kind=kind,
            pc=pc,
            predicted=predicted,
            actual=read(),
            tid=read() - 1,
        ), offset
    if cls is SentinelRecord:
        return SentinelRecord(icount=read(), digest=read()), offset
    return EndRecord(icount=read(), digest=read()), offset


# ----------------------------------------------------------------------
# frame codec (chunked streaming)
# ----------------------------------------------------------------------

#: First byte of every version-2 frame.  No record tag reaches this value,
#: so a reader handed a record stream instead of a frame stream fails fast.
FRAME_MAGIC = 0xF5
#: First byte of every version-3 frame: adds a frame sequence number and a
#: CRC-32 of the payload, so dropped/reordered frames and flipped bits are
#: detected at the transport layer instead of surfacing as garbled records
#: (or, worse, a silently wrong replay).
FRAME_MAGIC_V3 = 0xF6


@dataclass(frozen=True)
class FrameHeader:
    """Metadata of one frame, as carried on the wire."""

    #: Number of records in the payload.
    record_count: int
    #: Instruction count in effect at the first record of the frame (the
    #: icount of the last asynchronous record *before* the frame, carried
    #: forward — synchronous records have no icount of their own).
    first_icount: int
    #: Instruction count in effect after the last record of the frame.
    last_icount: int
    #: Payload size in bytes.
    payload_length: int
    #: Frame format version (2 = bare envelope, 3 = sequence + CRC).
    version: int = 2
    #: Zero-based sequence number of the frame in its stream (v3 only).
    frame_index: int | None = None
    #: CRC-32 of the payload as carried on the wire (v3 only).
    payload_crc: int | None = None


def encode_frame(payload: bytes | bytearray, record_count: int,
                 first_icount: int, last_icount: int) -> bytes:
    """Wrap an already-encoded record payload in a bare (v2) frame."""
    out = bytearray([FRAME_MAGIC])
    _pack_varint(record_count, out)
    _pack_varint(first_icount, out)
    _pack_varint(last_icount, out)
    _pack_varint(len(payload), out)
    out.extend(payload)
    return bytes(out)


def encode_frame_v3(payload: bytes | bytearray, frame_index: int,
                    record_count: int, first_icount: int,
                    last_icount: int) -> bytes:
    """Wrap a record payload in an integrity-checked (v3) frame.

    Layout: magic ``0xF6``, varint frame sequence number, then the v2
    header varints, then the payload's CRC-32 as 4 little-endian bytes,
    then the payload.  The payload bytes are identical to the v2 frame's,
    so payload concatenation still reproduces ``InputLog.to_bytes()``.
    """
    out = bytearray([FRAME_MAGIC_V3])
    _pack_varint(frame_index, out)
    _pack_varint(record_count, out)
    _pack_varint(first_icount, out)
    _pack_varint(last_icount, out)
    _pack_varint(len(payload), out)
    out.extend(zlib.crc32(payload).to_bytes(4, "little"))
    out.extend(payload)
    return bytes(out)


def parse_frame_header(data: bytes, offset: int = 0
                       ) -> tuple[FrameHeader, int]:
    """Parse one frame header at ``offset``; returns (header, payload start).

    Accepts both frame versions (dispatch on the magic byte).  Every
    failure names the frame's byte offset so a corrupt stream can be
    localized without re-parsing from the front.
    """
    if offset >= len(data):
        raise LogCorruptionError("truncated frame header",
                                 byte_offset=offset)
    magic = data[offset]
    if magic not in (FRAME_MAGIC, FRAME_MAGIC_V3):
        raise LogError(
            f"bad frame magic {magic:#x} at byte offset {offset} "
            f"(expected {FRAME_MAGIC:#x} or {FRAME_MAGIC_V3:#x})"
        )
    frame_index = None
    payload_crc = None
    try:
        cursor = offset + 1
        if magic == FRAME_MAGIC_V3:
            frame_index, cursor = _unpack_varint(data, cursor)
        record_count, cursor = _unpack_varint(data, cursor)
        first_icount, cursor = _unpack_varint(data, cursor)
        last_icount, cursor = _unpack_varint(data, cursor)
        payload_length, cursor = _unpack_varint(data, cursor)
        if magic == FRAME_MAGIC_V3:
            if cursor + 4 > len(data):
                raise LogError("truncated CRC field")
            payload_crc = int.from_bytes(data[cursor:cursor + 4], "little")
            cursor += 4
    except LogCorruptionError:
        raise
    except LogError as exc:
        raise LogCorruptionError(
            f"truncated frame header: {exc}", byte_offset=offset,
        ) from None
    header = FrameHeader(
        record_count=record_count,
        first_icount=first_icount,
        last_icount=last_icount,
        payload_length=payload_length,
        version=3 if magic == FRAME_MAGIC_V3 else 2,
        frame_index=frame_index,
        payload_crc=payload_crc,
    )
    return header, cursor


def parse_frame(data: bytes, offset: int = 0
                ) -> tuple[FrameHeader, list[Record], int]:
    """Parse one complete frame at ``offset``.

    Returns the header, the decoded records, and the offset just past the
    frame.  Truncation and record-count mismatches raise :class:`LogError`
    with the frame's byte offset in the message; a v3 frame whose payload
    fails its CRC raises :class:`LogCorruptionError` *before* any record
    decode is attempted — corrupt bytes never reach the record parser.
    """
    header, payload_start = parse_frame_header(data, offset)
    payload_end = payload_start + header.payload_length
    if payload_end > len(data):
        raise LogCorruptionError(
            f"truncated frame at byte offset {offset}: payload needs "
            f"{header.payload_length} bytes, only "
            f"{len(data) - payload_start} available",
            byte_offset=offset,
            frame_index=header.frame_index,
        )
    payload = data[payload_start:payload_end]
    if header.payload_crc is not None:
        actual_crc = zlib.crc32(payload)
        if actual_crc != header.payload_crc:
            raise LogCorruptionError(
                f"frame payload CRC mismatch: wire carries "
                f"{header.payload_crc:#010x}, payload hashes to "
                f"{actual_crc:#010x}",
                byte_offset=offset,
                frame_index=header.frame_index,
            )
    try:
        records = decode_records(payload, count=header.record_count)
    except LogError as exc:
        raise LogError(
            f"corrupt frame at byte offset {offset}: {exc}"
        ) from None
    return header, records, payload_end
