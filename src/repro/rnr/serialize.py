"""Binary serialization of log records.

The log-rate results (Figure 6a) depend on honest byte counts, so records
are actually serialized — varint-packed, uncompressed ("We do not compress
the data", §8.1) — and the parser round-trips them exactly.
"""

from __future__ import annotations


from repro.cpu.exits import RopAlarmKind
from repro.errors import LogError
from repro.rnr.records import (
    AlarmRecord,
    DiskDmaRecord,
    EndRecord,
    EvictRecord,
    InterruptRecord,
    MmioReadRecord,
    NetworkDmaRecord,
    PioInRecord,
    RdrandRecord,
    RdtscRecord,
    Record,
)

_TAGS: dict[type, int] = {
    RdtscRecord: 1,
    RdrandRecord: 2,
    PioInRecord: 3,
    MmioReadRecord: 4,
    InterruptRecord: 5,
    DiskDmaRecord: 6,
    NetworkDmaRecord: 7,
    EvictRecord: 8,
    AlarmRecord: 9,
    EndRecord: 10,
}
_TYPES = {tag: cls for cls, tag in _TAGS.items()}

_ALARM_KINDS = {kind: index for index, kind in enumerate(RopAlarmKind)}
_ALARM_KINDS_REV = {index: kind for kind, index in _ALARM_KINDS.items()}


def _pack_varint(value: int, out: bytearray):
    """LEB128-style unsigned varint."""
    if value < 0:
        raise LogError(f"cannot varint-encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _unpack_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise LogError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _fields_of(record: Record) -> list[int]:
    """Flatten a record into unsigned integers for varint packing."""
    if isinstance(record, RdtscRecord):
        return [record.value]
    if isinstance(record, RdrandRecord):
        return [record.value]
    if isinstance(record, PioInRecord):
        return [record.port, record.value]
    if isinstance(record, MmioReadRecord):
        return [record.addr, record.value]
    if isinstance(record, InterruptRecord):
        return [record.icount, record.vector]
    if isinstance(record, DiskDmaRecord):
        return [record.icount, record.block, record.addr]
    if isinstance(record, NetworkDmaRecord):
        return [record.icount, record.addr, len(record.words), *record.words]
    if isinstance(record, EvictRecord):
        return [record.icount, record.tid + 1, record.value]
    if isinstance(record, AlarmRecord):
        predicted = 0 if record.predicted is None else record.predicted + 1
        return [
            record.icount,
            _ALARM_KINDS[record.kind],
            record.pc,
            predicted,
            record.actual,
            record.tid + 1,
        ]
    if isinstance(record, EndRecord):
        return [record.icount, record.digest]
    raise LogError(f"unknown record type {type(record).__name__}")


def serialize_record(record: Record) -> bytes:
    """Encode one record as tag byte + varint fields."""
    out = bytearray([_TAGS[type(record)]])
    for value in _fields_of(record):
        _pack_varint(value, out)
    return bytes(out)


def record_size_bytes(record: Record) -> int:
    """Serialized size of one record (log-rate accounting)."""
    return len(serialize_record(record))


def parse_record(data: bytes, offset: int = 0) -> tuple[Record, int]:
    """Decode one record from ``data`` at ``offset``.

    Returns the record and the offset just past it.
    """
    if offset >= len(data):
        raise LogError("parse past end of log")
    tag = data[offset]
    offset += 1
    cls = _TYPES.get(tag)
    if cls is None:
        raise LogError(f"unknown record tag {tag}")

    def read() -> int:
        nonlocal offset
        value, offset = _unpack_varint(data, offset)
        return value

    if cls is RdtscRecord:
        return RdtscRecord(value=read()), offset
    if cls is RdrandRecord:
        return RdrandRecord(value=read()), offset
    if cls is PioInRecord:
        return PioInRecord(port=read(), value=read()), offset
    if cls is MmioReadRecord:
        return MmioReadRecord(addr=read(), value=read()), offset
    if cls is InterruptRecord:
        return InterruptRecord(icount=read(), vector=read()), offset
    if cls is DiskDmaRecord:
        return DiskDmaRecord(icount=read(), block=read(), addr=read()), offset
    if cls is NetworkDmaRecord:
        icount = read()
        addr = read()
        count = read()
        words = tuple(read() for _ in range(count))
        return NetworkDmaRecord(icount=icount, addr=addr, words=words), offset
    if cls is EvictRecord:
        return EvictRecord(icount=read(), tid=read() - 1, value=read()), offset
    if cls is AlarmRecord:
        icount = read()
        kind = _ALARM_KINDS_REV[read()]
        pc = read()
        predicted_raw = read()
        predicted = None if predicted_raw == 0 else predicted_raw - 1
        return AlarmRecord(
            icount=icount,
            kind=kind,
            pc=pc,
            predicted=predicted,
            actual=read(),
            tid=read() - 1,
        ), offset
    return EndRecord(icount=read(), digest=read()), offset
