"""Record-and-replay logging: typed records, binary serialization, the log.

The input log is the only channel between the recorded VM and the
replayers (Figure 1): synchronous nondeterministic results (rdtsc, rdrand,
PIO/MMIO reads), asynchronous events pinned to instruction counts
(interrupts, DMA landings, network payloads), and RnR-Safe's additions —
alarm markers and RAS evict records.
"""

from repro.rnr.records import (
    AlarmRecord,
    DiskDmaRecord,
    EndRecord,
    EvictRecord,
    InterruptRecord,
    MmioReadRecord,
    NetworkDmaRecord,
    PioInRecord,
    RdrandRecord,
    RdtscRecord,
    Record,
    is_async_record,
)
from repro.rnr.log import InputLog, LogCursor
from repro.rnr.serialize import record_size_bytes, serialize_record, parse_record
from repro.rnr.session import SessionManifest, load_session, save_session

__all__ = [
    "Record",
    "RdtscRecord",
    "RdrandRecord",
    "PioInRecord",
    "MmioReadRecord",
    "InterruptRecord",
    "DiskDmaRecord",
    "NetworkDmaRecord",
    "AlarmRecord",
    "EvictRecord",
    "EndRecord",
    "is_async_record",
    "InputLog",
    "LogCursor",
    "serialize_record",
    "parse_record",
    "record_size_bytes",
    "SessionManifest",
    "save_session",
    "load_session",
]
