"""Session persistence: ship a recording to a replay machine.

In the paper's deployment, the input log streams from the recording
hypervisor to the replaying VMs (Figure 1).  This module is the offline
equivalent: a recorded session saves as a small JSON manifest (everything
needed to rebuild the identical initial machine from the workload name,
seed, and attack parameters) plus the serialized binary log.  A replayer
on any machine can then reconstruct the spec and consume the log.

Two body formats coexist (``docs/LOG_FORMAT.md``):

* version 1 — the log's flat batch serialization (record after record);
* version 2 — the same records chunked into frames
  (``repro.rnr.serialize``), so a loader gets a seekable frame index for
  free and a streaming consumer can start replaying a session file
  before it has finished arriving.  Frame payloads concatenate to
  exactly the flat serialization, so the two formats carry
  byte-identical record streams.

``load_session`` reads either version transparently.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from repro.errors import LogError
from repro.hypervisor.machine import MachineSpec
from repro.rnr.log import (
    DEFAULT_FRAME_RECORDS,
    InputLog,
    StreamingLogReader,
    StreamingLogWriter,
)

_MAGIC = "rnr-safe-session"
_VERSION = 1
#: Framed-body session format (frames instead of a flat record stream).
_VERSION_FRAMED = 2


@dataclass(frozen=True)
class SessionManifest:
    """Everything needed to rebuild the recorded machine."""

    benchmark: str
    seed: int
    attack: str | None = None
    max_instructions: int = 3_000_000
    #: Execution backend for every machine the session builds (``None`` =
    #: the config default).  Backends are bit-identical, so this is a
    #: performance knob, not part of recorded semantics.
    exec_backend: str | None = None

    def to_json(self, version: int = _VERSION) -> dict:
        data = {
            "magic": _MAGIC,
            "version": version,
            "benchmark": self.benchmark,
            "seed": self.seed,
            "attack": self.attack,
            "max_instructions": self.max_instructions,
        }
        # Omitted when unset so default-backend session files stay
        # byte-identical to ones written before the field existed.
        if self.exec_backend is not None:
            data["exec_backend"] = self.exec_backend
        return data

    @classmethod
    def from_json(cls, data: dict) -> "SessionManifest":
        if not isinstance(data, dict):
            raise LogError("session header is not a JSON object")
        if data.get("magic") != _MAGIC:
            raise LogError("not an RnR-Safe session file")
        version = data.get("version")
        if version not in (_VERSION, _VERSION_FRAMED):
            if isinstance(version, int) and version > _VERSION_FRAMED:
                raise LogError(
                    f"session version {version} is newer than this code "
                    f"supports (max {_VERSION_FRAMED}); upgrade to read it")
            raise LogError(f"unsupported session version {version}")
        try:
            return cls(
                benchmark=data["benchmark"],
                seed=data["seed"],
                attack=data.get("attack"),
                max_instructions=data.get("max_instructions", 3_000_000),
                exec_backend=data.get("exec_backend"),
            )
        except KeyError as exc:
            raise LogError(
                f"session header is missing required field {exc}") from None

    def build_spec(self) -> MachineSpec:
        """Rebuild the exact machine spec this session recorded."""
        from repro.attacks import (
            build_dos_attack_program,
            build_jop_attack_program,
            deliver_rop_attack,
        )
        from repro.workloads import build_workload, profile_by_name

        spec = build_workload(profile_by_name(self.benchmark),
                              seed=self.seed)
        if self.attack == "rop":
            spec, _ = deliver_rop_attack(spec)
        elif self.attack == "jop":
            spec = build_jop_attack_program(spec)
        elif self.attack == "dos":
            spec = build_dos_attack_program(spec)
        elif self.attack is not None:
            raise LogError(f"unknown attack kind {self.attack!r}")
        if self.exec_backend is not None:
            from dataclasses import replace

            spec = replace(
                spec,
                config=replace(spec.config, exec_backend=self.exec_backend),
            )
        return spec


def save_session(path: str | pathlib.Path, manifest: SessionManifest,
                 log: InputLog, framed: bool = False,
                 frame_records: int = DEFAULT_FRAME_RECORDS):
    """Write manifest + serialized log to one file.

    ``framed=True`` writes the version-2 body: the log chunked into
    frames rather than a flat record stream.
    """
    path = pathlib.Path(path)
    version = _VERSION_FRAMED if framed else _VERSION
    header = json.dumps(manifest.to_json(version)).encode()
    with path.open("wb") as handle:
        handle.write(len(header).to_bytes(4, "big"))
        handle.write(header)
        if framed:
            writer = StreamingLogWriter(frame_records,
                                        on_frame=handle.write)
            for record in log.records():
                writer.append(record)
            writer.finish()
        else:
            handle.write(log.to_bytes())


def load_session(path: str | pathlib.Path) -> tuple[SessionManifest, InputLog]:
    """Read a session file back into a manifest and a parsed log.

    Handles both body formats: flat (version 1) and framed (version 2).
    Every malformed input — a garbage header, a corrupt body, a torn
    tail — surfaces as :class:`LogError` (or a subclass); decoder
    internals (``struct.error``, ``UnicodeDecodeError``, ``KeyError``)
    never escape to the caller.
    """
    path = pathlib.Path(path)
    data = path.read_bytes()
    if len(data) < 4:
        raise LogError(f"{path} is not a session file")
    header_length = int.from_bytes(data[:4], "big")
    if len(data) < 4 + header_length:
        raise LogError(f"{path} is truncated")
    try:
        header = json.loads(data[4:4 + header_length].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise LogError(f"{path} has an unreadable session header: "
                       f"{exc}") from None
    manifest = SessionManifest.from_json(header)
    body_offset = 4 + header_length
    if header.get("version") == _VERSION_FRAMED:
        reader = StreamingLogReader()
        reader.feed_stream(data, body_offset)
        log = reader.to_log()
    else:
        log = InputLog.from_bytes(data[body_offset:])
    return manifest, log
