"""Retrospective intrusion detection over retained history (§3.2).

The paper's Execution Auditing benefit — and the IntroVirt use case it
cites (§2.1): "once zero-day attacks are discovered", replay the retained
execution and check newly-known indicators against every point in time.
The sweep replays from the earliest retained checkpoint (or the start) and
evaluates a set of *indicators* — predicates over guest state — at every
checkpoint boundary plus the end, reporting the first time each indicator
trips and therefore the window in which the compromise happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.hypervisor.machine import GuestMachine, MachineSpec
from repro.replay.base import DeterministicReplayer
from repro.replay.checkpoint import CheckpointStore
from repro.rnr.log import InputLog

#: An indicator inspects a (replayed) machine and says "compromised?".
Indicator = Callable[[GuestMachine], bool]


@dataclass(frozen=True)
class IndicatorHit:
    """First time an indicator tripped."""

    name: str
    #: Instruction count of the first probe where the indicator held.
    first_seen_icount: int
    #: Last probed instruction count where it did NOT hold (the window's
    #: left edge; -1 when it already held at the first probe).
    clean_until_icount: int


@dataclass(frozen=True)
class IntrusionSweep:
    """Result of one retrospective sweep."""

    probes: tuple[int, ...]
    hits: tuple[IndicatorHit, ...]

    @property
    def compromised(self) -> bool:
        return bool(self.hits)

    def window_for(self, name: str) -> tuple[int, int] | None:
        """(clean_until, first_seen) icount window for one indicator."""
        for hit in self.hits:
            if hit.name == name:
                return (hit.clean_until_icount, hit.first_seen_icount)
        return None


def uid_zero_indicator(machine: GuestMachine) -> bool:
    """The §6 compromise: the kernel UID cell was zeroed (root granted)."""
    return machine.memory.read_word(machine.layout.uid_addr) == 0


def ops_table_tamper_indicator(spec: MachineSpec) -> Indicator:
    """Detect mutated kernel function-pointer tables (the JOP foothold).

    Compares every ops-table slot against the set of legitimate kernel
    function entries; anything else is a planted pointer.
    """
    legitimate = {start for start, _ in spec.kernel.functions.values()}

    def indicator(machine: GuestMachine) -> bool:
        layout = machine.layout
        for slot in range(layout.ops_table_entries):
            pointer = machine.memory.read_word(layout.ops_table_addr + slot)
            if pointer not in legitimate:
                return True
        return False

    return indicator


def sweep_for_intrusions(
    spec: MachineSpec,
    log: InputLog,
    indicators: dict[str, Indicator],
    store: CheckpointStore | None = None,
    probe_every: int = 50_000,
) -> IntrusionSweep:
    """Replay the execution, probing the indicators as time passes.

    With a checkpoint store the probes land at the retained checkpoints
    (cheap — state reconstruction only); without one, the sweep replays
    from the start, probing every ``probe_every`` instructions.
    """
    probes: list[int] = []
    first_seen: dict[str, int] = {}
    clean_until: dict[str, int] = {name: -1 for name in indicators}

    def probe(machine: GuestMachine, icount: int):
        probes.append(icount)
        for name, indicator in indicators.items():
            if name in first_seen:
                continue
            if indicator(machine):
                first_seen[name] = icount
            else:
                clean_until[name] = icount

    replayer = DeterministicReplayer(spec, log.cursor(),
                                     verify_digest=False)
    if store is not None and len(store):
        for checkpoint in store.all():
            inspector = DeterministicReplayer(spec, log.cursor(),
                                              verify_digest=False)
            inspector.restore_checkpoint(checkpoint, store)
            probe(inspector.machine, checkpoint.icount)
        # Replay the tail past the last checkpoint for the final probe.
        replayer.restore_checkpoint(store.latest(), store)
    else:
        target = probe_every
        while True:
            result = replayer.run(max_instructions=target)
            probe(replayer.machine, replayer.machine.cpu.icount)
            if result.reached_end or result.stop_reason != "budget":
                break
            replayer.stop_reason = ""
            target += probe_every
    if store is not None:
        replayer.run()
        probe(replayer.machine, replayer.machine.cpu.icount)
    hits = tuple(
        IndicatorHit(
            name=name,
            first_seen_icount=icount,
            clean_until_icount=clean_until[name],
        )
        for name, icount in sorted(first_seen.items())
    )
    return IntrusionSweep(probes=tuple(probes), hits=hits)
