"""Execution auditing (§3.2): replay a window and extract a timeline.

"An execution context can be replayed to audit the code and data state" —
the auditor replays from a checkpoint (or the start) to a target
instruction count, collecting scheduler activity, thread lifecycle, device
traffic, and alarms into an ordered timeline that a human or a downstream
policy can inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hypervisor.machine import MachineSpec
from repro.replay.base import DeterministicReplayer
from repro.replay.checkpoint import Checkpoint, CheckpointStore
from repro.rnr.log import InputLog
from repro.rnr.records import AlarmRecord, EvictRecord


@dataclass(frozen=True)
class AuditEvent:
    """One timeline entry."""

    icount: int
    kind: str
    detail: str


@dataclass
class AuditTimeline:
    """Ordered audit events plus summary counters."""

    events: list[AuditEvent] = field(default_factory=list)
    context_switches: int = 0
    alarms: int = 0
    threads_created: int = 0
    threads_destroyed: int = 0

    def add(self, icount: int, kind: str, detail: str):
        self.events.append(AuditEvent(icount=icount, kind=kind, detail=detail))

    def filtered(self, kind: str) -> list[AuditEvent]:
        return [event for event in self.events if event.kind == kind]

    def render(self, limit: int | None = None) -> str:
        rows = self.events if limit is None else self.events[:limit]
        lines = [f"{event.icount:>10}  {event.kind:<16} {event.detail}"
                 for event in rows]
        lines.append(
            f"-- {self.context_switches} switches, {self.alarms} alarms, "
            f"{self.threads_created} thread creations, "
            f"{self.threads_destroyed} thread exits"
        )
        return "\n".join(lines)


class _AuditReplayer(DeterministicReplayer):
    def __init__(self, spec: MachineSpec, log: InputLog):
        super().__init__(spec, log.cursor(), verify_digest=False)
        self.timeline = AuditTimeline()
        self.interposer.thread_created_hook = self._created
        self.interposer.thread_destroyed_hook = self._destroyed
        self._until: int | None = None

    def on_context_switch(self, old_tid: int, new_tid: int):
        self.timeline.context_switches += 1
        self.timeline.add(
            self.machine.cpu.icount, "context_switch",
            f"thread {old_tid} -> thread {new_tid}",
        )

    def on_alarm(self, record: AlarmRecord):
        self.timeline.alarms += 1
        self.timeline.add(
            record.icount, "alarm",
            f"{record.kind.value} at pc {record.pc:#x} in thread {record.tid}",
        )
        if self._until is not None and record.icount >= self._until:
            self.stop_requested = True
            self.stop_reason = "audit_target"

    def on_evict(self, record: EvictRecord):
        self.timeline.add(
            record.icount, "ras_evict",
            f"thread {record.tid} evicted return {record.value:#x}",
        )

    def _created(self, tid: int):
        self.timeline.threads_created += 1
        self.timeline.add(self.machine.cpu.icount, "thread_create",
                          f"thread {tid} created")

    def _destroyed(self, tid: int):
        self.timeline.threads_destroyed += 1
        self.timeline.add(self.machine.cpu.icount, "thread_exit",
                          f"thread {tid} exited")


def audit_window(spec: MachineSpec, log: InputLog,
                 until_icount: int | None = None,
                 checkpoint: Checkpoint | None = None,
                 store: CheckpointStore | None = None) -> AuditTimeline:
    """Replay (part of) an execution and return its audit timeline.

    ``until_icount`` bounds the window; ``checkpoint`` starts it later than
    the beginning (offline forensics over retained history).
    """
    replayer = _AuditReplayer(spec, log)
    if checkpoint is not None:
        if store is None:
            raise ValueError("auditing from a checkpoint requires its store")
        replayer.restore_checkpoint(checkpoint, store)
    replayer._until = until_icount
    replayer.run(max_instructions=until_icount)
    return replayer.timeline
