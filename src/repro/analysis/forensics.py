"""Attack forensics: §6's how / who / what, reconstructed from replay.

The alarm replayer stops exactly at the alarm marker, so the VM state is
frozen at the moment of the hijacked return.  From there:

* **how** — the alarming return's PC resolves (via the kernel function map)
  to the vulnerable function, and the software RAS's expected target to the
  call site; the overwritten stack around the frame shows the overflow;
* **who** — the current task struct, introspected from guest memory, plus
  the receive path that carried the payload;
* **what** — the words still staged on the stack decode (via the gadget
  scanner's classifier) into the chain the attacker lined up, and the
  kernel's UID cell tells whether the payload ran.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.disassembler import disassemble
from repro.isa.opcodes import SP
from repro.kernel.tasks import TaskView, current_task
from repro.replay.alarm import AlarmReplayer
from repro.replay.verdict import AlarmVerdict


@dataclass(frozen=True)
class AttackReport:
    """Structured answers to §6's three questions."""

    verdict: AlarmVerdict
    # --- how ---
    vulnerable_function: str | None
    call_site_target: int | None
    hijacked_target: int
    hijacked_target_function: str | None
    # --- who ---
    task: TaskView | None
    packets_received: int
    # --- what ---
    staged_chain: tuple[str, ...]
    payload_executed: bool
    uid_after: int

    def render(self) -> str:
        """The human-readable incident report."""
        lines = ["=== RnR-Safe attack report ==="]
        lines.append(f"verdict: {self.verdict.kind.value}")
        lines.append(f"  {self.verdict.explanation}")
        lines.append("")
        lines.append("[how]")
        lines.append(
            f"  hijacked return in: {self.vulnerable_function or '<unknown>'}"
        )
        if self.call_site_target is not None:
            lines.append(
                f"  legitimate return target: {self.call_site_target:#x}"
            )
        lines.append(
            f"  redirected to: {self.hijacked_target:#x}"
            + (
                f" (inside {self.hijacked_target_function})"
                if self.hijacked_target_function else ""
            )
        )
        lines.append(
            "  consistent with an unchecked copy overflowing a stack buffer"
        )
        lines.append("")
        lines.append("[who]")
        if self.task is not None:
            lines.append(
                f"  thread {self.task.tid}, entry {self.task.entry_pc:#x}, "
                f"stack {self.task.stack_base:#x}-{self.task.stack_top:#x}"
            )
        lines.append(
            f"  network packets received before the alarm: "
            f"{self.packets_received}"
        )
        lines.append("")
        lines.append("[what]")
        lines.append("  gadget chain staged on the stack:")
        for entry in self.staged_chain:
            lines.append(f"    {entry}")
        lines.append(
            "  payload executed: "
            + ("YES - UID cell now "
               f"{self.uid_after} (root granted)" if self.payload_executed
               else "no - intercepted before the gadgets ran")
        )
        return "\n".join(lines)


def build_attack_report(replayer: AlarmReplayer,
                        verdict: AlarmVerdict,
                        recording=None,
                        chain_window: int = 8) -> AttackReport:
    """Assemble the report from an AR stopped at its alarm.

    The AR's machine shows the moment of hijack (stack still staged, state
    unpolluted).  Whether the payload ultimately *executed* is a question
    about the rest of the recorded execution, so pass the
    :class:`~repro.rnr.recorder.RecordingRun` when available and the
    report reads the final UID from there; otherwise it reports the
    alarm-point state (payload not yet run).
    """
    machine = replayer.machine
    kernel = replayer.kernel
    alarm = verdict.alarm
    layout = kernel.layout
    task = current_task(machine.memory, layout)
    # What is staged above the stack pointer right now: the not-yet-consumed
    # chain words (the alarming ret already popped G1).
    staged = []
    sp = machine.cpu.regs[SP]
    for offset in range(chain_window):
        addr = sp + offset
        if not machine.memory.is_mapped(addr):
            break
        word = machine.memory.read_word(addr)
        annotation = _annotate_word(kernel, machine, word)
        staged.append(f"[sp+{offset}] {word:#x}{annotation}")
    final_memory = (recording.machine.memory if recording is not None
                    else machine.memory)
    uid_after = final_memory.read_word(layout.uid_addr)
    return AttackReport(
        verdict=verdict,
        vulnerable_function=kernel.function_at(alarm.pc),
        call_site_target=verdict.expected_target,
        hijacked_target=alarm.actual,
        hijacked_target_function=kernel.function_at(alarm.actual),
        task=task,
        packets_received=_count_network_records(replayer),
        staged_chain=tuple(staged),
        payload_executed=uid_after == 0,
        uid_after=uid_after,
    )


def _annotate_word(kernel, machine, word: int) -> str:
    """Describe a stack word: gadget, function pointer slot, or data."""
    layout = kernel.layout
    code_start = layout.kernel_code_base
    code_end = kernel.image.end
    if code_start <= word < code_end:
        listing = disassemble(machine.memory.read_word(word))
        owner = kernel.function_at(word)
        where = f" in {owner}" if owner else ""
        return f"  -> code{where}: {listing}"
    ops = layout.ops_table_addr
    if ops <= word < ops + layout.ops_table_entries:
        slot = word - ops
        pointer = machine.memory.read_word(word)
        target = kernel.function_at(pointer)
        return f"  -> ops_table[{slot}] holding &{target or hex(pointer)}"
    return ""


def _count_network_records(replayer: AlarmReplayer) -> int:
    """Packets the victim had consumed up to the alarm point."""
    from repro.rnr.records import NetworkDmaRecord

    count = 0
    log = replayer.cursor.log
    for position in range(replayer.cursor.position):
        if isinstance(log[position], NetworkDmaRecord):
            count += 1
    return count
