"""Post-detection analysis: attack forensics and execution auditing.

§6 of the paper walks through the three questions replay analysis answers
about a confirmed attack — *how* was it possible, *who* mounted it, and
*what* did the attacker do.  :mod:`repro.analysis.forensics` produces those
answers from an alarm replayer stopped at the alarm point;
:mod:`repro.analysis.audit` implements §3.2's execution auditing over
checkpointed history.
"""

from repro.analysis.forensics import AttackReport, build_attack_report
from repro.analysis.audit import AuditEvent, AuditTimeline, audit_window
from repro.analysis.intrusion import (
    IndicatorHit,
    IntrusionSweep,
    ops_table_tamper_indicator,
    sweep_for_intrusions,
    uid_zero_indicator,
)

__all__ = [
    "AttackReport",
    "build_attack_report",
    "AuditEvent",
    "AuditTimeline",
    "audit_window",
    "IndicatorHit",
    "IntrusionSweep",
    "sweep_for_intrusions",
    "uid_zero_indicator",
    "ops_table_tamper_indicator",
]
