"""First-line detectors and their replay-side analyzers (Table 1).

* :mod:`repro.detectors.rop` — the RAS-based ROP detector with its
  hardware filters (BackRAS, whitelists, evict records) and the Figure 8
  suppression measurement;
* :mod:`repro.detectors.jop` — the function-boundary table for
  jump-oriented programming;
* :mod:`repro.detectors.dos` — the context-switch watchdog and the
  replay-side "who hogged the kernel" analyzer.
"""

from repro.detectors.rop import (
    FalseAlarmBreakdown,
    RasRopDetector,
    measure_false_alarm_suppression,
)
from repro.detectors.jop import (
    JopDetector,
    select_common_functions,
    verify_jop_target,
)
from repro.detectors.dos import DosAnalysis, DosAnalyzer, DosWatchdog

__all__ = [
    "RasRopDetector",
    "FalseAlarmBreakdown",
    "measure_false_alarm_suppression",
    "JopDetector",
    "select_common_functions",
    "verify_jop_target",
    "DosWatchdog",
    "DosAnalyzer",
    "DosAnalysis",
]
