"""JOP detector (Table 1, row 2): hardware function-boundary table.

The hardware table holds begin/end addresses of the *most common* kernel
functions; an indirect call or jump is legal if it targets a table
function's entry or stays within the current function.  Targets the table
cannot vouch for raise an alarm, and the replay side checks them against
the complete function map (see
:meth:`repro.replay.alarm.AlarmReplayer._classify_jop`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.image import KernelImage
from repro.rnr.recorder import Recorder
from repro.rnr.records import AlarmRecord

#: Functions that indirect dispatch hits constantly; they must be in the
#: hardware table or benign execution would alarm on every syscall.
_HOT_FUNCTION_PREFIXES = ("sys_", "schedule", "kdispatch", "kload",
                          "op_noop", "irq_entry", "syscall_entry")


def select_common_functions(kernel: KernelImage,
                            capacity: int) -> dict[str, tuple[int, int]]:
    """Pick the table contents: hot dispatch targets first, then the rest.

    Deliberately leaves the least common functions out when capacity runs
    short — those are exactly the targets the replayer verifies.
    """
    functions = kernel.functions
    hot = {
        name: bounds for name, bounds in functions.items()
        if name.startswith(_HOT_FUNCTION_PREFIXES)
    }
    selected = dict(list(hot.items())[:capacity])
    for name, bounds in functions.items():
        if len(selected) >= capacity:
            break
        selected.setdefault(name, bounds)
    return selected


def verify_jop_target(kernel: KernelImage, alarm: AlarmRecord,
                      from_checkpoint: int | None = None):
    """Replay-side verification of a stray indirect transfer (Table 1).

    The hardware table only vouches for the most common functions; this
    check consults the *complete* function map: a target that begins any
    function, or stays within the function containing the branch, is a
    false positive — anything else is a confirmed hijack.
    """
    from repro.replay.verdict import AlarmVerdict, BenignCause, VerdictKind

    target = alarm.actual
    for name, (start, end) in kernel.functions.items():
        if target == start:
            return AlarmVerdict(
                kind=VerdictKind.FALSE_POSITIVE,
                alarm=alarm,
                explanation=(
                    f"indirect transfer targets the entry of {name}, a "
                    "legitimate (less common) function"
                ),
                benign_cause=BenignCause.UNCOMMON_FUNCTION,
                observed_target=target,
                tid=alarm.tid,
                from_checkpoint=from_checkpoint,
            )
        if start <= alarm.pc < end and start <= target < end:
            return AlarmVerdict(
                kind=VerdictKind.FALSE_POSITIVE,
                alarm=alarm,
                explanation=f"intra-function indirect branch in {name}",
                benign_cause=BenignCause.UNCOMMON_FUNCTION,
                observed_target=target,
                tid=alarm.tid,
                from_checkpoint=from_checkpoint,
            )
    return AlarmVerdict(
        kind=VerdictKind.ROP_CONFIRMED,
        alarm=alarm,
        explanation=(
            "indirect transfer to an address that begins no function: "
            "jump-oriented control-flow hijack"
        ),
        observed_target=target,
        tid=alarm.tid,
        from_checkpoint=from_checkpoint,
    )


@dataclass
class JopDetector:
    """Arms the hardware JOP check on a recorder."""

    name: str = "jop-table"
    #: Optional explicit table; defaults to :func:`select_common_functions`.
    table: dict[str, tuple[int, int]] | None = None
    #: Functions to exclude even if common (test hook for exercising the
    #: replay-verification path on benign targets).
    exclude: frozenset[str] = field(default_factory=frozenset)

    def configure(self, recorder: Recorder) -> None:
        from dataclasses import replace

        recorder.options = replace(recorder.options, jop_check=True)
        recorder.machine.vmcs.controls.jop_check = True
        kernel = recorder.spec.kernel
        capacity = recorder.spec.config.jop_table_entries
        table = self.table
        if table is None:
            table = select_common_functions(kernel, capacity + len(self.exclude))
        ranges = [
            bounds for name, bounds in table.items()
            if name not in self.exclude
        ]
        recorder.machine.vmcs.set_jop_table(ranges[:capacity])

    def owns_alarm(self, alarm: AlarmRecord) -> bool:
        return alarm.kind.value == "jop"
