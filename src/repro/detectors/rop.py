"""The RAS-based ROP detector and the Figure 8 suppression measurement.

The detector itself is the recorder's RAS machinery; this module gives it
a Table 1-style identity and, more importantly, implements the ablation
behind Figure 8: how many kernel false alarms each hardware filter
(whitelist, BackRAS) suppresses, and how few reach the replayers.

Suppression is measured the only honest way — by differencing runs with
filters progressively enabled:

* no filters  → the §4.2 "basic design" alarm flood;
* + whitelist → non-procedural-return alarms disappear;
* + BackRAS   → cross-thread pollution alarms disappear;

what remains (underflows and imperfect nesting) is the FalseAlarm bar that
the replayers absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hypervisor.machine import MachineSpec
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.rnr.records import AlarmRecord


@dataclass(frozen=True)
class RasRopDetector:
    """Table 1, row 1: RAS misprediction as the alarm trigger."""

    name: str = "ras-rop"
    backras: bool = True
    whitelist: bool = True
    evict_records: bool = True

    def configure(self, recorder: Recorder) -> None:
        """Arm on a recorder (the recorder owns the actual machinery)."""
        recorder.options = replace(
            recorder.options,
            alarms=True,
            backras=self.backras,
            whitelist=self.whitelist,
            evict_records=self.evict_records,
        )

    def owns_alarm(self, alarm: AlarmRecord) -> bool:
        return alarm.kind.value in ("mismatch", "underflow",
                                    "whitelist_target")


@dataclass(frozen=True)
class FalseAlarmBreakdown:
    """One Figure 8 bar: kernel false alarms per million instructions."""

    benchmark: str
    instructions: int
    #: Alarms with no filters at all (the basic design of §4.2).
    unfiltered: int
    #: Alarms remaining with only the whitelist enabled.
    with_whitelist: int
    #: Alarms remaining with whitelist + BackRAS (reported to replayers).
    with_all_filters: int

    @property
    def suppressed_by_whitelist(self) -> int:
        return max(0, self.unfiltered - self.with_whitelist)

    @property
    def suppressed_by_backras(self) -> int:
        return max(0, self.with_whitelist - self.with_all_filters)

    @property
    def passed_to_replayers(self) -> int:
        return self.with_all_filters

    def per_million(self, count: int) -> float:
        if self.instructions == 0:
            return 0.0
        return count * 1e6 / self.instructions

    def rows(self) -> dict[str, float]:
        """The figure's three series, in events per million instructions."""
        return {
            "Whitelist": self.per_million(self.suppressed_by_whitelist),
            "BackRAS": self.per_million(self.suppressed_by_backras),
            "FalseAlarm": self.per_million(self.passed_to_replayers),
        }


def _kernel_alarm_count(spec: MachineSpec, options: RecorderOptions) -> tuple[int, int]:
    """Run one recording and count alarms raised by kernel-mode returns."""
    run = Recorder(spec, options).run()
    user_base = spec.kernel.layout.user_code_base
    kernel_alarms = sum(1 for alarm in run.alarms if alarm.pc < user_base)
    return kernel_alarms, run.metrics.instructions


def measure_false_alarm_suppression(
    spec: MachineSpec, max_instructions: int = 2_000_000,
) -> FalseAlarmBreakdown:
    """Produce one benchmark's Figure 8 bar by filter differencing."""
    base = RecorderOptions(
        log_enabled=True, alarms=True, evict_records=False,
        max_instructions=max_instructions, digest=False,
    )
    unfiltered, _ = _kernel_alarm_count(
        spec, replace(base, backras=False, whitelist=False),
    )
    whitelist_only, _ = _kernel_alarm_count(
        spec, replace(base, backras=False, whitelist=True),
    )
    filtered, instructions = _kernel_alarm_count(
        spec, replace(base, backras=True, whitelist=True),
    )
    return FalseAlarmBreakdown(
        benchmark=spec.label,
        instructions=instructions,
        unfiltered=unfiltered,
        with_whitelist=whitelist_only,
        with_all_filters=filtered,
    )
