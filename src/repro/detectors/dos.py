"""DOS detector (Table 1, row 3): context-switch watchdog + replay profiler.

The trigger is kernel scheduler inactivity: a counter that increments on
every context switch (the guest kernel maintains one in its globals; the
hypervisor reads it by introspection).  If the counter barely moves over a
watchdog window, an alarm is raised.  The replay side then identifies *why*
switching stopped by sampling PCs over the pre-alarm window and reporting
the function that dominated execution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.cpu.exits import RopAlarmKind
from repro.hypervisor.machine import GuestMachine, MachineSpec
from repro.replay.base import DeterministicReplayer
from repro.replay.checkpoint import Checkpoint, CheckpointStore
from repro.rnr.log import InputLog
from repro.rnr.records import AlarmRecord


@dataclass
class DosWatchdog:
    """Recorder-side watchdog driven by a recurring host-timer event.

    A VM-exit-polled check would go blind during exactly the incident it
    hunts (a kernel spin produces no exits), so the watchdog schedules
    itself on the host world's clock, like the paper's hypervisor timer.
    The check is rate-based: the context-switch counter must keep pace
    with ``min_switches`` per window, scaled by however long the interval
    since the previous inspection actually was.
    """

    name: str = "dos-watchdog"
    #: Window length in cycles between counter inspections.
    window_cycles: int = 150_000
    #: Minimum context switches expected per window at the normal rate.
    min_switches: int = 2
    #: Grace period: ignore early windows (boot has no switching).
    warmup_cycles: int = 100_000
    _last_check: int = 0
    _last_count: int = 0
    _fired: bool = False

    def configure(self, recorder) -> None:
        self._recorder = recorder
        self._arm(recorder.machine)

    def _arm(self, machine: GuestMachine):
        machine.world.schedule(
            machine.now + self.window_cycles,
            lambda: self._tick(machine),
        )

    def _tick(self, machine: GuestMachine):
        alarm = self.check(machine)
        if alarm is not None:
            self._recorder._log_watchdog_alarm(alarm)
        if not machine.stopped:
            self._arm(machine)

    def owns_alarm(self, alarm: AlarmRecord) -> bool:
        return alarm.kind is RopAlarmKind.DOS

    def check(self, machine: GuestMachine) -> AlarmRecord | None:
        """Inspect the guest's context-switch counter (introspection)."""
        now = machine.now
        count = machine.memory.read_word(machine.layout.ctxsw_count_addr)
        if now < self.warmup_cycles or self._fired:
            self._last_check = now
            self._last_count = count
            return None
        elapsed = now - self._last_check
        expected = self.min_switches * elapsed / self.window_cycles
        starved = (count - self._last_count) < max(1, expected / 2)
        self._last_check = now
        self._last_count = count
        if not starved:
            return None
        self._fired = True  # one alarm per incident; replay characterizes it
        return AlarmRecord(
            icount=machine.cpu.icount,
            kind=RopAlarmKind.DOS,
            pc=machine.cpu.pc,
            predicted=None,
            actual=count,
            tid=-1,
        )


@dataclass(frozen=True)
class DosAnalysis:
    """Replay-side verdict: what hogged the machine."""

    alarm: AlarmRecord
    #: Function name -> PC samples observed in the pre-alarm window.
    profile: dict[str, int]
    dominant_function: str
    dominant_share: float
    sampled: int

    @property
    def is_kernel_hog(self) -> bool:
        """Whether kernel code dominated the starvation window.

        A spinning syscall shows up as one kernel call chain (e.g.
        ``sys_spin`` plus its ``kwork`` helpers) absorbing most samples;
        benign low-switching windows are dominated by user compute.
        """
        if self.dominant_function == "<user>":
            return False
        kernel_samples = sum(
            count for name, count in self.profile.items()
            if name != "<user>"
        )
        total = max(1, self.sampled)
        return self.dominant_share > 0.35 and kernel_samples / total > 0.6


class DosAnalyzer:
    """Replays up to the alarm, sampling PCs to find the dominant code."""

    name = "dos-profiler"

    def __init__(self, sample_every: int = 64):
        self.sample_every = sample_every

    def analyze(self, spec: MachineSpec, log: InputLog, alarm: AlarmRecord,
                checkpoint: Checkpoint | None = None,
                store: CheckpointStore | None = None) -> DosAnalysis:
        replayer = _SamplingReplayer(spec, log)
        if checkpoint is not None and store is not None:
            replayer.restore_checkpoint(checkpoint, store)
        samples: Counter[str] = Counter()
        total = 0
        cpu = replayer.machine.cpu
        kernel = spec.kernel
        while cpu.icount < alarm.icount:
            budget = min(cpu.icount + self.sample_every, alarm.icount)
            replayer.run(max_instructions=budget)
            replayer.stop_reason = ""
            function = kernel.function_at(cpu.pc)
            if function is None:
                function = "<user>" if cpu.user else "<kernel-unknown>"
            samples[function] += 1
            total += 1
            if replayer.reached_alarm(alarm):
                break
        dominant, count = samples.most_common(1)[0] if samples else ("<none>", 0)
        return DosAnalysis(
            alarm=alarm,
            profile=dict(samples),
            dominant_function=dominant,
            dominant_share=count / total if total else 0.0,
            sampled=total,
        )


class _SamplingReplayer(DeterministicReplayer):
    """Resumable replay used by the profiler (run in small chunks)."""

    def __init__(self, spec: MachineSpec, log: InputLog):
        super().__init__(spec, log.cursor(), verify_digest=False)
        self._alarms_seen: set[int] = set()

    def on_alarm(self, record: AlarmRecord):
        self._alarms_seen.add(record.icount)

    def reached_alarm(self, alarm: AlarmRecord) -> bool:
        return alarm.icount in self._alarms_seen
