"""Per-session liveness heartbeats for the fleet driver.

A wedged worker and a slow worker look identical from the outside — both
just haven't returned yet.  The heartbeat board makes them
distinguishable: every fleet session publishes (state, last icount,
frames processed, wall timestamp) rows through a picklable reporter
handle, rate-limited by the *deterministic* instruction clock (see
``Telemetry.maybe_beat``) so the hot loop never reads wall time.  The
CLI's ``fleet --watch`` renders the board live; a session whose beat is
stale is wedged, one whose beat is fresh but whose icount crawls is slow.

The board is backed by a ``multiprocessing.Manager`` dict when worker
processes are in play, and degrades to a plain dict when the manager
can't start (sandboxes) or when the fleet runs on threads — same API,
and with threads the plain dict is fully shared anyway.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

#: Beats older than this (seconds) mark a session as possibly wedged.
STALE_AFTER_S = 5.0


@dataclass(frozen=True)
class HeartbeatRow:
    """One session's latest published liveness sample."""

    index: int
    state: str          # "start" | "record" | "cr" | "ar" | "retry" | "resumed" | "done" | "failed"
    icount: int
    frames: int
    wall: float         # time.time() at publish

    def age_s(self, now: float | None = None) -> float:
        return (now if now is not None else time.time()) - self.wall

    def is_stale(self, now: float | None = None,
                 stale_after_s: float = STALE_AFTER_S) -> bool:
        """True when the beat is old enough to suspect a wedge (terminal
        states never go stale — the session finished)."""
        if self.state in ("done", "failed"):
            return False
        return self.age_s(now) > stale_after_s


class HeartbeatReporter:
    """Picklable per-session handle that writes rows onto the board.

    Holds only the shared mapping proxy and the session index, so it
    crosses the process-pool boundary inside the worker payload.
    """

    __slots__ = ("_store", "index")

    def __init__(self, store, index: int):
        self._store = store
        self.index = index

    def publish(self, state: str, icount: int = 0, frames: int = 0):
        try:
            self._store[self.index] = (state, icount, frames, time.time())
        except (BrokenPipeError, EOFError, ConnectionError, OSError):
            # The manager died (e.g. fleet shutting down) — liveness is
            # best-effort, never let it take a worker down.
            pass

    def __getstate__(self):
        return (self._store, self.index)

    def __setstate__(self, state):
        self._store, self.index = state


class HeartbeatBoard:
    """The shared liveness table: one row per fleet session."""

    def __init__(self, shared: bool = False):
        self._manager = None
        self.shared = False
        store = None
        if shared:
            try:
                import multiprocessing

                self._manager = multiprocessing.Manager()
                store = self._manager.dict()
                self.shared = True
            except Exception:
                # Sandboxes without a working manager fall back to the
                # in-process dict; thread backends don't need more.
                self._manager = None
                store = None
        self._store = store if store is not None else {}

    def reporter(self, index: int) -> HeartbeatReporter:
        return HeartbeatReporter(self._store, index)

    def rows(self) -> list[HeartbeatRow]:
        """Current board contents, ordered by session index."""
        try:
            items = list(self._store.items())
        except (BrokenPipeError, EOFError, ConnectionError, OSError):
            return []
        rows = []
        for index, (state, icount, frames, wall) in items:
            rows.append(HeartbeatRow(index=index, state=state, icount=icount,
                                     frames=frames, wall=wall))
        rows.sort(key=lambda row: row.index)
        return rows

    def render(self, total: int | None = None,
               now: float | None = None) -> str:
        """One table of the board for ``fleet --watch``."""
        now = now if now is not None else time.time()
        rows = self.rows()
        lines = ["session  state     icount        frames   beat age"]
        lines.append("-" * 52)
        for row in rows:
            flag = "  WEDGED?" if row.is_stale(now) else ""
            lines.append(
                f"{row.index:>7}  {row.state:<8} {row.icount:>12,} "
                f"{row.frames:>8}   {row.age_s(now):>6.1f}s{flag}"
            )
        if total is not None:
            done = sum(1 for row in rows if row.state in ("done", "failed"))
            lines.append(f"{done}/{total} sessions finished")
        return "\n".join(lines)

    def shutdown(self):
        if self._manager is not None:
            try:
                self._manager.shutdown()
            except Exception:
                pass
            self._manager = None
