"""Durable telemetry journal: crash-recoverable observability on disk.

PR 4's telemetry dies with the process; this module gives every durable
run a ``telemetry.jsonl`` stream in its run-store directory, written with
the same discipline as the frame journal (``store/runstore.py``): an
append-only unbuffered handle, one CRC'd entry per line, an explicit
fsync policy, and recovery that trusts nothing but the CRCs — a torn tail
(kill -9 mid-write) is cut at the last whole entry and reported, never
parsed.

Entry kinds:

* ``"beat"`` — one heartbeat publish (actor, state, icount, frames, wall
  time): the timeline ``repro top`` renders instr/s and sparklines from.
* ``"snapshot"`` — a *cumulative* :class:`~repro.obs.telemetry.
  TelemetrySnapshot` for one actor (metrics + spans + profile), journaled
  every few beats and at phase ends.  Cumulative means reconstruction is
  last-write-wins per ``(actor, attempt)``, then a merge across actors —
  so a mid-run kill loses at most the last few beat intervals of history,
  and healed (relaunched) sessions never double-count their predecessor:
  the attempt number separates the streams.

Every entry carries a monotone per-writer sequence number; a gap after a
valid prefix means entries vanished (not just a torn tail) and is
surfaced as a recovery note, mirroring ``store/recover.py``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsSnapshot
from repro.obs.profile import ProfileSnapshot
from repro.obs.telemetry import TelemetrySnapshot
from repro.obs.trace import SpanEvent

#: File name inside a run-store directory (beside ``journal.v3``).
TELEMETRY_JOURNAL_NAME = "telemetry.jsonl"

_FSYNC_POLICIES = ("always", "interval", "never")


def _canonical(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":"),
                      default=str).encode("utf-8")


def _entry_crc(body: dict) -> int:
    return zlib.crc32(_canonical(body))


# ----------------------------------------------------------------------
# snapshot <-> JSON
# ----------------------------------------------------------------------


def span_to_json(span: SpanEvent) -> dict:
    return {
        "name": span.name,
        "category": span.category,
        "actor": span.actor,
        "icount": [span.begin_icount, span.end_icount],
        "wall_ns": [span.begin_wall_ns, span.end_wall_ns],
        "args": [[key, value] for key, value in span.args],
    }


def span_from_json(data: dict) -> SpanEvent:
    return SpanEvent(
        name=data["name"],
        category=data["category"],
        actor=data["actor"],
        begin_icount=data["icount"][0],
        end_icount=data["icount"][1],
        begin_wall_ns=data["wall_ns"][0],
        end_wall_ns=data["wall_ns"][1],
        args=tuple((key, value) for key, value in data.get("args", [])),
    )


def snapshot_to_json(snapshot: TelemetrySnapshot) -> dict:
    metrics = snapshot.metrics
    return {
        "actor": snapshot.actor,
        "metrics": {
            "counters": metrics.counters,
            "tagged": metrics.tagged,
            "gauges": metrics.gauges,
            "histograms": metrics.histograms,
        },
        "spans": [span_to_json(span) for span in snapshot.spans],
        "profile": (snapshot.profile.to_json()
                    if snapshot.profile is not None else None),
    }


def snapshot_from_json(data: dict) -> TelemetrySnapshot:
    metrics = data.get("metrics", {})
    profile = data.get("profile")
    return TelemetrySnapshot(
        actor=data.get("actor", "run"),
        metrics=MetricsSnapshot(
            counters=dict(metrics.get("counters", {})),
            tagged={name: dict(cells)
                    for name, cells in metrics.get("tagged", {}).items()},
            gauges=dict(metrics.get("gauges", {})),
            histograms=dict(metrics.get("histograms", {})),
        ),
        spans=tuple(span_from_json(span) for span in data.get("spans", [])),
        profile=ProfileSnapshot.from_json(profile)
        if profile is not None else None,
    )


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------


class TelemetryJournalWriter:
    """Append-only CRC'd telemetry journal for one run-store directory.

    Thread-safe: the recorder and CR threads of a pipelined run share one
    writer, so appends serialize on a lock (this is the warm path — a few
    entries per beat interval, never per instruction).

    ``resume=True`` re-opens an existing journal after a crash: the valid
    prefix is kept, any torn tail is truncated away, and the sequence
    number continues from the last durable entry — exactly the frame
    journal's contract.
    """

    def __init__(self, path: str, *, fsync: str = "interval",
                 fsync_interval: int = 8, attempt: int = 0,
                 resume: bool = False):
        if fsync not in _FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; choose one of "
                f"{_FSYNC_POLICIES}"
            )
        self.path = path
        self.fsync = fsync
        self.fsync_interval = max(1, fsync_interval)
        self.attempt = attempt
        self._lock = threading.Lock()
        self._seq = 0
        self._since_sync = 0
        self._closed = False
        if resume and os.path.exists(path):
            scan = scan_telemetry_journal(path)
            with open(path, "r+b") as handle:
                handle.truncate(scan.valid_bytes)
            self._seq = scan.next_seq
        self._handle = open(path, "ab", buffering=0)

    def _append(self, kind: str, body: dict):
        body = dict(body)
        body["kind"] = kind
        body["attempt"] = self.attempt
        with self._lock:
            if self._closed:
                return
            body["seq"] = self._seq
            self._seq += 1
            line = json.dumps(
                {"crc": _entry_crc(body), "body": body},
                sort_keys=True, separators=(",", ":"), default=str,
            ).encode("utf-8") + b"\n"
            self._handle.write(line)
            self._since_sync += 1
            if self.fsync == "always" or (
                    self.fsync == "interval"
                    and self._since_sync >= self.fsync_interval):
                os.fsync(self._handle.fileno())
                self._since_sync = 0

    def append_beat(self, actor: str, state: str, icount: int,
                    frames: int = 0):
        self._append("beat", {
            "actor": actor,
            "state": state,
            "icount": icount,
            "frames": frames,
            "wall": time.time(),
        })

    def append_snapshot(self, snapshot: TelemetrySnapshot):
        self._append("snapshot", snapshot_to_json(snapshot))

    def close(self):
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self.fsync != "never":
                try:
                    os.fsync(self._handle.fileno())
                except OSError:
                    pass
            self._handle.close()


# ----------------------------------------------------------------------
# recovery / reconstruction
# ----------------------------------------------------------------------


@dataclass
class TelemetryJournalScan:
    """Validated contents of one telemetry journal."""

    path: str
    #: Entry bodies that passed CRC + framing, in journal order.
    entries: tuple = ()
    #: Recovery notes (torn tail cut, CRC mismatch, sequence gap).
    notes: tuple = ()
    #: Byte length of the valid prefix (resume truncates to this).
    valid_bytes: int = 0

    @property
    def next_seq(self) -> int:
        """First unused sequence number for a resumed writer."""
        seqs = [entry.get("seq", -1) for entry in self.entries]
        return max(seqs) + 1 if seqs else 0

    def beats(self) -> tuple:
        return tuple(entry for entry in self.entries
                     if entry.get("kind") == "beat")

    def reconstruct(self, actor: str = "run") -> TelemetrySnapshot | None:
        """Rebuild the run's telemetry from the journal.

        Snapshot entries are cumulative per actor, so the newest entry
        per ``(actor, attempt)`` wins and the survivors merge into one
        run-level snapshot — the same fold the live pipeline performs at
        phase boundaries, reconstructed post-hoc from disk.
        """
        latest: dict[tuple, dict] = {}
        for entry in self.entries:
            if entry.get("kind") != "snapshot":
                continue
            key = (entry.get("actor", "?"), entry.get("attempt", 0))
            latest[key] = entry
        if not latest:
            return None
        parts = [snapshot_from_json(entry)
                 for _, entry in sorted(
                     latest.items(),
                     key=lambda item: item[1].get("seq", 0))]
        return TelemetrySnapshot.merged(parts, actor=actor)


def scan_telemetry_journal(path: str) -> TelemetryJournalScan:
    """CRC-validate a telemetry journal, tolerating a torn tail.

    Mirrors ``store/recover.py``'s journal scan: entries are accepted
    only while framing, CRC, and sequence numbers all hold; the first
    violation cuts the journal there and everything after it is reported
    as a note, never parsed.
    """
    entries: list[dict] = []
    notes: list[str] = []
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return TelemetryJournalScan(path=path,
                                    notes=("telemetry journal missing",))
    valid_bytes = 0
    offset = 0
    expected_seq: dict[int, int] = {}
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            notes.append(
                f"telemetry journal: dropped {len(data) - offset} byte "
                f"torn tail after entry {len(entries) - 1}"
            )
            break
        line = data[offset:newline]
        try:
            envelope = json.loads(line)
            body = envelope["body"]
            crc = envelope["crc"]
        except (ValueError, KeyError, TypeError):
            notes.append(
                f"telemetry journal: dropped {len(data) - offset} trailing "
                f"bytes (unparseable entry after entry {len(entries) - 1})"
            )
            break
        if _entry_crc(body) != crc:
            notes.append(
                f"telemetry journal: dropped {len(data) - offset} trailing "
                f"bytes (CRC mismatch at entry {len(entries)})"
            )
            break
        attempt = body.get("attempt", 0)
        seq = body.get("seq", -1)
        want = expected_seq.get(attempt)
        if want is not None and seq != want:
            notes.append(
                f"telemetry journal: sequence jump at entry {len(entries)} "
                f"(attempt {attempt}: expected seq {want}, found {seq}) — "
                f"dropping it and everything after"
            )
            break
        expected_seq[attempt] = seq + 1
        entries.append(body)
        offset = newline + 1
        valid_bytes = offset
    return TelemetryJournalScan(
        path=path,
        entries=tuple(entries),
        notes=tuple(notes),
        valid_bytes=valid_bytes,
    )


def load_run_telemetry(store_path: str, actor: str = "run",
                       ) -> tuple[TelemetrySnapshot | None,
                                  TelemetryJournalScan]:
    """Reconstruct a run store's telemetry from its durable journal."""
    scan = scan_telemetry_journal(
        os.path.join(store_path, TELEMETRY_JOURNAL_NAME))
    return scan.reconstruct(actor=actor), scan
