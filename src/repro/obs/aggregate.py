"""Cross-run aggregation and regression detection over persisted telemetry.

The durable journal (``repro.obs.journal``) makes every run's telemetry a
disk artifact; this module turns directories of them into decisions:

* :func:`kpis` — flatten one :class:`~repro.obs.telemetry.TelemetrySnapshot`
  into scalar KPIs: phase throughput (``instr_s`` derived from each phase
  span's icount window over its wall time), every counter and gauge, and
  profile/backend figures when present.
* :func:`aggregate` — p50/p99/geomean/min/max rollups of each KPI across
  many runs (a fleet directory of ``session-NNN`` stores, or any list of
  runs) — the fleet-wide view that survives supervisor heals because it is
  computed from the journals, not from live processes.
* :func:`compare_snapshots` — baseline-vs-candidate comparison under SLO
  rules, the ``repro stats --compare A B [--slo FILE]`` CI gate: exit
  nonzero on breach.

SLO file format (JSON)::

    {
      "kpis": {
        "record.record.instr_s": {"min": 50000, "max_regression_pct": 10},
        "*.instr_s":             {"max_regression_pct": 15},
        "record.log_bytes":      {"max": 2000000, "max_growth_pct": 25}
      }
    }

Keys are KPI names or ``fnmatch`` globs; each rule may bound the
candidate's absolute value (``min``/``max``) and its delta against the
baseline (``max_regression_pct`` — shrink bound, for higher-is-better
KPIs like throughput; ``max_growth_pct`` — growth bound, for
lower-is-better KPIs like bytes or overhead cycles).  With no ``--slo``
file the default rules apply: any ``*.instr_s`` KPI regressing more than
:data:`DEFAULT_MAX_REGRESSION_PCT` percent is a breach.
"""

from __future__ import annotations

import fnmatch
import json
import math
import os
from dataclasses import dataclass

from repro.obs.journal import TELEMETRY_JOURNAL_NAME, load_run_telemetry
from repro.obs.telemetry import TelemetrySnapshot

#: Default shrink bound applied to ``*.instr_s`` when no SLO file is given.
DEFAULT_MAX_REGRESSION_PCT = 10.0


# ----------------------------------------------------------------------
# KPI extraction
# ----------------------------------------------------------------------


def kpis(snapshot: TelemetrySnapshot) -> dict[str, float]:
    """Flatten a telemetry snapshot into scalar KPIs.

    Phase spans become throughput: all spans sharing ``actor:name`` pool
    their icount windows and wall time into one ``<actor>.<name>.instr_s``
    (and ``.wall_s``) figure, so epoch-parallel runs — many ``replay``
    spans — aggregate exactly like sequential ones.
    """
    out: dict[str, float] = {}
    windows: dict[str, list[int]] = {}
    for span in snapshot.spans:
        if span.category != "phase":
            continue
        key = f"{span.actor}.{span.name}"
        cell = windows.setdefault(key, [0, 0])
        cell[0] += max(0, span.end_icount - span.begin_icount)
        cell[1] += max(0, span.end_wall_ns - span.begin_wall_ns)
    for key, (icounts, wall_ns) in windows.items():
        out[f"{key}.wall_s"] = wall_ns / 1e9
        if wall_ns > 0:
            out[f"{key}.instr_s"] = icounts / (wall_ns / 1e9)
    metrics = snapshot.metrics
    for name, (value, _events) in metrics.counters.items():
        out[name] = float(value)
    for name, (value, _max_value) in metrics.gauges.items():
        out[name] = float(value)
    if snapshot.profile is not None:
        out["profile.samples"] = float(snapshot.profile.sample_count)
        for name, value in snapshot.profile.backend.items():
            out[f"profile.backend.{name}"] = float(value)
    return out


# ----------------------------------------------------------------------
# fleet rollups
# ----------------------------------------------------------------------


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return ordered[lo]
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


def _geomean(values: list[float]) -> float:
    positives = [value for value in values if value > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(value) for value in positives)
                    / len(positives))


@dataclass
class KpiRollup:
    """Distribution of one KPI across runs."""

    name: str
    count: int
    p50: float
    p99: float
    geomean: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, name: str, values: list[float]) -> "KpiRollup":
        ordered = sorted(values)
        return cls(
            name=name,
            count=len(ordered),
            p50=_percentile(ordered, 0.50),
            p99=_percentile(ordered, 0.99),
            geomean=_geomean(ordered),
            minimum=ordered[0] if ordered else 0.0,
            maximum=ordered[-1] if ordered else 0.0,
        )


def aggregate(snapshots) -> dict[str, KpiRollup]:
    """Roll each KPI's distribution up across many runs' snapshots."""
    series: dict[str, list[float]] = {}
    for snapshot in snapshots:
        if snapshot is None:
            continue
        for name, value in kpis(snapshot).items():
            series.setdefault(name, []).append(value)
    return {name: KpiRollup.of(name, values)
            for name, values in sorted(series.items())}


def render_rollups(rollups: dict[str, KpiRollup]) -> str:
    lines = [f"{'kpi':<40} {'runs':>5} {'p50':>14} {'p99':>14} "
             f"{'geomean':>14}"]
    lines.append("-" * 90)
    for name in sorted(rollups):
        roll = rollups[name]
        lines.append(
            f"{name:<40} {roll.count:>5} {roll.p50:>14,.1f} "
            f"{roll.p99:>14,.1f} {roll.geomean:>14,.1f}"
        )
    return "\n".join(lines)


def discover_run_dirs(root: str) -> list[str]:
    """Run-store directories under ``root``.

    ``root`` itself when it holds a telemetry journal (a single run
    store); otherwise every direct child that does (a fleet
    ``store_dir`` of ``session-NNN`` stores), sorted by name.
    """
    if os.path.exists(os.path.join(root, TELEMETRY_JOURNAL_NAME)):
        return [root]
    found = []
    try:
        children = sorted(os.listdir(root))
    except (FileNotFoundError, NotADirectoryError):
        return []
    for child in children:
        path = os.path.join(root, child)
        if os.path.exists(os.path.join(path, TELEMETRY_JOURNAL_NAME)):
            found.append(path)
    return found


def load_directory_telemetry(root: str):
    """Load ``(path, snapshot, scan)`` for every run store under ``root``."""
    loaded = []
    for path in discover_run_dirs(root):
        snapshot, scan = load_run_telemetry(path)
        loaded.append((path, snapshot, scan))
    return loaded


# ----------------------------------------------------------------------
# SLO comparison
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SloRule:
    """Bounds for the KPIs matching one name/glob pattern."""

    pattern: str
    minimum: float | None = None
    maximum: float | None = None
    #: Largest tolerated shrink vs the baseline, percent (higher-is-better
    #: KPIs: throughput).
    max_regression_pct: float | None = None
    #: Largest tolerated growth vs the baseline, percent (lower-is-better
    #: KPIs: bytes, overhead cycles).
    max_growth_pct: float | None = None

    def matches(self, kpi: str) -> bool:
        return fnmatch.fnmatchcase(kpi, self.pattern)


DEFAULT_SLO_RULES = (
    SloRule(pattern="*.instr_s",
            max_regression_pct=DEFAULT_MAX_REGRESSION_PCT),
)


def parse_slo(data: dict) -> tuple[SloRule, ...]:
    """Parse the SLO JSON body (see the module docstring for the format)."""
    body = data.get("kpis", data)
    if not isinstance(body, dict):
        raise ValueError("SLO file must be a JSON object of kpi -> bounds")
    rules = []
    for pattern, bounds in body.items():
        if not isinstance(bounds, dict):
            raise ValueError(f"SLO bounds for {pattern!r} must be an object")
        unknown = set(bounds) - {"min", "max", "max_regression_pct",
                                 "max_growth_pct"}
        if unknown:
            raise ValueError(
                f"unknown SLO bound(s) {sorted(unknown)} for {pattern!r}")
        rules.append(SloRule(
            pattern=pattern,
            minimum=bounds.get("min"),
            maximum=bounds.get("max"),
            max_regression_pct=bounds.get("max_regression_pct"),
            max_growth_pct=bounds.get("max_growth_pct"),
        ))
    return tuple(rules)


def load_slo(path: str) -> tuple[SloRule, ...]:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_slo(json.load(handle))


@dataclass(frozen=True)
class KpiDelta:
    """One KPI's baseline-vs-candidate movement and any breached bounds."""

    name: str
    baseline: float | None
    candidate: float | None
    #: Percent change, candidate vs baseline (positive = grew).
    delta_pct: float | None
    breaches: tuple[str, ...] = ()


@dataclass
class ComparisonReport:
    """The ``stats --compare`` verdict: per-KPI deltas plus breaches."""

    deltas: tuple[KpiDelta, ...] = ()

    @property
    def breaches(self) -> tuple[KpiDelta, ...]:
        return tuple(delta for delta in self.deltas if delta.breaches)

    @property
    def exit_code(self) -> int:
        return 1 if self.breaches else 0

    def render(self) -> str:
        lines = [f"{'kpi':<40} {'baseline':>14} {'candidate':>14} "
                 f"{'delta':>9}  slo"]
        lines.append("-" * 88)
        for delta in self.deltas:
            base = (f"{delta.baseline:,.1f}"
                    if delta.baseline is not None else "-")
            cand = (f"{delta.candidate:,.1f}"
                    if delta.candidate is not None else "-")
            pct = (f"{delta.delta_pct:+8.1f}%"
                   if delta.delta_pct is not None else "        -")
            verdict = "; ".join(delta.breaches) if delta.breaches else "ok"
            lines.append(f"{delta.name:<40} {base:>14} {cand:>14} "
                         f"{pct:>9}  {verdict}")
        lines.append("")
        if self.breaches:
            lines.append(f"SLO: {len(self.breaches)} breach(es)")
        else:
            lines.append("SLO: ok")
        return "\n".join(lines)


def compare_kpis(baseline: dict[str, float], candidate: dict[str, float],
                 rules: tuple[SloRule, ...] | None = None,
                 ) -> ComparisonReport:
    """Judge the candidate KPIs against the baseline under SLO rules.

    Only KPIs matched by a rule (or present on both sides) appear in the
    report; a rule whose KPI is missing from the candidate is reported as
    a breach — a silently vanished KPI must not pass the gate.
    """
    rules = DEFAULT_SLO_RULES if rules is None else rules
    names = sorted(set(baseline) | set(candidate))
    deltas: list[KpiDelta] = []
    for name in names:
        base = baseline.get(name)
        cand = candidate.get(name)
        delta_pct = None
        if base is not None and cand is not None and base != 0:
            delta_pct = (cand - base) / abs(base) * 100.0
        matched = [rule for rule in rules if rule.matches(name)]
        breaches: list[str] = []
        for rule in matched:
            if cand is None:
                breaches.append("kpi missing from candidate")
                continue
            if rule.minimum is not None and cand < rule.minimum:
                breaches.append(f"value {cand:,.1f} < min {rule.minimum:,.1f}")
            if rule.maximum is not None and cand > rule.maximum:
                breaches.append(f"value {cand:,.1f} > max {rule.maximum:,.1f}")
            if (rule.max_regression_pct is not None and delta_pct is not None
                    and -delta_pct > rule.max_regression_pct):
                breaches.append(
                    f"regressed {-delta_pct:.1f}% "
                    f"(> {rule.max_regression_pct:.1f}% allowed)")
            if (rule.max_growth_pct is not None and delta_pct is not None
                    and delta_pct > rule.max_growth_pct):
                breaches.append(
                    f"grew {delta_pct:.1f}% "
                    f"(> {rule.max_growth_pct:.1f}% allowed)")
        if matched or (base is not None and cand is not None):
            deltas.append(KpiDelta(
                name=name, baseline=base, candidate=cand,
                delta_pct=delta_pct, breaches=tuple(breaches),
            ))
    return ComparisonReport(deltas=tuple(deltas))


def compare_snapshots(baseline: TelemetrySnapshot,
                      candidate: TelemetrySnapshot,
                      rules: tuple[SloRule, ...] | None = None,
                      ) -> ComparisonReport:
    return compare_kpis(kpis(baseline), kpis(candidate), rules)


def compare_stores(baseline_dir: str, candidate_dir: str,
                   rules: tuple[SloRule, ...] | None = None,
                   ) -> ComparisonReport:
    """Compare two run-store (or fleet) directories from their journals.

    Fleet directories aggregate first (each KPI's p50 across sessions),
    so a fleet can gate against a fleet, a run against a run.
    """

    def load(root: str) -> dict[str, float]:
        loaded = load_directory_telemetry(root)
        snapshots = [snap for _, snap, _ in loaded if snap is not None]
        if not snapshots:
            raise FileNotFoundError(
                f"no reconstructable telemetry journals under {root}")
        if len(snapshots) == 1:
            return kpis(snapshots[0])
        return {name: roll.p50
                for name, roll in aggregate(snapshots).items()}

    return compare_kpis(load(baseline_dir), load(candidate_dir), rules)
