"""``repro top``: a live fleet board fed by the durable telemetry journals.

PR 7's heartbeat board is shared memory — it dies with the driver.  This
board reads each session's ``telemetry.jsonl`` beat timeline straight off
disk, so it works from any process, keeps working while the supervisor
heals sessions, and renders history (instr/s sparklines), not just the
latest row.

Healed sessions: the journal stamps every entry with the writer's attempt
number, and rates are only ever computed between beats of the *same*
attempt — a relaunched session's icounts never mix with its
predecessor's, so a heal shows up as a sparkline reset, not a negative
rate spike (the satellite regression tests pin this).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.obs.aggregate import discover_run_dirs
from repro.obs.heartbeat import STALE_AFTER_S
from repro.obs.journal import TELEMETRY_JOURNAL_NAME, scan_telemetry_journal

_SPARK_CHARS = "▁▂▃▄▅▆▇█"
_TERMINAL_STATES = ("done", "failed", "complete", "quarantined")


def sparkline(values, width: int = 12) -> str:
    """Render the last ``width`` values as a unicode sparkline."""
    tail = [max(0.0, float(value)) for value in values][-width:]
    if not tail:
        return ""
    peak = max(tail)
    if peak <= 0:
        return _SPARK_CHARS[0] * len(tail)
    top = len(_SPARK_CHARS) - 1
    return "".join(_SPARK_CHARS[round(value / peak * top)] for value in tail)


@dataclass
class SessionView:
    """One session directory's state, derived from its beat timeline."""

    name: str
    path: str
    #: Newest attempt seen in the journal (heals increment it).
    attempt: int = 0
    actor: str = "-"
    state: str = "-"
    icount: int = 0
    frames: int = 0
    #: Wall time of the newest beat (seconds since the epoch), 0 if none.
    last_wall: float = 0.0
    #: instr/s between consecutive same-actor beats of the newest attempt.
    rates: tuple = ()
    #: Attempts before the newest one (>0 means the session healed).
    heals: int = 0

    @property
    def instr_s(self) -> float:
        return self.rates[-1] if self.rates else 0.0

    def age_s(self, now: float | None = None) -> float:
        if self.last_wall <= 0:
            return 0.0
        return max(0.0, (time.time() if now is None else now)
                   - self.last_wall)

    def is_stale(self, now: float | None = None,
                 stale_after_s: float = STALE_AFTER_S) -> bool:
        if self.state in _TERMINAL_STATES:
            return False
        if self.actor == "queue":
            # A queued-but-not-started service job has no heartbeat to
            # go stale; waiting is its healthy state.
            return False
        return self.age_s(now) > stale_after_s

    @classmethod
    def from_journal(cls, name: str, path: str) -> "SessionView":
        scan = scan_telemetry_journal(
            os.path.join(path, TELEMETRY_JOURNAL_NAME))
        beats = scan.beats()
        view = cls(name=name, path=path)
        if not beats:
            return view
        newest_attempt = max(beat.get("attempt", 0) for beat in beats)
        attempts = {beat.get("attempt", 0) for beat in beats}
        view.attempt = newest_attempt
        view.heals = len(attempts) - 1
        current = [beat for beat in beats
                   if beat.get("attempt", 0) == newest_attempt]
        last = current[-1]
        view.actor = last.get("actor", "-")
        view.state = last.get("state", "-")
        view.icount = last.get("icount", 0)
        view.frames = last.get("frames", 0)
        view.last_wall = last.get("wall", 0.0)
        # Rate between consecutive beats of the same actor within this
        # attempt: the record and CR actors interleave in one journal, and
        # their icount streams are independent clocks.
        rates: list[float] = []
        prev_by_actor: dict[str, dict] = {}
        for beat in current:
            actor = beat.get("actor", "-")
            prev = prev_by_actor.get(actor)
            if prev is not None:
                d_icount = beat.get("icount", 0) - prev.get("icount", 0)
                d_wall = beat.get("wall", 0.0) - prev.get("wall", 0.0)
                if d_icount >= 0 and d_wall > 0:
                    rates.append(d_icount / d_wall)
            prev_by_actor[actor] = beat
        view.rates = tuple(rates)
        return view


class TopBoard:
    """Discover and render every session under a run/fleet directory.

    A *service* store (one holding a ``queue.jsonl`` written by ``repro
    serve``) additionally contributes rows for jobs the scheduler has
    accepted but not yet started: those have no run store and no
    telemetry journal — only the queue journal knows them — and they
    render in the ``QUEUED`` state so an operator watching ``repro top``
    sees the backlog, not just the in-flight work.
    """

    def __init__(self, root: str, stale_after_s: float = STALE_AFTER_S):
        self.root = root
        self.stale_after_s = stale_after_s

    def views(self) -> list[SessionView]:
        return [SessionView.from_journal(os.path.basename(path.rstrip("/"))
                                         or path, path)
                for path in discover_run_dirs(self.root)]

    def queued_views(self, seen_names) -> list[SessionView]:
        """QUEUED/quarantined rows from the service queue journal, for
        jobs that never launched (no run store of their own yet)."""
        from repro.store.jobqueue import JOB_QUEUE_NAME, load_job_queue_state

        if not os.path.exists(os.path.join(self.root, JOB_QUEUE_NAME)):
            return []
        state = load_job_queue_state(self.root)
        views = []
        for job in state.jobs:
            if job.job_id in seen_names:
                continue
            if job.state not in ("queued", "quarantined"):
                continue
            views.append(SessionView(
                name=job.job_id,
                path=os.path.join(self.root, job.job_id),
                actor="queue",
                state=job.state,
                last_wall=job.submitted_wall,
            ))
        return views

    def render(self, now: float | None = None) -> str:
        views = self.views()
        views += self.queued_views({view.name for view in views})
        views.sort(key=lambda view: view.name)
        now = time.time() if now is None else now
        lines = [
            f"{'session':<14} {'state':<10} {'icount':>12} {'frames':>7} "
            f"{'instr/s':>12} {'trend':<12} {'age':>6}  flags"
        ]
        lines.append("-" * 88)
        for view in views:
            flags = []
            if view.is_stale(now, self.stale_after_s):
                flags.append("WEDGED?")
            if view.heals:
                flags.append(f"healed x{view.heals}")
            label = f"{view.actor}:{view.state}" if view.actor != "-" \
                else view.state
            lines.append(
                f"{view.name:<14} {label:<10.10} {view.icount:>12,} "
                f"{view.frames:>7,} {view.instr_s:>12,.0f} "
                f"{sparkline(view.rates):<12} {view.age_s(now):>5.1f}s  "
                f"{' '.join(flags)}".rstrip()
            )
        if not views:
            lines.append(f"(no telemetry journals under {self.root})")
        total_rate = sum(view.instr_s for view in views
                         if not view.is_stale(now, self.stale_after_s)
                         and view.state not in _TERMINAL_STATES)
        done = sum(1 for view in views if view.state in _TERMINAL_STATES)
        queued = sum(1 for view in views if view.actor == "queue"
                     and view.state == "queued")
        lines.append("")
        lines.append(
            f"{len(views)} session(s), {done} finished, "
            + (f"{queued} queued, " if queued else "")
            + f"fleet rate {total_rate:,.0f} instr/s"
        )
        return "\n".join(lines)


def watch(root: str, *, interval_s: float = 1.0, iterations: int | None = None,
          stale_after_s: float = STALE_AFTER_S, out=None) -> None:
    """Render the board every ``interval_s`` until interrupted.

    ``iterations`` bounds the loop for tests/CI; ``None`` runs until
    Ctrl-C.  Terminates early once every session reaches a terminal
    state.
    """
    import sys

    out = sys.stdout if out is None else out
    board = TopBoard(root, stale_after_s=stale_after_s)
    count = 0
    try:
        while iterations is None or count < iterations:
            text = board.render()
            out.write("\x1b[2J\x1b[H" if out.isatty() else "")
            out.write(text + "\n")
            out.flush()
            count += 1
            views = board.views()
            if views and all(view.state in _TERMINAL_STATES
                             for view in views):
                break
            if iterations is None or count < iterations:
                time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
