"""The telemetry facade: one object an actor records everything through.

A :class:`Telemetry` instance bundles a private :class:`MetricsRegistry`
and a :class:`SpanTracer` for one actor (the recorder, the checkpointing
replayer, one alarm replayer, the pipeline executor, the fleet driver).
Actors never share an instance — concurrency safety comes from merging
picklable :class:`TelemetrySnapshot` deltas at phase boundaries, exactly
like the fleet's per-session results.

**Off is free.**  Construction goes through :meth:`Telemetry.for_config`,
which returns ``None`` when ``SimulationConfig.telemetry`` is off; every
instrumented call site holds that reference in a local and guards with a
single ``if tel is not None`` — the nil-sink fast path.  No wall-clock
reads, no allocation, no dict lookups happen on the disabled path, and
the simulated cycle accounting is never touched by telemetry at all (so
enabling it cannot move any figure or benchmark number).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    bucket_bounds,
    to_prometheus,
)
from repro.obs.profile import ProfileSnapshot
from repro.obs.trace import SpanEvent, SpanTracer, to_chrome_trace, to_jsonl

#: Instructions between heartbeat publishes — rate-limits beats with the
#: deterministic clock so the hot loop never reads wall time.
BEAT_INTERVAL_INSTRUCTIONS = 25_000


class Telemetry:
    """Per-actor metrics + spans + (optional) liveness heartbeat."""

    def __init__(self, actor: str, heartbeat=None,
                 beat_interval: int = BEAT_INTERVAL_INSTRUCTIONS,
                 journal=None):
        self.actor = actor
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(actor)
        #: Optional :class:`~repro.obs.heartbeat.HeartbeatReporter`.
        self.heartbeat = heartbeat
        #: Optional durable sink (:class:`~repro.obs.journal.
        #: TelemetryJournalWriter`): beats are journaled as they publish
        #: and a cumulative snapshot is journaled every few beats, so a
        #: killed run leaves a reconstructable telemetry trail on disk.
        self.journal = journal
        self._beat_interval = beat_interval
        self._last_beat_icount = 0
        self._beats_journaled = 0
        self._profile: "ProfileSnapshot | None" = None

    @classmethod
    def for_config(cls, config, actor: str, heartbeat=None,
                   journal=None) -> "Telemetry | None":
        """The instance call sites guard on: ``None`` unless telemetry (or
        the profiler, whose snapshot rides telemetry) is enabled in
        ``config``, or a heartbeat/journal sink is attached."""
        if (heartbeat is None and journal is None
                and not getattr(config, "telemetry", False)
                and not getattr(config, "profile", False)):
            return None
        return cls(actor, heartbeat=heartbeat, journal=journal)

    @classmethod
    def for_tool(cls, actor: str) -> "Telemetry":
        """An always-on instance for offline CLI tools (``repro diff``).

        Forensic tools run outside any simulation — their spans and
        counters cannot perturb cycle accounting, so there is no config
        gate and no nil-sink path to preserve.
        """
        return cls(actor)

    # ------------------------------------------------------------------
    # metrics shorthands
    # ------------------------------------------------------------------

    def count(self, name: str, value: int = 1, events: int = 1):
        self.registry.counter(name).add(value, events)

    def count_tagged(self, name: str, tag, value: int = 1, events: int = 1):
        self.registry.tagged(name).add(tag, value, events)

    def gauge(self, name: str, value: int):
        self.registry.gauge(name).set(value)

    def observe(self, name: str, value: int):
        self.registry.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------

    def span(self, name: str, category: str, icount_fn, **args):
        return self.tracer.span(name, category, icount_fn, **args)

    def begin(self, name: str, category: str, icount: int, **args) -> int:
        return self.tracer.begin(name, category, icount, **args)

    def end(self, token: int, icount: int, **args):
        self.tracer.end(token, icount, **args)

    def instant(self, name: str, category: str, icount: int, **args):
        self.tracer.instant(name, category, icount, **args)

    # ------------------------------------------------------------------
    # heartbeat
    # ------------------------------------------------------------------

    #: Beats between cumulative snapshot entries in the durable journal —
    #: bounds what a kill -9 can lose to a few beat intervals of history.
    JOURNAL_SNAPSHOT_EVERY_BEATS = 4

    def maybe_beat(self, state: str, icount: int, frames: int = 0):
        """Publish liveness if at least the beat interval of instructions
        has retired since the last publish (deterministic rate limit)."""
        if self.heartbeat is None and self.journal is None:
            return
        if icount - self._last_beat_icount < self._beat_interval:
            return
        self._last_beat_icount = icount
        if self.heartbeat is not None:
            self.heartbeat.publish(state, icount, frames)
        self._journal_beat(state, icount, frames)

    def beat(self, state: str, icount: int = 0, frames: int = 0):
        """Publish liveness unconditionally (phase transitions)."""
        if self.heartbeat is None and self.journal is None:
            return
        self._last_beat_icount = icount
        if self.heartbeat is not None:
            self.heartbeat.publish(state, icount, frames)
        self._journal_beat(state, icount, frames, force_snapshot=True)

    def _journal_beat(self, state: str, icount: int, frames: int,
                      force_snapshot: bool = False):
        journal = self.journal
        if journal is None:
            return
        journal.append_beat(self.actor, state, icount, frames)
        self._beats_journaled += 1
        if (force_snapshot
                or self._beats_journaled % self.JOURNAL_SNAPSHOT_EVERY_BEATS
                == 0):
            journal.append_snapshot(self.snapshot())

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def attach_profile(self, profile: "ProfileSnapshot | None"):
        """Attach the actor's guest profile so it rides :meth:`snapshot`."""
        self._profile = profile

    def snapshot(self) -> "TelemetrySnapshot":
        return TelemetrySnapshot(
            actor=self.actor,
            metrics=self.registry.snapshot(),
            spans=tuple(self.tracer.events),
            profile=self._profile,
        )


@dataclass
class TelemetrySnapshot:
    """Picklable dump of one actor's telemetry; merges into run rollups.

    This is the ``telemetry`` attribute runs and fleet results carry: a
    plain-data object that crossed whatever process boundaries the run
    used, with the metrics of every actor merged and every span retained
    (spans keep their ``actor`` so the Chrome trace shows one row per
    pipeline stage).
    """

    actor: str
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    spans: tuple = ()
    #: Guest profile (``None`` unless ``config.profile``): raw samples plus
    #: heat tables, merged icount-ordered across epochs/phases/sessions.
    profile: "ProfileSnapshot | None" = None

    @classmethod
    def merged(cls, snapshots, actor: str = "run") -> "TelemetrySnapshot":
        """Fold many actor snapshots into one run-level snapshot."""
        metrics = MetricsSnapshot()
        spans: list[SpanEvent] = []
        profiles: list[ProfileSnapshot] = []
        for snapshot in snapshots:
            if snapshot is None:
                continue
            metrics.merge(snapshot.metrics)
            spans.extend(snapshot.spans)
            if snapshot.profile is not None:
                profiles.append(snapshot.profile)
        profile = (ProfileSnapshot.merged(profiles, actor=actor)
                   if profiles else None)
        return cls(actor=actor, metrics=metrics, spans=tuple(spans),
                   profile=profile)

    # -- exports -------------------------------------------------------

    def chrome_trace(self, label: str = "repro") -> dict:
        return to_chrome_trace(self.spans, label=label)

    def jsonl(self) -> str:
        return to_jsonl(self.spans)

    def prometheus(self, prefix: str = "repro") -> str:
        return to_prometheus(self.metrics, prefix=prefix)

    def spans_named(self, name: str) -> tuple:
        return tuple(span for span in self.spans if span.name == name)

    def tables(self) -> str:
        """Human-readable per-phase and per-metric tables (``repro stats``)."""
        lines: list[str] = []
        phases = [span for span in self.spans if span.category == "phase"]
        if phases:
            lines.append("phase                        wall ms      icount window")
            lines.append("-" * 62)
            for span in sorted(phases, key=lambda s: s.begin_wall_ns):
                label = f"{span.actor}:{span.name}"
                lines.append(
                    f"{label:<28} {span.wall_ns / 1e6:>9.2f}   "
                    f"[{span.begin_icount:,} .. {span.end_icount:,}]"
                )
            lines.append("")
        metrics = self.metrics
        if metrics.counters:
            lines.append("counter                          value       events")
            lines.append("-" * 52)
            for name in sorted(metrics.counters):
                value, events = metrics.counters[name]
                lines.append(f"{name:<30} {value:>10,} {events:>12,}")
            lines.append("")
        if metrics.tagged:
            lines.append("counter[tag]                               value       events")
            lines.append("-" * 62)
            for name in sorted(metrics.tagged):
                for tag in sorted(metrics.tagged[name]):
                    value, events = metrics.tagged[name][tag]
                    lines.append(
                        f"{name + '[' + tag + ']':<40} {value:>10,} "
                        f"{events:>12,}"
                    )
            lines.append("")
        if metrics.gauges:
            lines.append("gauge                            value          max")
            lines.append("-" * 52)
            for name in sorted(metrics.gauges):
                value, max_value = metrics.gauges[name]
                lines.append(f"{name:<30} {value:>10,} {max_value:>12,}")
            lines.append("")
        if metrics.histograms:
            lines.append("histogram                       samples         mean          max")
            lines.append("-" * 64)
            for name in sorted(metrics.histograms):
                counts, total, count, max_value = metrics.histograms[name]
                mean = total / count if count else 0.0
                lines.append(
                    f"{name:<30} {count:>9,} {mean:>12.1f} {max_value:>12,}"
                )
                for index, bucket in enumerate(counts):
                    if not bucket:
                        continue
                    low, high = bucket_bounds(index)
                    lines.append(f"    [{low:>12,} .. {high:>12,}) {bucket:>9,}")
            lines.append("")
        if self.profile is not None and self.profile.sample_count:
            lines.append(self.profile.tables())
        return "\n".join(lines)
