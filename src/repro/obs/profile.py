"""Deterministic guest profiler: icount-strided PC sampling.

The paper's replay guarantee makes profiling *free of Heisenberg effects*:
because record and replay retire the same instruction stream, a sampler
keyed to the deterministic instruction count sees the exact same PCs in
both phases.  This module exploits that the CPU's batched run loop is
**batch-schedule invariant** (the contract the differential suite in
``tests/test_backend_equivalence.py`` enforces): capping any ``cpu.run``
batch at the next sample-due icount cannot change recorded bytes,
checkpoints, verdicts, or cycle accounting — so the profiler is
bit-transparent by construction, like the rest of ``repro.obs``.

Sampling semantics: the guest's PC is captured every time the retired
instruction count crosses a multiple of ``SimulationConfig.profile_stride``
(the sample is the PC *about to execute* at that icount).  Because the
stride grid is global, epoch-parallel replay workers sample the same grid
points as a sequential CR, and the merged profile is identical sample for
sample — the profiler analogue of the telemetry merge discipline.

Each sample is attributed on capture:

* **kernel symbol** via :meth:`repro.kernel.image.KernelImage.function_at`
  (user-mode PCs attribute to their page instead);
* **task** via the context-switch interposer's live TID;
* **opcode** by a read-only decode of the sampled instruction word;
* **page** at the paging geometry's page size.

Snapshots additionally carry the execution backend's trace-cache counters
(``cpu/trace.py``: translations, hits, promotions, invalidations) so hot
superblock churn lands next to the flame graph it explains.

Exports: collapsed-stack flame graphs (the ``frame;frame count`` lines
``flamegraph.pl`` / speedscope consume), plus per-function, per-opcode and
per-page heat tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import try_decode


class GuestProfiler:
    """One actor's PC sampler; nil unless ``config.profile`` is on.

    Run loops hold the instance in a local and interact through two calls:

    * :meth:`cap_batch` — bound the next ``cpu.run`` batch so execution
      stops exactly on the stride grid;
    * :meth:`maybe_sample` — at the loop top, capture a sample when the
      icount sits on a due grid point (idempotent per grid point, so a
      loop that passes the same icount twice — interrupt injection,
      queued async records — samples once).

    The profiler never mutates guest state: memory reads go through the
    read-only fetch path and failures degrade the attribution, never the
    run.
    """

    def __init__(self, actor: str, stride: int, *, kernel=None,
                 page_size: int = 256, start_icount: int = 0):
        if stride <= 0:
            raise ValueError(f"profile stride must be positive, got {stride}")
        self.actor = actor
        self.stride = stride
        self.kernel = kernel
        self.page_size = page_size
        #: Next icount grid point due for a sample.  Grid points are global
        #: multiples of the stride, so a profiler seeded mid-run (an AR or
        #: an epoch worker) lands on the same points as a full-run one.
        self.next_due = self._grid_after(start_icount)
        #: Raw samples: ``(icount, pc, tid, user)`` in capture order
        #: (strictly increasing icount by construction).
        self.samples: list[tuple[int, int, int, int]] = []
        self._stacks: dict[str, int] = {}
        self._functions: dict[str, int] = {}
        self._opcodes: dict[str, int] = {}
        self._pages: dict[int, int] = {}

    @classmethod
    def for_config(cls, config, actor: str, *, kernel=None,
                   start_icount: int = 0) -> "GuestProfiler | None":
        """The nil-sink constructor: ``None`` unless ``config.profile``."""
        if not getattr(config, "profile", False):
            return None
        return cls(actor, config.profile_stride, kernel=kernel,
                   page_size=config.page_size, start_icount=start_icount)

    def _grid_after(self, icount: int) -> int:
        """First stride multiple strictly greater than ``icount`` — except
        that ``icount`` itself is due when it sits on the grid (so a
        profiler seeded exactly at a boundary samples it)."""
        if icount % self.stride == 0:
            return icount
        return (icount // self.stride + 1) * self.stride

    def reseed(self, icount: int):
        """Re-aim at the grid after a checkpoint restore moved the icount.

        The grid itself never moves — multiples of the stride stay global —
        so a replayer that jumps to a checkpoint resumes sampling at
        exactly the points a from-the-start run would have hit.  Strictly
        *after* the restore point: when the checkpoint sits on the grid
        (epoch boundaries by construction often do), that sample belongs
        to the run that executed up to it — the previous epoch captured it
        at its budget stop, and a seeded worker re-sampling it would
        duplicate the point in the stitched stream."""
        self.next_due = (icount // self.stride + 1) * self.stride

    # ------------------------------------------------------------------
    # hot-loop surface
    # ------------------------------------------------------------------

    def cap_batch(self, batch: int, icount: int) -> int:
        """Bound ``batch`` so ``cpu.run`` stops at the next grid point."""
        until = self.next_due - icount
        if until <= 0:
            # The loop top will sample this point before running; stop at
            # the following grid point.
            until += self.stride
        return until if until < batch else batch

    def maybe_sample(self, cpu, tid: int = 0):
        """Capture a sample if the CPU sits on a due grid point."""
        icount = cpu.icount
        if icount < self.next_due:
            return
        self._capture(cpu, icount, tid)
        self.next_due = icount + self.stride

    # ------------------------------------------------------------------
    # capture + attribution
    # ------------------------------------------------------------------

    def _capture(self, cpu, icount: int, tid: int):
        pc = cpu.pc
        user = 1 if cpu.user else 0
        self.samples.append((icount, pc, tid, user))
        word = None
        try:
            page, lo, _hi = cpu.memory.fetch_page(pc, cpu.user)
            word = page[pc - lo]
        except Exception:
            pass  # unfetchable PC (mid-fault): attribution degrades only
        opcode = "unfetchable"
        if word is not None:
            instr = try_decode(word)
            opcode = instr.op.name.lower() if instr is not None else "invalid"
        frame = self._symbolize(pc, user)
        stack = f"{self.actor};task{tid};{frame}"
        self._stacks[stack] = self._stacks.get(stack, 0) + 1
        self._functions[frame] = self._functions.get(frame, 0) + 1
        self._opcodes[opcode] = self._opcodes.get(opcode, 0) + 1
        page_index = pc // self.page_size
        self._pages[page_index] = self._pages.get(page_index, 0) + 1

    def _symbolize(self, pc: int, user: int) -> str:
        if user:
            return f"user;page_{pc // self.page_size:#x}"
        name = self.kernel.function_at(pc) if self.kernel is not None else None
        return f"kernel;{name if name is not None else f'pc_{pc:#x}'}"

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------

    def snapshot(self, backend_stats: dict | None = None) -> "ProfileSnapshot":
        return ProfileSnapshot(
            actor=self.actor,
            stride=self.stride,
            samples=tuple(self.samples),
            stacks=dict(self._stacks),
            functions=dict(self._functions),
            opcodes=dict(self._opcodes),
            pages=dict(self._pages),
            backend=dict(backend_stats) if backend_stats else {},
        )


@dataclass
class ProfileSnapshot:
    """Picklable dump of one profiler; merges icount-ordered across
    epochs, phases, and fleet sessions.

    ``samples`` stays raw — ``(icount, pc, tid, user)`` — so merged
    profiles can be compared sample for sample (the determinism tests do
    exactly that); the aggregate tables merge by addition like
    :class:`~repro.obs.metrics.MetricsSnapshot`.
    """

    actor: str = "profile"
    stride: int = 0
    samples: tuple = ()
    #: Collapsed-stack counts: ``"actor;taskN;mode;frame" -> samples``.
    stacks: dict = field(default_factory=dict)
    functions: dict = field(default_factory=dict)
    opcodes: dict = field(default_factory=dict)
    pages: dict = field(default_factory=dict)
    #: Execution-backend counters at snapshot time (trace-cache churn).
    backend: dict = field(default_factory=dict)

    @property
    def sample_count(self) -> int:
        return len(self.samples)

    @classmethod
    def merged(cls, snapshots, actor: str = "run") -> "ProfileSnapshot":
        """Fold many profiles into one, samples globally icount-ordered.

        Every input's sample stream must already be icount-sorted (the
        capture loop guarantees it); a violation means a producer bug and
        raises rather than silently reordering history.  Across inputs the
        merge sorts by ``(icount, actor-order)`` — epochs partition the
        icount axis, so out-of-order epoch completion cannot change the
        merged stream.
        """
        stride = 0
        tagged: list[tuple[int, int, tuple]] = []
        stacks: dict[str, int] = {}
        functions: dict[str, int] = {}
        opcodes: dict[str, int] = {}
        pages: dict[int, int] = {}
        backend: dict[str, int] = {}
        for order, snap in enumerate(snapshots):
            if snap is None:
                continue
            stride = stride or snap.stride
            last = -1
            for sample in snap.samples:
                if sample[0] < last:
                    raise ValueError(
                        f"profile samples from {snap.actor!r} are not "
                        f"icount-ordered: {sample[0]} after {last}"
                    )
                last = sample[0]
                tagged.append((sample[0], order, sample))
            for key, count in snap.stacks.items():
                stacks[key] = stacks.get(key, 0) + count
            for key, count in snap.functions.items():
                functions[key] = functions.get(key, 0) + count
            for key, count in snap.opcodes.items():
                opcodes[key] = opcodes.get(key, 0) + count
            for key, count in snap.pages.items():
                pages[key] = pages.get(key, 0) + count
            for key, count in snap.backend.items():
                backend[key] = backend.get(key, 0) + count
        tagged.sort(key=lambda item: (item[0], item[1]))
        return cls(
            actor=actor,
            stride=stride,
            samples=tuple(item[2] for item in tagged),
            stacks=stacks,
            functions=functions,
            opcodes=opcodes,
            pages=pages,
            backend=backend,
        )

    # -- exports -------------------------------------------------------

    def collapsed_stacks(self) -> str:
        """Brendan-Gregg collapsed format: one ``frame;frame count`` line
        per distinct stack, ready for ``flamegraph.pl`` or speedscope."""
        lines = [f"{stack} {count}"
                 for stack, count in sorted(self.stacks.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict:
        """Plain-data form for the telemetry journal (see ``obs/journal``)."""
        return {
            "actor": self.actor,
            "stride": self.stride,
            "samples": [list(sample) for sample in self.samples],
            "stacks": self.stacks,
            "functions": self.functions,
            "opcodes": self.opcodes,
            "pages": {str(page): count for page, count in self.pages.items()},
            "backend": self.backend,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ProfileSnapshot":
        return cls(
            actor=data.get("actor", "profile"),
            stride=data.get("stride", 0),
            samples=tuple(tuple(sample) for sample in data.get("samples", [])),
            stacks=dict(data.get("stacks", {})),
            functions=dict(data.get("functions", {})),
            opcodes=dict(data.get("opcodes", {})),
            pages={int(page): count
                   for page, count in data.get("pages", {}).items()},
            backend=dict(data.get("backend", {})),
        )

    def tables(self, top: int = 12) -> str:
        """Human-readable heat tables (``repro stats``)."""
        lines: list[str] = []

        def table(title: str, header: str, rows):
            rows = sorted(rows, key=lambda row: -row[1])[:top]
            if not rows:
                return
            lines.append(f"{header:<44} samples")
            lines.append("-" * 54)
            for key, count in rows:
                lines.append(f"{key:<44} {count:>7,}")
            lines.append("")

        if self.samples:
            lines.append(
                f"profile: {len(self.samples):,} samples @ stride "
                f"{self.stride:,} (icount {self.samples[0][0]:,} .. "
                f"{self.samples[-1][0]:,})"
            )
            lines.append("")
        table("functions", "hot symbol", self.functions.items())
        table("opcodes", "opcode", self.opcodes.items())
        table("pages", "code page", (
            (f"page_{page:#x}", count) for page, count in self.pages.items()))
        if self.backend:
            lines.append(f"{'trace-cache counter':<44} value")
            lines.append("-" * 54)
            for key in sorted(self.backend):
                lines.append(f"{key:<44} {self.backend[key]:>7,}")
            lines.append("")
        return "\n".join(lines)
