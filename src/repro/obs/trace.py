"""Icount-stamped span tracing with Chrome-trace and JSONL export.

Every span is stamped twice: with the **deterministic instruction count**
(the simulated clock every record, checkpoint, and alarm is keyed on — so
spans line up across record / CR / AR no matter which host thread or
process ran them) and with **monotonic wall time** (``perf_counter_ns``,
read only at span boundaries, never on the hot path).

Span begin/end pairs are matched by token, so concurrent spans from a
thread pool interleave safely; the tracer takes a small lock on the
span-boundary operations only (spans are per phase / per checkpoint / per
alarm — a few hundred per run, not per instruction).

Export targets:

* :func:`to_chrome_trace` — the Trace Event Format JSON that
  ``chrome://tracing`` and Perfetto load directly ("X" complete events on
  the wall-time axis, icount window in ``args``).
* :func:`to_jsonl` — one JSON object per line, the compact stream form
  for shipping to a collector or grepping.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SpanEvent:
    """One completed span (or instant, when the icounts/walls coincide)."""

    name: str
    #: Span taxonomy bucket: "phase", "checkpoint", "ar", "recover",
    #: "frame", "session", ...
    category: str
    #: Actor that emitted the span ("record", "cr", "ar", "pipeline",
    #: "fleet") — becomes the trace row (tid) in Chrome trace.
    actor: str
    begin_icount: int
    end_icount: int
    begin_wall_ns: int
    end_wall_ns: int
    args: tuple = ()

    @property
    def wall_ns(self) -> int:
        return self.end_wall_ns - self.begin_wall_ns

    @property
    def icount_window(self) -> tuple[int, int]:
        return (self.begin_icount, self.end_icount)


@dataclass
class _OpenSpan:
    name: str
    category: str
    begin_icount: int
    begin_wall_ns: int
    args: tuple


class SpanTracer:
    """Collects spans for one actor; picklable via its completed events."""

    def __init__(self, actor: str):
        self.actor = actor
        self.events: list[SpanEvent] = []
        self._lock = threading.Lock()
        self._open: dict[int, _OpenSpan] = {}
        self._next_token = 0

    def begin(self, name: str, category: str, icount: int, **args) -> int:
        """Open a span; returns the token :meth:`end` closes it with."""
        span = _OpenSpan(
            name=name,
            category=category,
            begin_icount=icount,
            begin_wall_ns=time.perf_counter_ns(),
            args=tuple(args.items()),
        )
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._open[token] = span
        return token

    def end(self, token: int, icount: int, **args):
        """Close the span ``token``; extra args merge into the span's."""
        end_wall = time.perf_counter_ns()
        with self._lock:
            span = self._open.pop(token)
            self.events.append(SpanEvent(
                name=span.name,
                category=span.category,
                actor=self.actor,
                begin_icount=span.begin_icount,
                end_icount=icount,
                begin_wall_ns=span.begin_wall_ns,
                end_wall_ns=end_wall,
                args=span.args + tuple(args.items()),
            ))

    def instant(self, name: str, category: str, icount: int, **args):
        """A zero-duration marker (e.g. an injected fault, a frame drop)."""
        now = time.perf_counter_ns()
        with self._lock:
            self.events.append(SpanEvent(
                name=name,
                category=category,
                actor=self.actor,
                begin_icount=icount,
                end_icount=icount,
                begin_wall_ns=now,
                end_wall_ns=now,
                args=tuple(args.items()),
            ))

    def span(self, name: str, category: str, icount_fn, **args):
        """Context manager over :meth:`begin`/:meth:`end`.

        ``icount_fn`` is called at entry and exit to stamp the span with
        the deterministic clock (e.g. ``lambda: machine.cpu.icount``).
        """
        return _SpanContext(self, name, category, icount_fn, args)

    def drain(self) -> tuple[SpanEvent, ...]:
        """Completed spans, oldest first (leaves the tracer reusable)."""
        with self._lock:
            events = tuple(self.events)
            self.events = []
        return events


@dataclass
class _SpanContext:
    tracer: SpanTracer
    name: str
    category: str
    icount_fn: object
    args: dict
    token: int = field(default=-1)

    def __enter__(self):
        self.token = self.tracer.begin(
            self.name, self.category, self.icount_fn(), **self.args,
        )
        return self

    def __exit__(self, exc_type, exc, tb):
        extra = {"error": exc_type.__name__} if exc_type is not None else {}
        self.tracer.end(self.token, self.icount_fn(), **extra)
        return False


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------

#: Stable Chrome-trace row ordering for the known actors.
_ACTOR_ROWS = {"record": 1, "cr": 2, "ar": 3, "pipeline": 4, "fleet": 5}


def _event_dict(event: SpanEvent, origin_ns: int) -> dict:
    args = dict(event.args)
    args["icount_begin"] = event.begin_icount
    args["icount_end"] = event.end_icount
    return {
        "name": event.name,
        "cat": event.category,
        "ph": "X",
        "ts": (event.begin_wall_ns - origin_ns) / 1000.0,
        "dur": max(event.wall_ns, 1) / 1000.0,
        "pid": 1,
        "tid": _ACTOR_ROWS.get(event.actor, 9),
        "args": args,
    }


def to_chrome_trace(events, label: str = "repro") -> dict:
    """Trace Event Format dict for chrome://tracing / Perfetto.

    Wall times are rebased to the earliest span so the viewer opens at
    t=0; the icount window of every span rides in ``args``.
    """
    events = sorted(events, key=lambda event: event.begin_wall_ns)
    origin = events[0].begin_wall_ns if events else 0
    trace_events = [_event_dict(event, origin) for event in events]
    actors = sorted({event.actor for event in events},
                    key=lambda actor: _ACTOR_ROWS.get(actor, 9))
    for actor in actors:
        trace_events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": _ACTOR_ROWS.get(actor, 9),
            "args": {"name": actor},
        })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"label": label},
    }


def to_jsonl(events) -> str:
    """Compact JSONL stream: one span object per line, icount-stamped."""
    lines = []
    for event in sorted(events, key=lambda event: event.begin_wall_ns):
        lines.append(json.dumps({
            "name": event.name,
            "cat": event.category,
            "actor": event.actor,
            "icount": [event.begin_icount, event.end_icount],
            "wall_ns": [event.begin_wall_ns, event.end_wall_ns],
            "args": dict(event.args),
        }, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")
