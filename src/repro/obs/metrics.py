"""Zero-dependency metrics primitives: counters, gauges, log-scale histograms.

The registry is the runtime analogue of the paper's measurement tables:
instructions retired, VM exits by kind, log records and bytes by tag,
checkpoint counts and resident bytes, alarm dispositions — the quantities
Figures 5–9 are built from, but sampled *while the system runs* instead of
reconstructed afterwards.

Design constraints, in order:

* **Hot-path safety.**  Nothing here reads the wall clock, allocates per
  observation, or takes a lock.  A :class:`TaggedCounter` add is one dict
  lookup plus two list increments — the same cost profile as the cycle
  account it also backs (``repro.perf.account``).  Cross-thread and
  cross-process safety comes from *ownership*, not locking: each actor
  (recorder, CR, each AR) owns a private registry and the coordinator
  merges picklable :class:`MetricsSnapshot` deltas at phase boundaries.
* **Fixed log-scale buckets.**  Histograms bucket by bit length (powers of
  two), so bucket boundaries are identical in every process and snapshots
  merge by plain elementwise addition — no quantile sketches, no rebinning.
* **Zero dependencies.**  Prometheus output is rendered as the text
  exposition format by :func:`to_prometheus`; Chrome-trace output lives in
  ``repro.obs.trace``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Histogram buckets: bucket ``i`` holds values whose bit length is ``i``,
#: i.e. value 0 in bucket 0 and value v in bucket ``v.bit_length()``
#: (``2**(i-1) <= v < 2**i``).  64 buckets cover the full range of 64-bit
#: simulated quantities (icounts, cycles, bytes, queue depths).
HISTOGRAM_BUCKETS = 65


def bucket_index(value: int) -> int:
    """The fixed log-scale bucket for ``value`` (negative clamps to 0)."""
    if value <= 0:
        return 0
    index = value.bit_length()
    return index if index < HISTOGRAM_BUCKETS else HISTOGRAM_BUCKETS - 1


def bucket_bounds(index: int) -> tuple[int, int]:
    """Half-open value range ``[low, high)`` covered by bucket ``index``."""
    if index <= 0:
        return (0, 1)
    return (1 << (index - 1), 1 << index)


class Counter:
    """A monotone sum plus the number of add events behind it."""

    __slots__ = ("value", "events")

    def __init__(self):
        self.value = 0
        self.events = 0

    def add(self, value: int = 1, events: int = 1):
        self.value += value
        self.events += events

    def __getstate__(self):
        return (self.value, self.events)

    def __setstate__(self, state):
        self.value, self.events = state


class TaggedCounter:
    """Per-tag (sum, events) pairs under one metric name.

    This is the registry's workhorse *and* the single source of truth the
    cycle account (``repro.perf.account``) is built on: one cell per tag
    holding ``[sum, events]``, mutated in place.
    """

    __slots__ = ("cells",)

    def __init__(self):
        #: tag -> [sum, events]; tags are strings or enum members.
        self.cells: dict = {}

    def add(self, tag, value: int = 1, events: int = 1):
        cell = self.cells.get(tag)
        if cell is None:
            self.cells[tag] = [value, events]
        else:
            cell[0] += value
            cell[1] += events

    def value(self, tag) -> int:
        cell = self.cells.get(tag)
        return cell[0] if cell is not None else 0

    def events(self, tag) -> int:
        cell = self.cells.get(tag)
        return cell[1] if cell is not None else 0

    @property
    def total(self) -> int:
        return sum(cell[0] for cell in self.cells.values())

    def merge(self, other: "TaggedCounter"):
        for tag, (value, events) in other.cells.items():
            self.add(tag, value, events)

    def __getstate__(self):
        return self.cells

    def __setstate__(self, state):
        self.cells = state


class Gauge:
    """A last-value sample that also remembers its high-water mark."""

    __slots__ = ("value", "max_value")

    def __init__(self):
        self.value = 0
        self.max_value = 0

    def set(self, value: int):
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def __getstate__(self):
        return (self.value, self.max_value)

    def __setstate__(self, state):
        self.value, self.max_value = state


class Histogram:
    """Fixed log-scale (power-of-two) bucket histogram of integer samples."""

    __slots__ = ("counts", "total", "count", "max_value")

    def __init__(self):
        self.counts = [0] * HISTOGRAM_BUCKETS
        self.total = 0
        self.count = 0
        self.max_value = 0

    def observe(self, value: int):
        self.counts[bucket_index(value)] += 1
        self.total += value
        self.count += 1
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def nonzero_buckets(self) -> list[tuple[int, int]]:
        """``(bucket_index, samples)`` pairs for the occupied buckets."""
        return [(index, count) for index, count in enumerate(self.counts)
                if count]

    def merge(self, other: "Histogram"):
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.count += other.count
        if other.max_value > self.max_value:
            self.max_value = other.max_value

    def __getstate__(self):
        return (self.counts, self.total, self.count, self.max_value)

    def __setstate__(self, state):
        self.counts, self.total, self.count, self.max_value = state


@dataclass
class MetricsSnapshot:
    """A picklable, mergeable dump of one registry's state.

    All values are plain ints/lists/dicts keyed by metric name (tags
    stringified), so snapshots cross process boundaries as small deltas
    and merge by addition — the fleet driver folds one snapshot per
    session into a fleet-wide rollup this way.
    """

    counters: dict = field(default_factory=dict)
    tagged: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold ``other`` into this snapshot (in place; returns self)."""
        for name, (value, events) in other.counters.items():
            mine = self.counters.get(name)
            if mine is None:
                self.counters[name] = [value, events]
            else:
                mine[0] += value
                mine[1] += events
        for name, cells in other.tagged.items():
            mine = self.tagged.setdefault(name, {})
            for tag, (value, events) in cells.items():
                cell = mine.get(tag)
                if cell is None:
                    mine[tag] = [value, events]
                else:
                    cell[0] += value
                    cell[1] += events
        for name, (value, max_value) in other.gauges.items():
            mine = self.gauges.get(name)
            if mine is None:
                self.gauges[name] = [value, max_value]
            else:
                # Last write wins for the sample; high-water mark maxes.
                mine[0] = value
                mine[1] = max(mine[1], max_value)
        for name, (counts, total, count, max_value) in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = [list(counts), total, count, max_value]
            else:
                for index, bucket in enumerate(counts):
                    mine[0][index] += bucket
                mine[1] += total
                mine[2] += count
                mine[3] = max(mine[3], max_value)
        return self

    def counter_value(self, name: str) -> int:
        cell = self.counters.get(name)
        return cell[0] if cell else 0

    def tagged_value(self, name: str, tag: str) -> int:
        return self.tagged.get(name, {}).get(tag, (0, 0))[0]

    def tagged_total(self, name: str) -> int:
        return sum(cell[0] for cell in self.tagged.get(name, {}).values())

    def gauge_value(self, name: str) -> int:
        cell = self.gauges.get(name)
        return cell[0] if cell else 0


class MetricsRegistry:
    """One actor's private metric store (create, mutate, snapshot).

    Instruments are created on first use and cached by name; hold the
    returned object in a local for hot code.  The registry itself is not
    shared across threads — each concurrent actor owns one and the
    coordinator merges their snapshots.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._tagged: dict[str, TaggedCounter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def tagged(self, name: str) -> TaggedCounter:
        metric = self._tagged.get(name)
        if metric is None:
            metric = self._tagged[name] = TaggedCounter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    def adopt_tagged(self, name: str, counter: TaggedCounter):
        """Register an externally owned :class:`TaggedCounter` (the cycle
        account) so snapshots read the same cells the simulator charges —
        one source of truth, no duplicate bookkeeping."""
        self._tagged[name] = counter

    @staticmethod
    def _tag_key(tag) -> str:
        value = getattr(tag, "value", tag)
        return value if isinstance(value, str) else str(value)

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={name: [metric.value, metric.events]
                      for name, metric in self._counters.items()},
            tagged={name: {self._tag_key(tag): list(cell)
                           for tag, cell in metric.cells.items()}
                    for name, metric in self._tagged.items()},
            gauges={name: [metric.value, metric.max_value]
                    for name, metric in self._gauges.items()},
            histograms={name: [list(metric.counts), metric.total,
                               metric.count, metric.max_value]
                        for name, metric in self._histograms.items()},
        )


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition-format grammar.

    Inside label values the format requires ``\\`` for a backslash,
    ``\\"`` for a double quote, and ``\\n`` for a line feed — tags are
    arbitrary strings (opcode names, error strings), so an unescaped
    value can truncate or corrupt the whole scrape.
    """
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def to_prometheus(snapshot: MetricsSnapshot, prefix: str = "repro") -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Every exposed series gets its own ``# TYPE`` line — including the
    derived ``_events`` (counter) and ``_max`` (gauge) series, which are
    distinct metric families in the exposition grammar and were
    previously emitted untyped.
    """

    def metric_name(name: str) -> str:
        return f"{prefix}_{name}".replace(".", "_").replace("-", "_")

    lines: list[str] = []
    for name in sorted(snapshot.counters):
        value, events = snapshot.counters[name]
        full = metric_name(name)
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {value}")
        lines.append(f"# TYPE {full}_events counter")
        lines.append(f"{full}_events {events}")
    for name in sorted(snapshot.tagged):
        full = metric_name(name)
        lines.append(f"# TYPE {full} counter")
        for tag in sorted(snapshot.tagged[name]):
            value, _ = snapshot.tagged[name][tag]
            lines.append(
                f'{full}{{tag="{escape_label_value(tag)}"}} {value}')
        lines.append(f"# TYPE {full}_events counter")
        for tag in sorted(snapshot.tagged[name]):
            _, events = snapshot.tagged[name][tag]
            lines.append(
                f'{full}_events{{tag="{escape_label_value(tag)}"}} {events}')
    for name in sorted(snapshot.gauges):
        value, max_value = snapshot.gauges[name]
        full = metric_name(name)
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {value}")
        lines.append(f"# TYPE {full}_max gauge")
        lines.append(f"{full}_max {max_value}")
    for name in sorted(snapshot.histograms):
        counts, total, count, max_value = snapshot.histograms[name]
        full = metric_name(name)
        lines.append(f"# TYPE {full} histogram")
        cumulative = 0
        for index, bucket in enumerate(counts):
            if not bucket:
                continue
            cumulative += bucket
            _, high = bucket_bounds(index)
            lines.append(f'{full}_bucket{{le="{high}"}} {cumulative}')
        lines.append(f'{full}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{full}_sum {total}")
        lines.append(f"{full}_count {count}")
    return "\n".join(lines) + "\n"
