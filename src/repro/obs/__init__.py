"""Runtime observability: metrics, icount-stamped spans, heartbeats.

Everything is zero-dependency and off by default — see
``SimulationConfig.telemetry`` and :meth:`Telemetry.for_config` for the
nil-sink fast path, and ``docs/OBSERVABILITY.md`` for the metric catalog
and span taxonomy.  PR 9 adds the durable layer: a crash-recoverable
telemetry journal per run store (``journal``), a deterministic guest
profiler with flame-graph export (``profile``), cross-run rollups and
SLO regression gating (``aggregate``), and the journal-fed ``repro top``
board (``top``).
"""

from repro.obs.aggregate import (
    ComparisonReport,
    DEFAULT_SLO_RULES,
    KpiRollup,
    SloRule,
    aggregate,
    compare_kpis,
    compare_snapshots,
    compare_stores,
    discover_run_dirs,
    kpis,
    load_slo,
    parse_slo,
    render_rollups,
)
from repro.obs.heartbeat import (
    HeartbeatBoard,
    HeartbeatReporter,
    HeartbeatRow,
    STALE_AFTER_S,
)
from repro.obs.journal import (
    TELEMETRY_JOURNAL_NAME,
    TelemetryJournalScan,
    TelemetryJournalWriter,
    load_run_telemetry,
    scan_telemetry_journal,
)
from repro.obs.metrics import (
    HISTOGRAM_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    TaggedCounter,
    bucket_bounds,
    bucket_index,
    escape_label_value,
    to_prometheus,
)
from repro.obs.profile import GuestProfiler, ProfileSnapshot
from repro.obs.telemetry import (
    BEAT_INTERVAL_INSTRUCTIONS,
    Telemetry,
    TelemetrySnapshot,
)
from repro.obs.top import SessionView, TopBoard, sparkline, watch
from repro.obs.trace import SpanEvent, SpanTracer, to_chrome_trace, to_jsonl

__all__ = [
    "BEAT_INTERVAL_INSTRUCTIONS",
    "ComparisonReport",
    "Counter",
    "DEFAULT_SLO_RULES",
    "Gauge",
    "GuestProfiler",
    "HeartbeatBoard",
    "HeartbeatReporter",
    "HeartbeatRow",
    "HISTOGRAM_BUCKETS",
    "Histogram",
    "KpiRollup",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ProfileSnapshot",
    "STALE_AFTER_S",
    "SessionView",
    "SloRule",
    "SpanEvent",
    "SpanTracer",
    "TELEMETRY_JOURNAL_NAME",
    "TaggedCounter",
    "Telemetry",
    "TelemetryJournalScan",
    "TelemetryJournalWriter",
    "TelemetrySnapshot",
    "TopBoard",
    "aggregate",
    "bucket_bounds",
    "bucket_index",
    "compare_kpis",
    "compare_snapshots",
    "compare_stores",
    "discover_run_dirs",
    "escape_label_value",
    "kpis",
    "load_run_telemetry",
    "load_slo",
    "parse_slo",
    "render_rollups",
    "scan_telemetry_journal",
    "sparkline",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus",
    "watch",
]
