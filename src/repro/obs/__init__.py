"""Runtime observability: metrics, icount-stamped spans, heartbeats.

Everything is zero-dependency and off by default — see
``SimulationConfig.telemetry`` and :meth:`Telemetry.for_config` for the
nil-sink fast path, and ``docs/OBSERVABILITY.md`` for the metric catalog
and span taxonomy.
"""

from repro.obs.heartbeat import (
    HeartbeatBoard,
    HeartbeatReporter,
    HeartbeatRow,
    STALE_AFTER_S,
)
from repro.obs.metrics import (
    HISTOGRAM_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    TaggedCounter,
    bucket_bounds,
    bucket_index,
    to_prometheus,
)
from repro.obs.telemetry import (
    BEAT_INTERVAL_INSTRUCTIONS,
    Telemetry,
    TelemetrySnapshot,
)
from repro.obs.trace import SpanEvent, SpanTracer, to_chrome_trace, to_jsonl

__all__ = [
    "BEAT_INTERVAL_INSTRUCTIONS",
    "Counter",
    "Gauge",
    "HeartbeatBoard",
    "HeartbeatReporter",
    "HeartbeatRow",
    "HISTOGRAM_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "STALE_AFTER_S",
    "SpanEvent",
    "SpanTracer",
    "TaggedCounter",
    "Telemetry",
    "TelemetrySnapshot",
    "bucket_bounds",
    "bucket_index",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus",
]
