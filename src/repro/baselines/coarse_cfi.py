"""Coarse-grained CFI baseline (§2.3, §9).

Relaxed CFI avoids a shadow stack by accepting any return target that is
"call-preceded" (the word before it decodes to a call).  That check is
cheap — and famously bypassable: chains built exclusively from
call-preceded gadgets slip through (Davi et al., "Stitching the Gadgets").
This module classifies ROP chains against the policy so the benches can
show which attacks coarse CFI would have caught and which it misses while
RnR-Safe still confirms them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.rop_chain import RopChain
from repro.isa.instruction import try_decode
from repro.isa.opcodes import Opcode
from repro.kernel.image import KernelImage


@dataclass(frozen=True)
class CoarseCfiPolicy:
    """The call-preceded-return policy over one kernel image."""

    kernel: KernelImage

    def _word_at(self, addr: int) -> int:
        offset = addr - self.kernel.image.base
        if 0 <= offset < len(self.kernel.image.words):
            return self.kernel.image.words[offset]
        return 0

    def is_call_preceded(self, target: int) -> bool:
        """Whether a return to ``target`` satisfies the relaxed policy."""
        instr = try_decode(self._word_at(target - 1))
        return instr is not None and instr.op in (Opcode.CALL, Opcode.CALLI)

    def allows_return_to(self, target: int) -> bool:
        return self.is_call_preceded(target)


@dataclass(frozen=True)
class CfiChainVerdict:
    """Which chain elements the coarse policy rejects."""

    chain: RopChain
    rejected_targets: tuple[int, ...]

    @property
    def detected(self) -> bool:
        """Coarse CFI flags the chain if any hop violates the policy."""
        return bool(self.rejected_targets)


def classify_chain_against_cfi(kernel: KernelImage,
                               chain: RopChain) -> CfiChainVerdict:
    """Evaluate every code hop in a chain against the relaxed policy.

    Only words that are actually jump targets (gadget entry points) are
    policy-checked; data words like the ops-table address are skipped.
    """
    policy = CoarseCfiPolicy(kernel)
    gadget_addrs = {gadget.addr for gadget in chain.gadgets}
    rejected = tuple(
        word for word in chain.stack_words
        if word in gadget_addrs and not policy.allows_return_to(word)
    )
    return CfiChainVerdict(chain=chain, rejected_targets=rejected)
