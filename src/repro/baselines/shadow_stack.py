"""Shadow-stack baselines (§2.2, §2.3).

Two comparison points against RnR-Safe's detector:

1. :class:`HardwareShadowStackModel` — a SmashGuard/SRAS-style precise
   hardware shadow stack.  Detection is exact (no false positives or
   negatives), but the hardware must spill/fill to memory on overflow and
   save/restore on context switches, and those operations need privileged
   instructions — the very attack surface §2.2 warns about.  The model
   charges those costs so the bench can compare against RnR-Safe's 27%.

2. :func:`run_instrumented_shadow_stack` — an inline software shadow stack
   maintained by trapping every call/ret (standing in for binary
   instrumentation, §2.3 "overheads of over 100%"); it shows why the paper
   moves the precise check *off* the critical path and into the alarm
   replayer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.exits import ExitControls, VmExit, VmExitReason
from repro.hypervisor.machine import GuestMachine, MachineSpec
from repro.perf.account import Category
from repro.perf.report import RunMetrics


@dataclass
class ShadowStackStats:
    """What a shadow-stack run observed."""

    metrics: RunMetrics
    calls: int = 0
    rets: int = 0
    violations: list[tuple[int, int, int]] = field(default_factory=list)
    spills: int = 0
    fills: int = 0

    @property
    def detected_attack(self) -> bool:
        return bool(self.violations)


@dataclass(frozen=True)
class HardwareShadowStackModel:
    """Cost model of a precise hardware shadow stack.

    The stack itself is invisible (no per-call cost beyond the hardware),
    but crossing the on-chip capacity forces a spill or fill exit, and each
    context switch must swap the on-chip portion.
    """

    on_chip_entries: int = 32
    spill_exit_cycles: int = 1000
    context_switch_cycles: int = 400

    def estimate_overhead_cycles(self, calls: int, rets: int,
                                 max_depth: int, switches: int) -> int:
        """Overhead for one run's call/ret/switch profile."""
        spills = max(0, max_depth - self.on_chip_entries)
        # Each excursion past the on-chip window pays a spill and a fill.
        return (2 * spills * self.spill_exit_cycles
                + switches * self.context_switch_cycles)


def run_instrumented_shadow_stack(spec: MachineSpec,
                                  max_instructions: int = 2_000_000,
                                  kernel_only: bool = True) -> ShadowStackStats:
    """Run the workload under an inline, trap-per-call/ret shadow stack.

    This is the §2.3 software baseline: precise, but every call and return
    exits to the monitor.  The guest runs natively otherwise (no recording).
    """
    controls = ExitControls(
        trap_rdtsc=False,
        trap_rdrand=False,
        trap_call_ret=True,
        trap_call_ret_user=not kernel_only,
    )
    machine = GuestMachine(spec, controls, with_world=True)
    costs = spec.config.costs
    stats = ShadowStackStats(metrics=RunMetrics(
        label=f"{spec.label}+shadowstack",
        instructions=0,
        guest_cycles=0,
        account=machine.account,
    ))
    shadow: list[int] = []
    cpu = machine.cpu
    intc = machine.intc
    world = machine.world
    machine.timer.start(0)
    from repro.hypervisor.emulation import emulate_pio_in, emulate_pio_out
    while not machine.stopped and cpu.icount < max_instructions:
        if world.next_due is not None and machine.now >= world.next_due:
            world.run_due(machine.now)
        if intc.has_pending and cpu.int_enabled and not cpu.halted:
            machine.charge(Category.DEVICE,
                           costs.vmexit_cycles + costs.device_emulation_cycles)
            machine.disk_dev.flush_dma()
            machine.nic.flush_dma()
            cpu.raise_interrupt(intc.take())
        exit_event = cpu.step()
        if exit_event is None:
            continue
        reason = exit_event.reason
        if reason is VmExitReason.CALL_TRAP:
            shadow.append(exit_event.return_addr)
            stats.calls += 1
            machine.charge(Category.AR_TRAP, costs.vmexit_cycles)
        elif reason is VmExitReason.RET_TRAP:
            stats.rets += 1
            machine.charge(Category.AR_TRAP, costs.vmexit_cycles)
            expected = shadow.pop() if shadow else None
            if expected is not None and expected != exit_event.actual:
                stats.violations.append(
                    (exit_event.pc, expected, exit_event.actual)
                )
        elif reason is VmExitReason.PIO_IN:
            cpu.regs[exit_event.rd] = emulate_pio_in(machine, exit_event)
            machine.charge(Category.DEVICE,
                           costs.vmexit_cycles + costs.device_emulation_cycles)
        elif reason is VmExitReason.PIO_OUT:
            if emulate_pio_out(machine, exit_event):
                machine.stop("shutdown")
            machine.charge(Category.DEVICE,
                           costs.vmexit_cycles + costs.device_emulation_cycles)
        elif reason is VmExitReason.MMIO_READ:
            cpu.regs[exit_event.rd] = machine.mmio.read(exit_event.addr)
            machine.charge(Category.DEVICE,
                           costs.vmexit_cycles + costs.device_emulation_cycles)
        elif reason is VmExitReason.MMIO_WRITE:
            machine.mmio.write(exit_event.addr, exit_event.value)
            machine.charge(Category.DEVICE,
                           costs.vmexit_cycles + costs.device_emulation_cycles)
        elif reason in (VmExitReason.HLT, VmExitReason.TRIPLE_FAULT):
            machine.stop(reason.value)
    machine.timer.stop()
    stats.metrics = RunMetrics(
        label=f"{spec.label}+shadowstack",
        instructions=cpu.icount,
        guest_cycles=cpu.icount,
        account=machine.account,
    )
    return stats
