"""Comparison baselines from the paper's related-work discussion (§2.3, §9).

* :mod:`repro.baselines.shadow_stack` — precise hardware shadow stacks
  (SmashGuard/SRAS style): no false positives, but intrusive hardware and
  spill/fill exits; and the instrumentation-based software variant whose
  >100% overhead motivates offloading checks to replay;
* :mod:`repro.baselines.coarse_cfi` — relaxed CFI ("call-preceded target")
  checks that are cheap but bypassable;
* :mod:`repro.baselines.aslr` — address-space layout randomization, which a
  disclosure-equipped attacker circumvents while RnR-Safe still detects.
"""

from repro.baselines.shadow_stack import (
    HardwareShadowStackModel,
    ShadowStackStats,
    run_instrumented_shadow_stack,
)
from repro.baselines.coarse_cfi import (
    CoarseCfiPolicy,
    classify_chain_against_cfi,
)
from repro.baselines.aslr import (
    build_slid_workload,
    chain_survives_slide,
    disclose_kernel_slide,
)

__all__ = [
    "HardwareShadowStackModel",
    "ShadowStackStats",
    "run_instrumented_shadow_stack",
    "CoarseCfiPolicy",
    "classify_chain_against_cfi",
    "build_slid_workload",
    "chain_survives_slide",
    "disclose_kernel_slide",
]
