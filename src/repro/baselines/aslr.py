"""ASLR baseline (§9): randomize the kernel base, then break it.

ASLR complicates ROP by moving gadget addresses: a chain built against the
unslid image points at the wrong words and the exploit crashes instead of
escalating.  But §9's conclusion is that disclosure attacks re-enable ROP:
once the attacker learns the slide, the rebuilt chain works — and RnR-Safe
detects it either way, because any hijacked return still mispredicts.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.errors import AttackBuildError
from repro.hypervisor.machine import MachineSpec
from repro.kernel.layout import DEFAULT_LAYOUT, KernelLayout
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.suite import build_workload

#: Kernel-base slide granularity in words (page-aligned slides).
SLIDE_GRANULE = 256
#: Number of distinct slide slots (entropy of this toy ASLR).
SLIDE_SLOTS = 8


def slide_for_seed(seed: int) -> int:
    """The randomized slide chosen at 'boot' for a given seed."""
    return random.Random(seed ^ 0xA51A).randrange(SLIDE_SLOTS) * SLIDE_GRANULE


def slid_layout(slide: int,
                base_layout: KernelLayout = DEFAULT_LAYOUT) -> KernelLayout:
    """A layout with the kernel text moved up by ``slide`` words."""
    new_base = base_layout.kernel_code_base + slide
    if new_base + 2048 > base_layout.kdata_base:
        raise AttackBuildError(f"slide {slide} pushes the kernel into data")
    return replace(base_layout, kernel_code_base=new_base)


def build_slid_workload(profile: BenchmarkProfile, seed: int,
                        config: SimulationConfig = DEFAULT_CONFIG
                        ) -> tuple[MachineSpec, int]:
    """Build a workload whose kernel was loaded at a randomized base."""
    slide = slide_for_seed(seed)
    layout = slid_layout(slide)
    spec = build_workload(profile, config=config, layout=layout, seed=seed)
    return spec, slide


def disclose_kernel_slide(spec: MachineSpec) -> int:
    """An 'address disclosure' primitive: leak the slide from the victim.

    Stands in for the paper's §9 disclosure attacks (timing side channels,
    leaked pointers): the attacker learns where the kernel really sits.
    """
    return spec.kernel.layout.kernel_code_base - DEFAULT_LAYOUT.kernel_code_base


def chain_survives_slide(chain_words: tuple[int, ...], slide: int,
                         base_layout: KernelLayout = DEFAULT_LAYOUT) -> bool:
    """Whether a chain built pre-slide still points at valid kernel text.

    With page-granularity slides any nonzero slide moves every gadget, so a
    blind chain survives only the identity slide.
    """
    return slide == 0
