"""Checkpoint-seeded bisection: pin a state divergence to an instruction.

The aligned walk can only say *that* two executions silently diverged
inside a sentinel window — identical inputs, different digests.  This
module narrows the window to the exact instruction by binary search over
instruction counts, where each probe is a **partial replay seeded from
the run store's checkpoint chain** (the same restore-and-run-bounded
pattern :func:`repro.replay.epoch.replay_epoch` uses: COW page/block
reconstruction, then ``run(max_instructions=t)``), never a re-record and
never a replay from instruction zero when a usable checkpoint precedes
the probe point.

Each side of the comparison is a :class:`ReplayProbe` — an oracle for
"the machine state this run had at instruction ``t``".  The engine only
compares probes against each other, so any systematic stop-semantics
choice (probes stop *before* applying records due exactly at ``t``)
cancels out.  Probes at a checkpoint's exact icount re-seed from a
strictly earlier checkpoint for the same reason: a restored snapshot and
a replayed-to-``t`` machine could legally disagree about boundary-due
records, and the comparison must never manufacture a divergence.

``seed_limit`` models the forensic scenario: the diverging run's
checkpoints *inside* the window embody the corruption being hunted, so
its probe is pinned to seeds at or before the window start and replays
forward through the divergence point — which is also what keeps a
``perturb`` hook (tests: synthetic mid-window corruption; field use: a
reproducibly-divergent backend) on the replay path of every probe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.state import CpuState
from repro.errors import LogError
from repro.hypervisor.machine import MachineSpec
from repro.obs.telemetry import Telemetry
from repro.replay.checkpointing import (
    CheckpointingOptions,
    CheckpointingReplayer,
)
from repro.rnr.log import InputLog

#: Per-page word deltas reported before truncating (keeps reports small).
MAX_PAGE_DELTAS = 8


@dataclass(frozen=True)
class ProbeState:
    """Architectural state observed at one probe point."""

    icount: int
    #: ``GuestMachine.fast_digest`` — registers + every mapped page.
    digest: int
    cpu_state: CpuState
    #: Page snapshots (only captured for the final delta report).
    pages: dict | None = None


@dataclass(frozen=True)
class PageDelta:
    """One memory page that differs between the two states."""

    page: int
    #: Word offsets within the page that differ (first few).
    words: tuple[int, ...]
    values_a: tuple[int, ...]
    values_b: tuple[int, ...]
    differing: int

    def to_json(self) -> dict:
        return {
            "page": self.page,
            "words": list(self.words),
            "values_a": list(self.values_a),
            "values_b": list(self.values_b),
            "differing": self.differing,
        }


@dataclass(frozen=True)
class StateDelta:
    """The first-diverging architectural state, side by side."""

    registers: dict[str, tuple[int, int]]
    flags: dict[str, tuple]
    pages: tuple[PageDelta, ...]

    def to_json(self) -> dict:
        return {
            "registers": {name: list(pair)
                          for name, pair in sorted(self.registers.items())},
            "flags": {name: list(pair)
                      for name, pair in sorted(self.flags.items())},
            "pages": [delta.to_json() for delta in self.pages],
        }


@dataclass(frozen=True)
class BisectResult:
    """Outcome of a window bisection."""

    #: First instruction count at which the two runs' states differ.
    icount: int
    #: Largest probed instruction count where they still agreed.
    last_equal_icount: int
    delta: StateDelta
    probes: int
    #: Checkpoint icounts the probes were seeded from (0 = from scratch).
    seed_icounts: tuple[int, ...]
    instructions_replayed: int

    def to_json(self) -> dict:
        return {
            "icount": self.icount,
            "last_equal_icount": self.last_equal_icount,
            "delta": self.delta.to_json(),
            "probes": self.probes,
            "seed_icounts": list(self.seed_icounts),
            "instructions_replayed": self.instructions_replayed,
        }


class ReplayProbe:
    """A state-at-instruction oracle over one run.

    ``store`` is the run's checkpoint chain
    (:class:`~repro.replay.checkpoint.CheckpointStore`); probes seed
    from the latest *usable* checkpoint strictly before the probe point
    (and at or before ``seed_limit`` when set).  ``perturb`` is an
    optional ``fn(machine)`` applied when the replay crosses
    ``perturb_icount`` — the hook that makes a hypothetical diverging
    execution reproducible enough to bisect.
    """

    def __init__(self, spec: MachineSpec, log: InputLog, store=None,
                 seed_limit: int | None = None,
                 perturb=None, perturb_icount: int | None = None,
                 telemetry: Telemetry | None = None):
        if (perturb is None) != (perturb_icount is None):
            raise LogError(
                "perturb and perturb_icount must be set together")
        self.spec = spec
        self.log = log
        self.store = store
        self.seed_limit = seed_limit
        self.perturb = perturb
        self.perturb_icount = perturb_icount
        self.telemetry = telemetry
        self.probes = 0
        self.instructions_replayed = 0
        self.seed_icounts: list[int] = []
        self._cache: dict[int, ProbeState] = {}
        self._usable = self._usable_checkpoints()

    def _usable_checkpoints(self):
        """Checkpoints safe to restore mid-run, ascending by icount.

        Mirrors :func:`repro.replay.epoch.epoch_plan_from_resume`'s
        filter: a checkpoint whose pc sits on a kernel breakpoint was
        captured with a one-shot skip armed that ``CpuState`` cannot
        carry, so restoring there would re-fire the handler.
        """
        if self.store is None:
            return ()
        kernel = self.spec.kernel
        breakpoint_pcs = {kernel.switch_sp_pc, kernel.task_create_pc,
                          kernel.task_exit_pc}
        usable = []
        for checkpoint in self.store.all():
            if checkpoint.cpu_state.pc in breakpoint_pcs:
                continue
            if checkpoint.icount <= 0 or checkpoint.log_position <= 0:
                continue
            if checkpoint.log_position > len(self.log):
                continue
            if usable and checkpoint.icount <= usable[-1].icount:
                continue
            usable.append(checkpoint)
        return tuple(usable)

    def _seed_for(self, icount: int):
        """Latest usable checkpoint strictly before ``icount``."""
        limit = icount if self.seed_limit is None else min(
            icount, self.seed_limit + 1)
        best = None
        for checkpoint in self._usable:
            if checkpoint.icount < limit:
                best = checkpoint
            else:
                break
        return best

    def state_at(self, icount: int, want_pages: bool = False) -> ProbeState:
        """The run's architectural state after ``icount`` instructions."""
        cached = self._cache.get(icount)
        if cached is not None and (cached.pages is not None
                                   or not want_pages):
            return cached
        tel = self.telemetry
        token = (tel.begin("probe", "diff", icount, target=icount)
                 if tel is not None else None)
        replayer = CheckpointingReplayer(
            self.spec, self.log,
            CheckpointingOptions(period_s=None, verify_digest=False),
        )
        seed = self._seed_for(icount)
        start = 0
        if seed is not None:
            replayer.restore_checkpoint(seed, self.store)
            start = seed.icount
        self.seed_icounts.append(start)
        machine = replayer.machine
        if (self.perturb is not None
                and start <= self.perturb_icount <= icount):
            if self.perturb_icount > start:
                replayer.run(max_instructions=self.perturb_icount)
            self.perturb(machine)
            if icount > machine.cpu.icount:
                replayer.run(max_instructions=icount)
        elif icount > start:
            replayer.run(max_instructions=icount)
        self.probes += 1
        self.instructions_replayed += machine.cpu.icount - start
        state = ProbeState(
            icount=icount,
            digest=machine.fast_digest(),
            cpu_state=machine.cpu.capture_state(),
            pages=(machine.memory.snapshot_pages(
                machine.memory.mapped_pages()) if want_pages else None),
        )
        self._cache[icount] = state
        if tel is not None:
            tel.count("diff.probes")
            tel.count("diff.instructions_replayed",
                      machine.cpu.icount - start)
            tel.end(token, machine.cpu.icount, seed=start)
        return state


def state_delta(state_a: ProbeState, state_b: ProbeState) -> StateDelta:
    """Field-by-field register/flag/page comparison of two states."""
    cpu_a, cpu_b = state_a.cpu_state, state_b.cpu_state
    registers = {
        f"r{index}": (va, vb)
        for index, (va, vb) in enumerate(zip(cpu_a.regs, cpu_b.regs))
        if va != vb
    }
    if cpu_a.pc != cpu_b.pc:
        registers["pc"] = (cpu_a.pc, cpu_b.pc)
    flags = {
        name: (getattr(cpu_a, name), getattr(cpu_b, name))
        for name in ("zero", "negative", "user", "int_enabled", "halted",
                     "icount")
        if getattr(cpu_a, name) != getattr(cpu_b, name)
    }
    pages = []
    pages_a = state_a.pages or {}
    pages_b = state_b.pages or {}
    for index in sorted(set(pages_a) | set(pages_b)):
        page_a = pages_a.get(index, ())
        page_b = pages_b.get(index, ())
        if page_a == page_b:
            continue
        if len(page_a) != len(page_b):
            words = tuple(range(min(len(page_a), len(page_b),
                                    MAX_PAGE_DELTAS)))
            differing = max(len(page_a), len(page_b))
        else:
            offsets = [offset for offset, (wa, wb)
                       in enumerate(zip(page_a, page_b)) if wa != wb]
            words = tuple(offsets[:MAX_PAGE_DELTAS])
            differing = len(offsets)
        pages.append(PageDelta(
            page=index,
            words=words,
            values_a=tuple(page_a[word] if word < len(page_a) else 0
                           for word in words),
            values_b=tuple(page_b[word] if word < len(page_b) else 0
                           for word in words),
            differing=differing,
        ))
    return StateDelta(registers=registers, flags=flags,
                      pages=tuple(pages))


def bisect_window(probe_a: ReplayProbe, probe_b: ReplayProbe,
                  window: tuple[int, int],
                  telemetry: Telemetry | None = None,
                  ) -> BisectResult | None:
    """Binary-search ``window`` for the first diverging instruction.

    Returns ``None`` when the two runs agree at the window's end — no
    divergence to pin (the backend-parity gate).  Invariant maintained:
    states agree at ``lo``, disagree at ``hi``; each probe is a
    checkpoint-seeded partial replay, so the search costs
    O(log(window) · window-replay), never a full re-record.
    """
    lo, hi = window
    if hi < lo:
        raise LogError(f"bisection window {window} is inverted")
    tel = telemetry
    token = (tel.begin("bisect", "diff", lo, lo=lo, hi=hi)
             if tel is not None else None)
    probes_before = probe_a.probes + probe_b.probes
    try:
        if probe_a.state_at(hi).digest == probe_b.state_at(hi).digest:
            return None
        if probe_a.state_at(lo).digest != probe_b.state_at(lo).digest:
            # The window start itself already disagrees: the divergence
            # predates the window; report it at lo with no verified
            # agreement point.
            lo_equal = -1
            hi = lo
        else:
            lo_equal = lo
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if (probe_a.state_at(mid).digest
                        == probe_b.state_at(mid).digest):
                    lo = mid
                    lo_equal = mid
                else:
                    hi = mid
        final_a = probe_a.state_at(hi, want_pages=True)
        final_b = probe_b.state_at(hi, want_pages=True)
        return BisectResult(
            icount=hi,
            last_equal_icount=lo_equal,
            delta=state_delta(final_a, final_b),
            probes=probe_a.probes + probe_b.probes - probes_before,
            seed_icounts=tuple(sorted(set(probe_a.seed_icounts)
                                      | set(probe_b.seed_icounts))),
            instructions_replayed=(probe_a.instructions_replayed
                                   + probe_b.instructions_replayed),
        )
    finally:
        if tel is not None:
            tel.end(token, hi)


def checkpoint_digest(store, checkpoint) -> int:
    """Digest of a persisted checkpoint's reconstructed full state.

    Built from the COW-reconstructed page overlay plus the processor
    state — comparable *only* against other values from this function
    (both sides of a chain comparison), like ``fast_digest``.
    """
    import zlib

    cpu = checkpoint.cpu_state
    header = (
        ",".join(str(reg) for reg in cpu.regs)
        + f";{cpu.pc};{cpu.user};{cpu.int_enabled};{cpu.icount}"
    ).encode()
    crc = zlib.crc32(header)
    pages = store.reconstruct_pages(checkpoint)
    for index in sorted(pages):
        crc = zlib.crc32(repr(pages[index]).encode(), crc)
    return crc


def chain_divergence(store_a, store_b) -> dict | None:
    """Compare two persisted checkpoint chains at their common icounts.

    Returns ``None`` when every icount-aligned pair reconstructs to the
    same state; otherwise a JSON-ready summary with the evidence window
    ``(last agreeing checkpoint icount, first disagreeing one)`` — the
    checkpoint-granular answer available when the diverging run's
    execution cannot be reproduced, only its persisted snapshots read.
    """
    by_icount_a = {c.icount: c for c in store_a.all()}
    by_icount_b = {c.icount: c for c in store_b.all()}
    common = sorted(set(by_icount_a) & set(by_icount_b))
    last_equal = 0
    for icount in common:
        if (checkpoint_digest(store_a, by_icount_a[icount])
                != checkpoint_digest(store_b, by_icount_b[icount])):
            return {
                "window": [last_equal, icount],
                "first_diverged_checkpoint": icount,
                "last_equal_checkpoint": last_equal,
                "compared": len(common),
            }
        last_equal = icount
    return None
