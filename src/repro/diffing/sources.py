"""Run sources: the things ``repro diff`` can compare.

A *run* is either a session file (``repro record --out``, flat v1 or
framed v2 body) or a durable run-store directory (``--store``: CRC'd
manifest + v3 frame journal + checkpoint chain).  :class:`RunSource`
normalizes both behind one interface:

* ``iter_records()`` streams the record sequence in bounded memory —
  frames are read chunk-by-chunk from disk, CRC/sequence-validated
  through :class:`~repro.rnr.log.StreamingLogReader` (``retain_records=
  False``), decoded, yielded, and dropped, so the aligned walk never
  holds a whole multi-gigabyte journal;
* ``materialize()`` loads the full log — only the bisection engine calls
  it, and a bisection needs the log resident to replay from anyway;
* ``resume()`` exposes a store's validated checkpoint chain (sessions
  return ``None``).

Journal damage follows ``recover_run``'s semantics: the valid frame
prefix is the run, the dropped tail becomes a health note carried into
the diff report (the same facts ``repro fsck --json`` reports).
"""

from __future__ import annotations

import pathlib

from repro.errors import LogCorruptionError, LogError
from repro.rnr.log import InputLog, StreamingLogReader
from repro.rnr.serialize import parse_frame_header, parse_record
from repro.rnr.session import SessionManifest, load_session
from repro.store.runstore import JOURNAL_NAME, MANIFEST_NAME, decode_manifest

#: Bytes read from disk per chunk while streaming.
READ_CHUNK = 1 << 20


def _iter_frames(path: pathlib.Path, notes: list[str], strict: bool,
                 start: int = 0):
    """Yield complete frame byte-slices from a file, chunk by chunk.

    ``strict=False`` (run-store journals) cuts a torn or corrupt tail at
    the last whole frame and appends a note — byte-for-byte the
    ``recover_run`` policy.  ``strict=True`` (framed session bodies)
    raises instead: session files are written atomically, so damage is
    damage.
    """
    buffer = bytearray()
    with path.open("rb") as handle:
        handle.seek(start)
        eof = False
        frames = 0
        while True:
            # Top up until the buffer holds at least one whole frame.
            while not eof:
                try:
                    header, payload_start = parse_frame_header(buffer, 0)
                except LogError:
                    pass
                else:
                    if payload_start + header.payload_length <= len(buffer):
                        break
                chunk = handle.read(READ_CHUNK)
                if not chunk:
                    eof = True
                    break
                buffer.extend(chunk)
            if eof and not buffer:
                return
            try:
                header, payload_start = parse_frame_header(buffer, 0)
                end = payload_start + header.payload_length
                if end > len(buffer):
                    raise LogCorruptionError(
                        f"truncated frame: payload needs "
                        f"{header.payload_length} bytes, only "
                        f"{len(buffer) - payload_start} available")
            except LogError as exc:
                if strict:
                    raise
                notes.append(
                    f"journal: dropped {len(buffer)} byte torn tail "
                    f"after frame {frames} ({exc})")
                return
            yield bytes(buffer[:end])
            del buffer[:end]
            frames += 1


def _stream_frames(path: pathlib.Path, notes: list[str], strict: bool,
                   start: int = 0):
    """Decode a frame file into records, validating CRCs + sequence."""
    reader = StreamingLogReader(retain_records=False)
    for frame in _iter_frames(path, notes, strict, start):
        try:
            records = reader.feed(frame)
        except LogCorruptionError as exc:
            if strict:
                raise
            # A payload CRC failure or sequence gap mid-file: nothing
            # after it can be trusted (recover_run's rule).
            notes.append(f"journal: dropped frames from "
                         f"{len(reader.frames)} onward ({exc})")
            return
        yield from records


def _stream_flat(data: bytes, offset: int):
    """Decode a flat (v1) record stream without materializing a log."""
    while offset < len(data):
        record, offset = parse_record(data, offset)
        yield record


class RunSource:
    """One comparable run: where it lives and how to read it."""

    def __init__(self, path: str, kind: str, session: SessionManifest,
                 label: str):
        self.path = path
        self.kind = kind
        self.session = session
        self.label = label
        #: Health notes accumulated while reading (journal damage etc.).
        self.notes: list[str] = []
        self._resume = None
        self._log: InputLog | None = None

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, path: str | pathlib.Path) -> "RunSource":
        """Open a session file or a run-store directory (auto-detected)."""
        target = pathlib.Path(path)
        if target.is_dir() or (target / MANIFEST_NAME).exists():
            raw = None
            try:
                raw = (target / MANIFEST_NAME).read_bytes()
            except OSError:
                pass
            if raw is None:
                raise LogError(
                    f"{target} is a directory without a run-store "
                    f"manifest — not a session file or run store")
            body = decode_manifest(raw, str(target / MANIFEST_NAME))
            session = SessionManifest.from_json(body["session"])
            source = cls(str(target), "store", session,
                         label=f"store:{target.name}")
            return source
        manifest, _ = _read_session_header(target)
        return cls(str(target), "session", manifest,
                   label=f"session:{target.name}")

    # ------------------------------------------------------------------
    # record access
    # ------------------------------------------------------------------

    def iter_records(self):
        """Stream the run's records in bounded memory."""
        if self._log is not None:
            return iter(self._log.records())
        if self.kind == "store":
            return _stream_frames(
                pathlib.Path(self.path) / JOURNAL_NAME, self.notes,
                strict=False)
        return self._iter_session_records()

    def _iter_session_records(self):
        target = pathlib.Path(self.path)
        _, header = _read_session_header(target)
        body_offset = 4 + header["length"]
        if header["version"] == 2:
            # Framed body: stream it like a journal, but strictly.
            return _stream_frames(target, self.notes, strict=True,
                                  start=body_offset)
        data = target.read_bytes()
        return _stream_flat(data, body_offset)

    def materialize(self) -> InputLog:
        """The full log, resident (bisection needs it to replay)."""
        if self._log is None:
            if self.kind == "store":
                self._log = self.resume().log
            else:
                _, self._log = load_session(self.path)
        return self._log

    def resume(self):
        """The store's validated resume point (``None`` for sessions)."""
        if self.kind != "store":
            return None
        if self._resume is None:
            from repro.store.recover import recover_run

            self._resume = recover_run(self.path)
        return self._resume

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """JSON-ready descriptor for the diff report."""
        session = self.session
        info = {
            "path": self.path,
            "kind": self.kind,
            "benchmark": session.benchmark,
            "seed": session.seed,
            "attack": session.attack,
            "max_instructions": session.max_instructions,
            "exec_backend": session.exec_backend,
            "notes": list(self.notes),
        }
        if self._resume is not None:
            info["checkpoints"] = len(self._resume.chain_entries)
            info["recording_complete"] = self._resume.recording_complete
        return info


def _read_session_header(path: pathlib.Path) -> tuple[SessionManifest, dict]:
    """Parse just the session header (4-byte length + JSON manifest)."""
    import json

    try:
        handle = path.open("rb")
    except OSError as exc:
        raise LogError(f"cannot open {path}: {exc}") from None
    with handle:
        prefix = handle.read(4)
        if len(prefix) < 4:
            raise LogError(f"{path} is not a session file")
        length = int.from_bytes(prefix, "big")
        raw = handle.read(length)
        if len(raw) < length:
            raise LogError(f"{path} is truncated")
    try:
        header = json.loads(raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise LogError(
            f"{path} has an unreadable session header: {exc}") from None
    manifest = SessionManifest.from_json(header)
    return manifest, {"length": length,
                      "version": header.get("version", 1)}
