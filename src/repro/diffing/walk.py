"""The O(n) aligned walk: first semantic divergence of two record streams.

Both inputs are plain record iterators (a materialized log, a streaming
journal reader, a framed session body — the walk does not care), consumed
in lockstep and never buffered beyond a small context ring, so diffing a
multi-gigabyte journal holds only a handful of records at a time.

Records travel on two tracks:

* **semantic** records are the recorded inputs (rdtsc/rdrand/PIO/MMIO
  values, interrupts, DMA landings, detector markers).  The first pair
  that compares unequal after ignore-rule masking is an *input
  divergence*: the two runs were fed different nondeterminism, and the
  earlier record pins exactly where.
* **attestation** records (sentinels, the End digest) are derived from
  machine state.  When every semantic record matched but an attestation
  digest does not, the recorded inputs were identical and the
  *executions* silently diverged — a *state divergence*, bracketed to the
  window since the last matching attestation, which is what the
  checkpoint-seeded bisection engine (``repro.diffing.bisect``) narrows
  to an exact instruction.

Because the streams are compared strictly in order and a divergence stops
the walk, the reported divergence is always the earliest true mismatch —
an ignore rule can only remove records from comparison, never reorder it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import zip_longest

from repro.rnr.records import (
    Record,
    is_async_record,
    is_attestation_record,
    record_kind,
    record_payload,
)

from repro.diffing.ignore import IgnoreRuleSet

#: Records of surrounding context captured on each side of a divergence.
DEFAULT_CONTEXT = 3


@dataclass(frozen=True)
class Divergence:
    """The first point where the two runs disagree."""

    #: ``"input"`` (recorded nondeterminism differs), ``"state"``
    #: (identical inputs, attestation digests disagree), or ``"length"``
    #: (one stream is a strict prefix of the other).
    kind: str
    #: Instruction count in effect at the diverging record (the record's
    #: own icount for asynchronous records, the carried icount context
    #: for synchronous ones).
    icount: int
    position_a: int | None
    position_b: int | None
    payload_a: dict | None
    payload_b: dict | None
    #: The raw records immediately before the divergence, per side.
    context_a: tuple[dict, ...]
    context_b: tuple[dict, ...]
    #: ``(last agreed icount, first disagreeing icount)`` for state
    #: divergences — the bisection window.  ``None`` otherwise.
    window: tuple[int, int] | None
    detail: str

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "icount": self.icount,
            "position_a": self.position_a,
            "position_b": self.position_b,
            "payload_a": self.payload_a,
            "payload_b": self.payload_b,
            "context_a": list(self.context_a),
            "context_b": list(self.context_b),
            "window": list(self.window) if self.window else None,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class RecordView:
    """One record as the walk sees it: place, context, masked form."""

    position: int
    icount: int
    record: Record
    compare: Record


@dataclass
class WalkResult:
    """What the aligned walk established."""

    divergence: Divergence | None
    records_a: int
    records_b: int
    #: Tokens (post-ignore records) compared equal or unequal.
    compared: int
    #: Attestation records that matched (verified agreement points).
    attestations_matched: int
    #: Icount of the last matching attestation (0 = none matched).
    last_attested_icount: int
    rule_hits: dict[str, int]


class _Side:
    """Per-stream walk state: position, icount context, context ring."""

    def __init__(self, records, rules: IgnoreRuleSet, context: int):
        self._records = records
        self._rules = rules
        self.position = 0
        self.icount = 0
        self.ring: deque[dict] = deque(maxlen=max(context, 0))

    def tokens(self):
        for record in self._records:
            if is_async_record(record):
                self.icount = record.icount
            view = RecordView(self.position, self.icount, record,
                              self._rules.filter(record))
            self.position += 1
            if view.compare is None:
                self._remember(view)
                continue
            yield view
            self._remember(view)

    def _remember(self, view: RecordView):
        if self.ring.maxlen:
            self.ring.append({"position": view.position,
                              "icount": view.icount,
                              **record_payload(view.record)})

    def context(self) -> tuple[dict, ...]:
        """The ring *excluding* the just-remembered diverging record."""
        return tuple(self.ring)


def walk_aligned(records_a, records_b,
                 rules: IgnoreRuleSet | None = None,
                 context: int = DEFAULT_CONTEXT) -> WalkResult:
    """Compare two record streams; stop at the first divergence.

    ``rules`` applies to both sides (hit counts aggregate).  The walk is
    O(min(len(a), len(b))) record comparisons and O(context) memory on
    top of whatever the iterators themselves hold.
    """
    rules = rules if rules is not None else IgnoreRuleSet()
    side_a = _Side(records_a, rules, context)
    side_b = _Side(records_b, rules, context)
    compared = 0
    attestations_matched = 0
    last_attested = 0
    divergence = None

    for va, vb in zip_longest(side_a.tokens(), side_b.tokens()):
        if va is None or vb is None:
            present = vb if va is None else va
            missing_side = "A" if va is None else "B"
            divergence = Divergence(
                kind="length",
                icount=present.icount,
                position_a=None if va is None else va.position,
                position_b=None if vb is None else vb.position,
                payload_a=(None if va is None
                           else record_payload(va.record)),
                payload_b=(None if vb is None
                           else record_payload(vb.record)),
                context_a=side_a.context(),
                context_b=side_b.context(),
                window=None,
                detail=f"run {missing_side} ends after "
                       f"{compared} compared records; the other run "
                       f"continues with {record_kind(present.record)} "
                       f"at icount {present.icount}",
            )
            break
        compared += 1
        if va.compare == vb.compare:
            if is_attestation_record(va.record):
                attestations_matched += 1
                last_attested = va.icount
            continue
        both_attest = (is_attestation_record(va.record)
                       and type(va.record) is type(vb.record))
        if both_attest:
            # Same attestation record, different digest (or the machines
            # reached the k-th emission point at different icounts):
            # the inputs up to here were identical, so the executions
            # themselves diverged somewhere since the last verified
            # agreement point.
            window = (last_attested, min(va.icount, vb.icount))
            divergence = Divergence(
                kind="state",
                icount=min(va.icount, vb.icount),
                position_a=va.position,
                position_b=vb.position,
                payload_a=record_payload(va.record),
                payload_b=record_payload(vb.record),
                context_a=side_a.context(),
                context_b=side_b.context(),
                window=window,
                detail=f"{record_kind(va.record)} digests disagree with "
                       f"identical inputs up to this point — silent "
                       f"execution divergence inside icount window "
                       f"{window}",
            )
        else:
            divergence = Divergence(
                kind="input",
                icount=va.icount,
                position_a=va.position,
                position_b=vb.position,
                payload_a=record_payload(va.record),
                payload_b=record_payload(vb.record),
                context_a=side_a.context(),
                context_b=side_b.context(),
                window=None,
                detail=f"record {va.position} differs: "
                       f"{record_kind(va.record)} vs "
                       f"{record_kind(vb.record)} at icount {va.icount}",
            )
        break

    return WalkResult(
        divergence=divergence,
        records_a=side_a.position,
        records_b=side_b.position,
        compared=compared,
        attestations_matched=attestations_matched,
        last_attested_icount=last_attested,
        rule_hits=dict(rules.hits),
    )
