"""The machine- and human-readable verdict of a run diff.

:class:`DiffReport` is the single artifact ``repro diff`` produces: a
JSON document with stable key ordering (the run store's canonical-JSON
idiom, so two identical verdicts are byte-identical) and a human
rendering whose **last line is always** ``REPLAY PARITY: TRUE`` or
``REPLAY PARITY: FALSE`` — the line CI greps.

Exit-code contract (see ``docs/FORENSICS.md``):

* ``0`` — parity: the runs are semantically identical under the active
  ignore rules.
* ``1`` — divergence found (input, state, length, or manifest mismatch).
* ``2`` — a run could not be read at all (missing path, corrupt
  manifest, undecodable session header).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.diffing.walk import Divergence

#: Bumped when the report's JSON shape changes incompatibly.
REPORT_SCHEMA = 1

EXIT_PARITY = 0
EXIT_DIVERGED = 1
EXIT_ERROR = 2

#: Verdict strings, in increasing order of badness.
VERDICT_IDENTICAL = "identical"
VERDICT_INPUT = "input-divergence"
VERDICT_STATE = "state-divergence"
VERDICT_LENGTH = "length-mismatch"
VERDICT_MANIFEST = "manifest-mismatch"

_PARITY_VERDICTS = frozenset({VERDICT_IDENTICAL})


@dataclass
class DiffReport:
    """Everything ``repro diff`` established about two runs."""

    verdict: str
    run_a: dict
    run_b: dict
    ignore_rules: tuple[str, ...] = ()
    rule_hits: dict = field(default_factory=dict)
    records_a: int = 0
    records_b: int = 0
    compared: int = 0
    attestations_matched: int = 0
    divergence: Divergence | None = None
    #: ``BisectResult.to_json()`` when a state divergence was pinned.
    bisection: dict | None = None
    notes: tuple[str, ...] = ()

    @property
    def parity(self) -> bool:
        return self.verdict in _PARITY_VERDICTS

    @property
    def exit_code(self) -> int:
        return EXIT_PARITY if self.parity else EXIT_DIVERGED

    def to_json(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "verdict": self.verdict,
            "parity": self.parity,
            "run_a": self.run_a,
            "run_b": self.run_b,
            "ignore_rules": list(self.ignore_rules),
            "rule_hits": dict(self.rule_hits),
            "records_a": self.records_a,
            "records_b": self.records_b,
            "compared": self.compared,
            "attestations_matched": self.attestations_matched,
            "divergence": (self.divergence.to_json()
                           if self.divergence is not None else None),
            "bisection": self.bisection,
            "notes": list(self.notes),
        }

    def canonical_json(self) -> str:
        """Stable-key compact JSON (the run store's canonical idiom)."""
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))

    # ------------------------------------------------------------------
    # human rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        """Multi-line human report; last line is the parity verdict."""
        lines = [
            f"run A: {self.run_a.get('path')} "
            f"[{self.run_a.get('kind')}, "
            f"{self.run_a.get('benchmark')}/seed="
            f"{self.run_a.get('seed')}]",
            f"run B: {self.run_b.get('path')} "
            f"[{self.run_b.get('kind')}, "
            f"{self.run_b.get('benchmark')}/seed="
            f"{self.run_b.get('seed')}]",
            f"compared {self.compared} records "
            f"(A: {self.records_a}, B: {self.records_b}; "
            f"{self.attestations_matched} attestations matched)",
        ]
        if self.ignore_rules:
            hits = ", ".join(f"{name}={self.rule_hits.get(name, 0)}"
                             for name in self.ignore_rules)
            lines.append(f"ignore rules: {hits}")
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.divergence is not None:
            lines.extend(self._render_divergence(self.divergence))
        if self.bisection is not None:
            lines.extend(self._render_bisection(self.bisection))
        if self.verdict == VERDICT_MANIFEST:
            lines.append("verdict: the runs describe different "
                         "workloads — record streams not compared")
        lines.append(f"REPLAY PARITY: {'TRUE' if self.parity else 'FALSE'}")
        return "\n".join(lines)

    @staticmethod
    def _render_divergence(div: Divergence) -> list[str]:
        lines = [f"first divergence: kind={div.kind} "
                 f"icount={div.icount} "
                 f"position A={div.position_a} B={div.position_b}",
                 f"  {div.detail}"]
        for label, payload in (("A", div.payload_a), ("B", div.payload_b)):
            if payload is not None:
                lines.append(f"  {label}: {json.dumps(payload, sort_keys=True)}")
        for label, context in (("A", div.context_a), ("B", div.context_b)):
            if context:
                lines.append(f"  context {label} (before divergence):")
                for entry in context:
                    lines.append(
                        f"    {json.dumps(entry, sort_keys=True)}")
        if div.window is not None:
            lines.append(f"  bisection window: icount "
                         f"({div.window[0]}, {div.window[1]}]")
        return lines

    @staticmethod
    def _render_bisection(bisection: dict) -> list[str]:
        lines = [f"bisection: first diverging state at icount "
                 f"{bisection['icount']} "
                 f"(last agreement at {bisection['last_equal_icount']}; "
                 f"{bisection['probes']} checkpoint-seeded probes, "
                 f"{bisection['instructions_replayed']} instructions "
                 f"replayed)"]
        delta = bisection.get("delta") or {}
        for name, pair in sorted((delta.get("registers") or {}).items()):
            lines.append(f"  {name}: A={pair[0]} B={pair[1]}")
        for name, pair in sorted((delta.get("flags") or {}).items()):
            lines.append(f"  {name}: A={pair[0]} B={pair[1]}")
        for page in delta.get("pages") or ():
            lines.append(
                f"  page {page['page']}: {page['differing']} words "
                f"differ, first at offsets {page['words']}")
        return lines
