"""Run-diff and divergence forensics (``repro diff``).

Given two recorded runs — session files or durable run stores — find
the first *semantic* divergence between them: an aligned O(n) walk over
the record streams for input divergences, and a checkpoint-seeded
bisection of the sentinel window for silent state divergences.  The
result is a :class:`~repro.diffing.report.DiffReport` whose rendering
ends in the CI-greppable ``REPLAY PARITY: TRUE``/``FALSE`` line.
"""

from repro.diffing.bisect import (
    BisectResult,
    ProbeState,
    ReplayProbe,
    StateDelta,
    bisect_window,
    chain_divergence,
    state_delta,
)
from repro.diffing.engine import diff_logs, diff_runs
from repro.diffing.ignore import (
    BUILTIN_RULES,
    IgnoreRule,
    IgnoreRuleSet,
    resolve_rules,
)
from repro.diffing.report import (
    EXIT_DIVERGED,
    EXIT_ERROR,
    EXIT_PARITY,
    DiffReport,
)
from repro.diffing.sources import RunSource
from repro.diffing.walk import (
    DEFAULT_CONTEXT,
    Divergence,
    WalkResult,
    walk_aligned,
)

__all__ = [
    "BUILTIN_RULES",
    "BisectResult",
    "DEFAULT_CONTEXT",
    "DiffReport",
    "Divergence",
    "EXIT_DIVERGED",
    "EXIT_ERROR",
    "EXIT_PARITY",
    "IgnoreRule",
    "IgnoreRuleSet",
    "ProbeState",
    "ReplayProbe",
    "RunSource",
    "StateDelta",
    "WalkResult",
    "bisect_window",
    "chain_divergence",
    "diff_logs",
    "diff_runs",
    "resolve_rules",
    "state_delta",
    "walk_aligned",
]
