"""Pluggable ignore rules: what the run differ treats as non-semantic.

Two recordings can legitimately disagree on metadata that does not feed
the replayed execution's semantics — wall-clock reads when the runs come
from different environments, attestation digests when only one side was
recorded with sentinels, detector markers when detector configs differ.
An :class:`IgnoreRule` names one such class of difference and says how to
neutralize it: *skip* a record type entirely, or *normalize* a record by
masking the non-semantic field before comparison.

The rules are deliberately conservative by default: ``repro diff`` runs
with an **empty** rule set, so every byte-level difference in the record
stream is a reported divergence.  Rules are opted into by name
(``--ignore timestamps``), and the report lists which rules were active
and how many records each one touched — an ignore rule can hide a
difference, but never silently.

Frame boundaries need no rule: the aligned walk compares *records*, so
two logs chunked into different frame sizes (or one framed v3, one flat
v1) compare equal whenever their record streams do.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.errors import LogError
from repro.rnr.records import (
    AlarmRecord,
    EndRecord,
    EvictRecord,
    RdrandRecord,
    RdtscRecord,
    Record,
    SentinelRecord,
)


@dataclass(frozen=True)
class IgnoreRule:
    """One named class of non-semantic difference.

    ``skip`` drops matching records from the comparison entirely;
    ``normalize`` maps a matching record to a masked stand-in (the
    original record is still what reports show).  A rule may use either
    or both mechanisms.
    """

    name: str
    description: str
    #: Record types removed from the walk before comparison.
    skip: tuple[type, ...] = ()
    #: Applied to every surviving record; returns the record to compare.
    normalize: Callable[[Record], Record] | None = None

    def apply(self, record: Record) -> Record | None:
        """``None`` to drop the record, else the record to compare."""
        if self.skip and isinstance(record, self.skip):
            return None
        if self.normalize is not None:
            return self.normalize(record)
        return record


def _mask_rdtsc(record: Record) -> Record:
    if isinstance(record, RdtscRecord):
        return RdtscRecord(value=0)
    return record


def _mask_rdrand(record: Record) -> Record:
    if isinstance(record, RdrandRecord):
        return RdrandRecord(value=0)
    return record


def _mask_end_digest(record: Record) -> Record:
    if isinstance(record, EndRecord) and record.digest:
        return replace(record, digest=0)
    return record


#: The built-in rule vocabulary, by name (the ``--ignore`` choices).
BUILTIN_RULES: dict[str, IgnoreRule] = {
    rule.name: rule
    for rule in (
        IgnoreRule(
            name="timestamps",
            description="mask rdtsc values (wall-clock reads are "
                        "environment, not input, across recordings)",
            normalize=_mask_rdtsc,
        ),
        IgnoreRule(
            name="entropy",
            description="mask rdrand values (hardware entropy differs "
                        "across recordings by design)",
            normalize=_mask_rdrand,
        ),
        IgnoreRule(
            name="sentinels",
            description="drop divergence sentinels (heartbeat attestation "
                        "records, e.g. when only one side recorded them)",
            skip=(SentinelRecord,),
        ),
        IgnoreRule(
            name="end-digest",
            description="mask the End record's final state digest "
                        "(execution length still compares)",
            normalize=_mask_end_digest,
        ),
        IgnoreRule(
            name="markers",
            description="drop detector telemetry markers (evict + alarm "
                        "records, e.g. across detector configurations)",
            skip=(EvictRecord, AlarmRecord),
        ),
    )
}


class IgnoreRuleSet:
    """An ordered collection of rules applied to every record.

    Tracks per-rule hit counts so the diff report can show exactly how
    much each rule hid (``hits`` maps rule name to records skipped or
    masked).
    """

    def __init__(self, rules: tuple[IgnoreRule, ...] = ()):
        self.rules = tuple(rules)
        self.hits: dict[str, int] = {rule.name: 0 for rule in self.rules}

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(rule.name for rule in self.rules)

    def filter(self, record: Record) -> Record | None:
        """Apply every rule in order; ``None`` means the record is
        excluded from comparison."""
        current = record
        for rule in self.rules:
            result = rule.apply(current)
            if result is None:
                self.hits[rule.name] += 1
                return None
            if result is not current:
                self.hits[rule.name] += 1
            current = result
        return current


def resolve_rules(names) -> IgnoreRuleSet:
    """Build a rule set from rule names; unknown names fail loudly."""
    rules = []
    for name in names:
        rule = BUILTIN_RULES.get(name)
        if rule is None:
            known = ", ".join(sorted(BUILTIN_RULES))
            raise LogError(
                f"unknown ignore rule {name!r} (known rules: {known})")
        rules.append(rule)
    return IgnoreRuleSet(tuple(rules))
