"""The run-diff engine: orchestrates walk → bisection → verdict.

``diff_runs`` is the whole ``repro diff`` pipeline:

1. Compare the two runs' session manifests (everything but the
   execution backend, which is a performance knob, not semantics).
   Different workloads → ``manifest-mismatch``; their record streams
   would disagree trivially and uninformatively.
2. Stream both record sequences through the O(n) aligned walk under the
   active ignore rules.  An *input* divergence or *length* mismatch is
   the verdict — the walk already pinned the first differing record.
3. A *state* divergence (identical inputs, attestation digests
   disagree) triggers the checkpoint-seeded bisection: partial replays
   of both runs from their stores' checkpoint chains, binary-searching
   the sentinel window to the exact diverging instruction.  When the
   divergence is not reproducible by replay (both replays of identical
   inputs agree — the recording environment itself misbehaved), the
   persisted checkpoint chains are compared instead for
   checkpoint-granular evidence.
"""

from __future__ import annotations

from repro.errors import CheckpointError, LogError, ReplayDivergenceError
from repro.obs.telemetry import Telemetry

from repro.diffing.bisect import ReplayProbe, bisect_window, chain_divergence
from repro.diffing.ignore import IgnoreRuleSet
from repro.diffing.report import (
    DiffReport,
    VERDICT_IDENTICAL,
    VERDICT_INPUT,
    VERDICT_LENGTH,
    VERDICT_MANIFEST,
    VERDICT_STATE,
)
from repro.diffing.sources import RunSource
from repro.diffing.walk import DEFAULT_CONTEXT, WalkResult, walk_aligned

_VERDICT_BY_KIND = {
    "input": VERDICT_INPUT,
    "state": VERDICT_STATE,
    "length": VERDICT_LENGTH,
}


def diff_logs(records_a, records_b, rules: IgnoreRuleSet | None = None,
              context: int = DEFAULT_CONTEXT) -> WalkResult:
    """Aligned walk over two bare record iterables (no run framing).

    The building block tests drive directly; ``diff_runs`` adds source
    handling, bisection, and the report around the same walk.
    """
    return walk_aligned(records_a, records_b, rules=rules, context=context)


def _manifests_compatible(source_a: RunSource, source_b: RunSource) -> bool:
    """Same workload?  The execution backend is excluded deliberately:
    recordings of one workload under ``interp`` and ``trace`` are exactly
    the pairs backend-parity diffs exist to compare."""
    a, b = source_a.session, source_b.session
    return (a.benchmark, a.seed, a.attack, a.max_instructions) == \
           (b.benchmark, b.seed, b.attack, b.max_instructions)


def _checkpoint_store(source: RunSource):
    """The source's durable checkpoint chain, if it has one."""
    resume = source.resume()
    if resume is None or resume.cr_state is None:
        return None
    store = resume.cr_state.store
    return store if store is not None and len(store) else None


def _bisect_state_divergence(report: DiffReport, source_a: RunSource,
                             source_b: RunSource, window: tuple[int, int],
                             telemetry: Telemetry | None) -> None:
    """Pin a state divergence; mutates ``report`` with the findings."""
    notes = []
    try:
        spec_a = source_a.session.build_spec()
        spec_b = source_b.session.build_spec()
        log_a = source_a.materialize()
        log_b = source_b.materialize()
        store_a = _checkpoint_store(source_a)
        store_b = _checkpoint_store(source_b)
        if store_a is None:
            notes.append("run A has no checkpoint chain; its probes "
                         "replay from instruction zero")
        if store_b is None:
            notes.append("run B has no checkpoint chain; its probes "
                         "replay from instruction zero")
        probe_a = ReplayProbe(spec_a, log_a, store=store_a,
                              telemetry=telemetry)
        # B's checkpoints inside the window may already embody the
        # corruption being hunted — seed only from before the window.
        probe_b = ReplayProbe(spec_b, log_b, store=store_b,
                              seed_limit=window[0], telemetry=telemetry)
        result = bisect_window(probe_a, probe_b, window,
                               telemetry=telemetry)
    except (LogError, ReplayDivergenceError, CheckpointError) as exc:
        notes.append(f"bisection failed: {exc}")
        report.notes = report.notes + tuple(notes)
        return
    if result is not None:
        report.bisection = result.to_json()
        report.notes = report.notes + tuple(notes)
        return
    # Both partial replays of the identical inputs agree: the divergence
    # happened in the original recording environment, not in anything a
    # replay reproduces.  Fall back to comparing the persisted chains.
    notes.append("replays of both runs agree — the recorded attestation "
                 "mismatch is not replay-reproducible (recording-side "
                 "fault); comparing persisted checkpoint chains instead")
    if store_a is not None and store_b is not None:
        chain = chain_divergence(store_a, store_b)
        if chain is not None:
            report.bisection = {"checkpoint_chain": chain}
            notes.append(
                f"checkpoint chains diverge at icount "
                f"{chain['first_diverged_checkpoint']} (evidence window "
                f"{chain['window']})")
        else:
            notes.append("persisted checkpoint chains agree at every "
                         "common icount")
    report.notes = report.notes + tuple(notes)


def diff_runs(source_a: RunSource, source_b: RunSource,
              rules: IgnoreRuleSet | None = None,
              context: int = DEFAULT_CONTEXT,
              bisect: bool = True,
              telemetry: Telemetry | None = None) -> DiffReport:
    """Compare two runs end to end and return the verdict."""
    rules = rules if rules is not None else IgnoreRuleSet()
    tel = telemetry

    if not _manifests_compatible(source_a, source_b):
        return DiffReport(
            verdict=VERDICT_MANIFEST,
            run_a=source_a.describe(),
            run_b=source_b.describe(),
            ignore_rules=rules.names,
            notes=("session manifests disagree on "
                   "benchmark/seed/attack/max_instructions — these are "
                   "different workloads, not divergent runs",),
        )

    token = (tel.begin("walk", "diff", 0) if tel is not None else None)
    walk = walk_aligned(source_a.iter_records(), source_b.iter_records(),
                        rules=rules, context=context)
    if tel is not None:
        tel.count("diff.records_compared", walk.compared)
        tel.end(token, walk.compared)

    divergence = walk.divergence
    verdict = (VERDICT_IDENTICAL if divergence is None
               else _VERDICT_BY_KIND[divergence.kind])
    report = DiffReport(
        verdict=verdict,
        run_a=source_a.describe(),
        run_b=source_b.describe(),
        ignore_rules=rules.names,
        rule_hits=walk.rule_hits,
        records_a=walk.records_a,
        records_b=walk.records_b,
        compared=walk.compared,
        attestations_matched=walk.attestations_matched,
        divergence=divergence,
        notes=tuple(f"A: {note}" for note in source_a.notes)
              + tuple(f"B: {note}" for note in source_b.notes),
    )

    if (bisect and divergence is not None and divergence.kind == "state"
            and divergence.window is not None):
        _bisect_state_divergence(report, source_a, source_b,
                                 divergence.window, telemetry)

    if tel is not None:
        tel.count_tagged("diff.verdicts", report.verdict)
    # describe() may have learned checkpoint counts during bisection.
    report.run_a = source_a.describe()
    report.run_b = source_b.describe()
    return report
