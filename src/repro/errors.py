"""Exception hierarchy for the RnR-Safe simulation.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.  Guest-visible
architectural events (faults, VM exits) are *not* exceptions — they are
modelled as data (see :mod:`repro.cpu.faults`).  Exceptions here signal misuse
of the library or corruption of simulator state.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AssemblerError(ReproError):
    """Raised when guest assembly cannot be translated into machine words."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class DecodeError(ReproError):
    """Raised when a machine word does not decode to a valid instruction."""


class MemoryError_(ReproError):
    """Raised on invalid physical-memory configuration or host-side misuse.

    Guest-visible access violations are architectural faults, not exceptions;
    this class covers host errors such as registering overlapping MMIO
    regions.  Named with a trailing underscore to avoid shadowing the
    builtin ``MemoryError``.
    """


class DeviceError(ReproError):
    """Raised on invalid device configuration or programming."""


class KernelBuildError(ReproError):
    """Raised when the guest kernel image cannot be constructed."""


class HypervisorError(ReproError):
    """Raised on invalid hypervisor configuration or an unhandled VM exit."""


class LogError(ReproError):
    """Raised on input-log corruption or out-of-order consumption."""


class ReplayDivergenceError(ReproError):
    """Raised when a replayed execution diverges from the recorded one.

    Divergence indicates either log corruption or a nondeterministic source
    that escaped recording; both are fatal for RnR-Safe, which relies on
    deterministic replay for alarm analysis.
    """

    def __init__(self, message: str, icount: int | None = None):
        self.icount = icount
        if icount is not None:
            message = f"at instruction {icount}: {message}"
        super().__init__(message)


class CheckpointError(ReproError):
    """Raised on invalid checkpoint construction, restore, or recycling."""


class AttackBuildError(ReproError):
    """Raised when an attack payload cannot be constructed.

    Typically means the gadget scanner could not find the required gadgets
    in the supplied binary image.
    """


class WorkloadError(ReproError):
    """Raised on invalid workload profile parameters."""
