"""Exception hierarchy for the RnR-Safe simulation.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.  Guest-visible
architectural events (faults, VM exits) are *not* exceptions — they are
modelled as data (see :mod:`repro.cpu.faults`).  Exceptions here signal misuse
of the library or corruption of simulator state.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AssemblerError(ReproError):
    """Raised when guest assembly cannot be translated into machine words."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class DecodeError(ReproError):
    """Raised when a machine word does not decode to a valid instruction."""


class MemoryError_(ReproError):
    """Raised on invalid physical-memory configuration or host-side misuse.

    Guest-visible access violations are architectural faults, not exceptions;
    this class covers host errors such as registering overlapping MMIO
    regions.  Named with a trailing underscore to avoid shadowing the
    builtin ``MemoryError``.
    """


class DeviceError(ReproError):
    """Raised on invalid device configuration or programming."""


class KernelBuildError(ReproError):
    """Raised when the guest kernel image cannot be constructed."""


class HypervisorError(ReproError):
    """Raised on invalid hypervisor configuration or an unhandled VM exit."""


class LogError(ReproError):
    """Raised on input-log corruption or out-of-order consumption."""


class StoreCorruptError(LogError):
    """Raised when a durable run store cannot be recovered.

    Reserved for damage :func:`repro.store.recover_run` cannot heal: a
    missing or unparsable manifest, a manifest CRC mismatch, or a
    directory that is not a run store at all.  Recoverable damage — a
    torn journal tail, a checkpoint file whose CRC fails — is *not* this
    error: recovery truncates the journal at the last whole frame and
    drops the damaged checkpoint (and everything newer), then resumes
    from the surviving prefix.
    """

    def __init__(self, message: str, path: str | None = None):
        self._raw_message = message
        self.path = path
        if path is not None:
            message = f"{path}: {message}"
        super().__init__(message)

    def __reduce__(self):
        # Keep the structured path across process boundaries (the fleet
        # supervisor recovers stores from a child process).
        return (type(self), (self._raw_message, self.path))


class LogCorruptionError(LogError):
    """Raised when the framed log transport fails an integrity check.

    Covers CRC mismatches, dropped/reordered frames (sequence gaps), and
    torn (truncated) frames.  Distinct from plain :class:`LogError` so the
    pipeline can recover — the record stream itself is fine, only its
    transport envelope was damaged — while genuine parse errors on trusted
    bytes stay fatal.
    """

    def __init__(self, message: str, byte_offset: int | None = None,
                 frame_index: int | None = None):
        self._raw_message = message
        self.byte_offset = byte_offset
        self.frame_index = frame_index
        context = []
        if frame_index is not None:
            context.append(f"frame {frame_index}")
        if byte_offset is not None:
            context.append(f"byte offset {byte_offset}")
        if context:
            message = f"{message} ({', '.join(context)})"
        super().__init__(message)

    def __reduce__(self):
        # Default exception pickling re-invokes __init__ with the already
        # formatted message, dropping the structured fields; these errors
        # cross process boundaries, so rebuild from the raw parts.
        return (type(self),
                (self._raw_message, self.byte_offset, self.frame_index))


class ReplayDivergenceError(ReproError):
    """Raised when a replayed execution diverges from the recorded one.

    Divergence indicates either log corruption or a nondeterministic source
    that escaped recording; both are fatal for RnR-Safe, which relies on
    deterministic replay for alarm analysis.

    When the divergence was caught by the sentinel digest (cheap rolling
    CRC of registers + icount, emitted by the recorder and re-computed by
    replayers), ``expected_digest``/``actual_digest`` carry both values and
    ``window`` is the ``(last verified icount, failing icount)`` interval
    the divergence must have occurred in.
    """

    def __init__(self, message: str, icount: int | None = None,
                 expected_digest: int | None = None,
                 actual_digest: int | None = None,
                 window: tuple[int, int] | None = None):
        self._raw_message = message
        self.icount = icount
        self.expected_digest = expected_digest
        self.actual_digest = actual_digest
        self.window = window
        if expected_digest is not None and actual_digest is not None:
            message = (f"{message} [recorded digest {expected_digest:#010x}"
                       f" != replayed {actual_digest:#010x}]")
        if window is not None:
            message = (f"{message} [diverged within instruction window "
                       f"{window[0]}..{window[1]}]")
        if icount is not None:
            message = f"at instruction {icount}: {message}"
        super().__init__(message)

    def __reduce__(self):
        # Keep digests/window intact across process boundaries (see
        # LogCorruptionError.__reduce__).
        return (type(self),
                (self._raw_message, self.icount, self.expected_digest,
                 self.actual_digest, self.window))


class WorkerFailureError(ReproError):
    """Raised when a dispatched worker died and retries were exhausted.

    Parallel alarm replay and the fleet driver retry failed workers with
    backoff; this error is the typed terminal outcome when every attempt
    failed — never a raw pool exception or a silent drop.
    """

    def __init__(self, message: str, attempts: int = 1,
                 last_error: str | None = None):
        self._raw_message = message
        self.attempts = attempts
        self.last_error = last_error
        if attempts > 1:
            message = f"{message} after {attempts} attempts"
        if last_error:
            message = f"{message}: {last_error}"
        super().__init__(message)

    def __reduce__(self):
        return (type(self),
                (self._raw_message, self.attempts, self.last_error))


class WorkerTimeoutError(WorkerFailureError):
    """Raised when a dispatched worker exceeded its per-task timeout."""


class ServiceError(ReproError):
    """Raised on replay-service failures: a daemon that cannot start
    (store already served by another daemon), a client that cannot reach
    one, or a request the service refused for a non-queue reason."""


class ProtocolError(ServiceError):
    """Raised when a service message fails its framing or CRC check.

    The newline-delimited canonical-JSON protocol wraps every message in
    the same ``{"crc": ..., "body": ...}`` envelope as the durable
    journals; a garbled line (transport damage, a mid-write disconnect)
    trips the CRC and surfaces as this error — the daemon answers with a
    structured ``garbled-message`` rejection instead of acting on it.
    """


class QueueFullError(ServiceError):
    """Raised when the service rejected a submission for backpressure.

    Carries the structured rejection the daemon returned: ``reason`` is
    ``"queue-full"`` (bounded-queue admission control) or ``"draining"``
    / ``"stopping"`` (the daemon is shutting down), with the queue depth
    and limit so callers can implement their own blocking retry.
    """

    def __init__(self, message: str, reason: str = "queue-full",
                 queued: int | None = None, limit: int | None = None):
        self._raw_message = message
        self.reason = reason
        self.queued = queued
        self.limit = limit
        if queued is not None and limit is not None:
            message = f"{message} ({queued}/{limit} jobs queued)"
        super().__init__(message)

    def __reduce__(self):
        return (type(self),
                (self._raw_message, self.reason, self.queued, self.limit))


class CheckpointError(ReproError):
    """Raised on invalid checkpoint construction, restore, or recycling."""


class AttackBuildError(ReproError):
    """Raised when an attack payload cannot be constructed.

    Typically means the gadget scanner could not find the required gadgets
    in the supplied binary image.
    """


class WorkloadError(ReproError):
    """Raised on invalid workload profile parameters."""
