"""RnR-Safe: Record-Replay Architecture as a General Security Framework.

A full-system reproduction of the HPCA 2018 paper: a simulated guest
(ISA, CPU with RAS hardware, devices, a miniature kernel), a recording
hypervisor that logs all nondeterminism and raises imprecise security
alarms, and the two replayers — checkpointing and alarm — that verify
those alarms off the critical path.

Quickstart::

    from repro import build_workload, APACHE, deliver_rop_attack, RnRSafe

    spec, chain = deliver_rop_attack(build_workload(APACHE))
    report = RnRSafe(spec).run()
    print(report.summary())
"""

from repro.config import DEFAULT_CONFIG, CostModel, SimulationConfig
from repro.core.framework import (
    AlarmOutcome,
    FrameworkReport,
    RnRSafe,
    RnRSafeOptions,
)
from repro.core.modes import (
    ALL_RECORDING_SETUPS,
    NO_REC,
    NO_REC_PV,
    REC,
    REC_NO_RAS,
    RecordingSetup,
    record_benchmark,
)
from repro.attacks import (
    GadgetScanner,
    RopChain,
    build_dos_attack_program,
    build_jop_attack_program,
    build_set_root_chain,
    deliver_rop_attack,
)
from repro.detectors import (
    DosAnalyzer,
    DosWatchdog,
    JopDetector,
    RasRopDetector,
    measure_false_alarm_suppression,
)
from repro.hypervisor.machine import GuestMachine, MachineSpec
from repro.kernel import build_kernel
from repro.replay import (
    AlarmReplayer,
    AlarmVerdict,
    CheckpointingOptions,
    CheckpointingReplayer,
    DeterministicReplayer,
    VerdictKind,
)
from repro.rnr.recorder import Recorder, RecorderOptions, RecordingRun
from repro.workloads import (
    ALL_PROFILES,
    APACHE,
    FILEIO,
    MAKE,
    MYSQL,
    RADIOSITY,
    BenchmarkProfile,
    build_workload,
    profile_by_name,
)
from repro.analysis import build_attack_report, audit_window

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SimulationConfig",
    "CostModel",
    "DEFAULT_CONFIG",
    # workloads
    "BenchmarkProfile",
    "ALL_PROFILES",
    "APACHE",
    "FILEIO",
    "MAKE",
    "MYSQL",
    "RADIOSITY",
    "build_workload",
    "profile_by_name",
    # machines and recording
    "MachineSpec",
    "GuestMachine",
    "build_kernel",
    "Recorder",
    "RecorderOptions",
    "RecordingRun",
    "RecordingSetup",
    "ALL_RECORDING_SETUPS",
    "NO_REC_PV",
    "NO_REC",
    "REC_NO_RAS",
    "REC",
    "record_benchmark",
    # replay
    "DeterministicReplayer",
    "CheckpointingReplayer",
    "CheckpointingOptions",
    "AlarmReplayer",
    "AlarmVerdict",
    "VerdictKind",
    # framework
    "RnRSafe",
    "RnRSafeOptions",
    "FrameworkReport",
    "AlarmOutcome",
    # detectors
    "RasRopDetector",
    "JopDetector",
    "DosWatchdog",
    "DosAnalyzer",
    "measure_false_alarm_suppression",
    # attacks
    "GadgetScanner",
    "RopChain",
    "build_set_root_chain",
    "deliver_rop_attack",
    "build_jop_attack_program",
    "build_dos_attack_program",
    # analysis
    "build_attack_report",
    "audit_window",
]
