"""Client side of the replay service: submit work, inspect the queue.

:class:`ServiceClient` opens one connection per request (the protocol is
strictly request/response, and the daemon serves each connection on its
own thread), retries transient transport failures with backoff, and —
crucially — mints one ``nonce`` per logical submission and reuses it
across retries, so a submit that times out after the daemon durably
accepted it is deduplicated on retry instead of queued twice.  That
nonce discipline is the client half of the "no lost accepted jobs, no
double execution" contract; the daemon's write-ahead ack is the other
half.
"""

from __future__ import annotations

import os
import socket
import time
import uuid

from repro.errors import ProtocolError, QueueFullError, ServiceError
from repro.service.protocol import SOCKET_NAME, LineChannel, connect


def default_endpoint(store_dir: str) -> str:
    """The daemon's default unix socket for a service store."""
    return os.path.join(store_dir, SOCKET_NAME)


class ServiceClient:
    """Talk to a running ``repro serve`` daemon."""

    def __init__(self, endpoint: str, *, timeout_s: float = 30.0,
                 retries: int = 3, backoff_s: float = 0.1):
        self.endpoint = endpoint
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.backoff_s = backoff_s

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _request_once(self, body: dict, timeout_s: float | None) -> dict:
        channel = LineChannel(connect(
            self.endpoint, timeout_s or self.timeout_s))
        try:
            channel.send(body)
            response = channel.recv()
        finally:
            channel.close()
        if response is None:
            raise ServiceError(
                "service closed the connection without answering")
        return response

    def request(self, body: dict, *, timeout_s: float | None = None) -> dict:
        """One request/response round trip with transport retries.

        Retries cover connection failures, timeouts, and garbled
        *responses* — every path where the client cannot know whether
        the daemon acted.  Idempotency comes from the request's nonce
        (submits) or the operation being read-only, so retrying blind
        is safe.
        """
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(body, timeout_s)
            except (OSError, socket.timeout, ProtocolError,
                    ServiceError) as exc:
                if isinstance(exc, (QueueFullError,)):
                    raise
                last = exc
                if attempt < self.retries:
                    time.sleep(self.backoff_s * (2 ** attempt))
        raise ServiceError(
            f"service at {self.endpoint} unreachable after "
            f"{self.retries + 1} attempts: {last}")

    @staticmethod
    def _reject(response: dict):
        reason = response.get("reason", "rejected")
        error = response.get("error", "service rejected the request")
        if reason in ("queue-full", "draining", "stopping"):
            raise QueueFullError(error, reason=reason,
                                 queued=response.get("queued"),
                                 limit=response.get("limit"))
        if reason == "garbled-message":
            raise ProtocolError(error)
        raise ServiceError(f"{reason}: {error}")

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def ping(self) -> dict:
        response = self.request({"op": "ping"})
        if not response.get("ok"):
            self._reject(response)
        return response

    def submit(self, spec: dict, *, priority: int | None = None,
               nonce: str | None = None, wait_s: float = 0.0) -> dict:
        """Submit one session; returns the accepted-job response.

        ``spec`` carries ``benchmark`` / ``seed`` / ``attack`` /
        ``max_instructions`` / ``period_s``.  ``priority`` overrides the
        default class (alarm-bearing outranks clean).  ``wait_s`` > 0
        turns backpressure rejections into bounded blocking: the client
        re-submits (same nonce) until the queue admits the job or the
        window closes.
        """
        nonce = nonce or uuid.uuid4().hex
        body = {"op": "submit", "spec": dict(spec), "nonce": nonce}
        if priority is not None:
            body["priority"] = int(priority)
        deadline = time.monotonic() + wait_s
        garbled_left = self.retries
        while True:
            response = self.request(body)
            if response.get("ok"):
                return response
            reason = response.get("reason")
            if reason == "garbled-message" and garbled_left > 0:
                # The daemon saw transport damage, not our intent;
                # re-send under the same nonce (idempotent).
                garbled_left -= 1
                time.sleep(self.backoff_s)
                continue
            if reason == "queue-full" and time.monotonic() < deadline:
                time.sleep(self.backoff_s)
                continue
            self._reject(response)

    def queue(self) -> dict:
        """Queue rows + stats, as the daemon sees them."""
        response = self.request({"op": "queue"})
        if not response.get("ok"):
            self._reject(response)
        return response

    def drain(self, *, wait: bool = False, stop: bool = False,
              timeout_s: float | None = None) -> dict:
        """Stop admissions; optionally wait for quiet and stop the daemon.

        ``wait=True`` holds the connection until no job is queued or
        running (the daemon answers when the queue is quiet);
        ``stop=True`` additionally asks the daemon to exit afterwards.
        """
        response = self.request(
            {"op": "drain", "wait": bool(wait), "stop": bool(stop)},
            timeout_s=timeout_s if timeout_s is not None
            else (None if not wait else max(self.timeout_s, 600.0)))
        if not response.get("ok"):
            self._reject(response)
        return response
