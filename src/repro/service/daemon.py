"""The replay-service scheduler daemon (``repro serve``).

A long-running process that owns one service store directory: it accepts
session submissions over a unix/TCP socket, journals every accepted job
into the durable priority queue (``store/jobqueue.py``), and schedules
jobs across a pool of supervised worker processes — the *same* worker
entry point (:func:`repro.core.fleet.supervised_session_main`) and the
same payload builder the one-shot fleet uses, which is what makes a
serviced job's result bit-identical to the equivalent ``run_fleet``.

Crash contract (the tentpole):

* **No lost accepted jobs.**  A submission is acked only after its
  ``submit`` event is fsync'd into ``queue.jsonl`` (the write-ahead
  ack).  Kill -9 at any instant loses only submissions that were never
  acked — and the client retries those under the same nonce, which the
  journal deduplicates.
* **No double execution.**  ``done`` events are terminal: a restarted
  daemon never relaunches a completed job.  Jobs that were running at
  the crash re-queue with ``resume=True`` and continue from their
  per-job run store bit-identically (the store's resume guarantee).
  Orphaned worker processes from the dead daemon are fenced — each job
  directory carries a ``worker.pid`` the new daemon SIGKILLs before
  relaunching — so two workers never write one job store.
* **One daemon per store.**  An ``fcntl`` lock on ``daemon.lock``;
  a second ``repro serve`` on the same store fails fast with a typed
  :class:`~repro.errors.ServiceError`.

Scheduling mirrors the paper's CR/AR split: alarm-bearing submissions
(priority class 0) run before — and, when the pool is full, preempt —
clean CR catch-up (class 1).  A preempted worker is SIGTERM'd, its job
re-queued with ``resume=True`` and *no failure charged*; failures are
charged only for launches that die on their own, and a job that fails
``max_resume_attempts + 1`` times is quarantined as poison.  SIGTERM of
the daemon itself drains: admissions stop, in-flight jobs finish, the
queue stays on disk for the next daemon.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import signal
import socket
import threading
import time

from repro.config import DEFAULT_CONFIG
from repro.core.fleet import FleetSession, session_payload, supervised_session_main
from repro.errors import QueueFullError, ServiceError
from repro.obs.journal import TelemetryJournalWriter
from repro.obs.telemetry import Telemetry
from repro.service.protocol import (
    SOCKET_NAME,
    LineChannel,
    decode_message,
    parse_endpoint,
)
from repro.store.jobqueue import PRIORITY_AR, JobQueue, QueuedJob

#: The daemon's own durable telemetry journal (named so a service store
#: is never mistaken for a single run store by ``discover_run_dirs``).
SERVICE_JOURNAL_NAME = "service.jsonl"

#: Singleton lock file inside the service store.
LOCK_NAME = "daemon.lock"

#: Per-job pid fence file inside each job's run-store directory.
WORKER_PID_NAME = "worker.pid"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class ServiceDaemon:
    """One scheduler daemon bound to one service store directory."""

    def __init__(self, store_dir: str, *,
                 endpoint: str | None = None,
                 workers: int = 2,
                 queue_limit: int | None = None,
                 max_resume_attempts: int | None = None,
                 retry_backoff_s: float | None = None,
                 poll_s: float | None = None,
                 store_fsync: str = "interval",
                 fault_plan=None,
                 once: bool = False):
        config = DEFAULT_CONFIG
        self.store_dir = store_dir
        self.workers = max(1, workers)
        self.queue_limit = (queue_limit if queue_limit is not None
                            else config.service_queue_limit)
        self.max_resume_attempts = (
            max_resume_attempts if max_resume_attempts is not None
            else config.service_max_resume_attempts)
        self.retry_backoff_s = (retry_backoff_s if retry_backoff_s is not None
                                else config.service_retry_backoff_s)
        self.poll_s = poll_s if poll_s is not None else config.service_poll_s
        self.store_fsync = store_fsync
        self.fault_plan = fault_plan
        self.once = once
        os.makedirs(store_dir, exist_ok=True)
        self._acquire_lock()
        self.queue = JobQueue(store_dir, limit=self.queue_limit)
        self._fence_orphans()
        self.queue.note_serve(os.getpid())
        self.endpoint = endpoint or os.path.join(store_dir, SOCKET_NAME)
        self._lock = threading.Lock()
        self._ctx = multiprocessing.get_context()
        self._results = self._ctx.Queue()
        #: job_id -> (process, job, monotonic launch time, launch ordinal)
        self._running: dict[str, tuple] = {}
        self._by_index = {job.index: job for job in self.queue.jobs.values()}
        self._draining = False
        self._halt_launches = False
        self._stop = False
        self._exit_when_idle = False
        self._message_index = 0
        self._submit_index = 0
        self._listener: socket.socket | None = None
        self._unix_path: str | None = None
        self.telemetry = Telemetry(
            "service",
            journal=TelemetryJournalWriter(
                os.path.join(store_dir, SERVICE_JOURNAL_NAME),
                fsync="interval", resume=True,
            ),
        )
        self._last_beat = 0.0

    # ------------------------------------------------------------------
    # startup: singleton lock + orphan fencing
    # ------------------------------------------------------------------

    def _acquire_lock(self):
        import fcntl

        path = os.path.join(self.store_dir, LOCK_NAME)
        self._lock_handle = open(path, "a+")
        try:
            fcntl.flock(self._lock_handle.fileno(),
                        fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            self._lock_handle.close()
            raise ServiceError(
                f"store {self.store_dir} is already served by another "
                f"daemon (lock {path} held)") from None
        self._lock_handle.truncate(0)
        self._lock_handle.write(f"{os.getpid()}\n")
        self._lock_handle.flush()

    def _fence_orphans(self):
        """SIGKILL workers a dead daemon left behind.

        A previous daemon's kill -9 cannot reap its children; an orphan
        still appending to a job store while the new daemon relaunches
        that job would be two writers on one journal.  The pid fence
        makes relaunch safe: kill first, then schedule.
        """
        for job in self.queue.jobs.values():
            pid_path = os.path.join(self.store_dir, job.job_id,
                                    WORKER_PID_NAME)
            try:
                with open(pid_path) as handle:
                    pid = int(handle.read().strip() or "0")
            except (FileNotFoundError, ValueError):
                continue
            if pid > 0 and pid != os.getpid() and _pid_alive(pid):
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass
                deadline = time.monotonic() + 5.0
                while _pid_alive(pid) and time.monotonic() < deadline:
                    time.sleep(0.01)
            try:
                os.unlink(pid_path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # socket layer
    # ------------------------------------------------------------------

    def _open_listener(self):
        parsed = parse_endpoint(self.endpoint)
        if parsed[0] == "tcp":
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((parsed[1], parsed[2]))
            # A requested port of 0 binds an ephemeral port; publish it.
            self.endpoint = "%s:%d" % listener.getsockname()[:2]
        else:
            path = parsed[1]
            # We hold the store lock, so a leftover socket file is stale.
            try:
                os.unlink(path)
            except OSError:
                pass
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            self._unix_path = path
        listener.listen(64)
        listener.settimeout(0.5)
        self._listener = listener
        thread = threading.Thread(target=self._accept_loop,
                                  name="service-accept", daemon=True)
        thread.start()

    def _accept_loop(self):
        while not self._stop:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True)
            thread.start()

    def _serve_connection(self, conn: socket.socket):
        conn.settimeout(600.0)
        channel = LineChannel(conn)
        try:
            while not self._stop:
                line = channel.recv_line()
                if line is None:
                    return
                with self._lock:
                    index = self._message_index
                    self._message_index += 1
                variants = ([bytes(line)] if self.fault_plan is None
                            else self.fault_plan.apply_to_message(index, line))
                # An empty list models a message lost in transport: no
                # response at all — the client's timeout-and-retry path.
                for variant in variants:
                    try:
                        body = decode_message(variant)
                    except Exception as exc:  # ProtocolError + damage
                        channel.send({
                            "ok": False, "reason": "garbled-message",
                            "error": str(exc),
                        })
                        continue
                    channel.send(self._handle(body))
        except OSError:
            pass
        finally:
            channel.close()

    def _handle(self, body: dict) -> dict:
        op = body.get("op")
        if op == "ping":
            stats = self.queue.stats()
            return {"ok": True, "pid": os.getpid(),
                    "endpoint": self.endpoint,
                    "draining": self._draining,
                    "stats": stats.to_json()}
        if op == "submit":
            return self._handle_submit(body)
        if op == "queue":
            with self._lock:
                rows = self.queue.rows()
                stats = self.queue.stats().to_json()
                notes = list(self.queue.recovery_notes)
            return {"ok": True, "jobs": rows, "stats": stats,
                    "notes": notes, "draining": self._draining}
        if op == "drain":
            return self._handle_drain(body)
        return {"ok": False, "reason": "unknown-op",
                "error": f"unknown operation {op!r}"}

    def _handle_submit(self, body: dict) -> dict:
        if self._draining:
            return {"ok": False, "reason": "draining",
                    "error": "service is draining; submissions are closed"}
        spec = body.get("spec")
        if not isinstance(spec, dict) or "benchmark" not in spec:
            return {"ok": False, "reason": "bad-spec",
                    "error": "submit spec must carry at least 'benchmark'"}
        with self._lock:
            submit_index = self._submit_index
            self._submit_index += 1
            if self.fault_plan is not None:
                # The accept-crash window: the submission is admitted but
                # not yet journaled.  A KILL_WORKER spec with role
                # "accept" hard-exits here — the crash/resume tests pin
                # that the un-acked job is the only thing lost.
                self.fault_plan.fire_worker_fault("accept", submit_index)
            try:
                job, accepted = self.queue.submit(
                    spec, nonce=str(body.get("nonce", "")),
                    priority=body.get("priority"))
            except QueueFullError as exc:
                return {"ok": False, "reason": exc.reason,
                        "error": "service queue is full",
                        "queued": exc.queued, "limit": exc.limit}
            except (KeyError, TypeError, ValueError) as exc:
                return {"ok": False, "reason": "bad-spec",
                        "error": f"invalid submit spec: {exc}"}
            if accepted:
                self._by_index[job.index] = job
                self.telemetry.count("service.submitted")
        return {"ok": True, "job": job.job_id, "index": job.index,
                "state": job.state, "priority": job.priority,
                "deduplicated": not accepted}

    def _handle_drain(self, body: dict) -> dict:
        with self._lock:
            if not self._draining:
                self._draining = True
                self.queue.note_drain()
        if body.get("stop"):
            self._exit_when_idle = True
        if body.get("wait"):
            while not self._quiet() and not self._stop:
                time.sleep(self.poll_s)
        with self._lock:
            stats = self.queue.stats().to_json()
        return {"ok": True, "draining": True, "stats": stats,
                "quiet": self._quiet()}

    def _quiet(self) -> bool:
        with self._lock:
            stats = self.queue.stats()
        return stats.queued == 0 and stats.running == 0

    # ------------------------------------------------------------------
    # worker pool
    # ------------------------------------------------------------------

    def _job_dir(self, job: QueuedJob) -> str:
        return os.path.join(self.store_dir, job.job_id)

    def _launch(self, job: QueuedJob):
        """One durable ``start`` event, then the worker process.

        Journal-then-launch: a crash between the two re-queues the job
        with ``resume=True`` on recovery (its store may not even exist
        yet — resume then degrades to a fresh deterministic run).
        """
        session = FleetSession(
            benchmark=job.benchmark, seed=job.seed, attack=job.attack,
            max_instructions=job.max_instructions, period_s=job.period_s,
        )
        attempt = job.launches
        resume = job.resume
        job_dir = self._job_dir(job)
        os.makedirs(job_dir, exist_ok=True)
        self.queue.mark_start(job)
        payload = session_payload(
            job.index, session,
            fault_plan=self.fault_plan, attempt=attempt,
            allow_hard_kill=True,
            store_path=job_dir, resume=resume,
            store_fsync=self.store_fsync,
        )
        process = self._ctx.Process(
            target=supervised_session_main,
            args=(self._results, payload),
            name=f"service-{job.job_id}",
            daemon=True,
        )
        process.start()
        with open(os.path.join(job_dir, WORKER_PID_NAME), "w") as handle:
            handle.write(f"{process.pid}\n")
        self._running[job.job_id] = (process, job, time.monotonic(), attempt)

    def _release(self, job: QueuedJob):
        entry = self._running.pop(job.job_id, None)
        if entry is not None:
            entry[0].join(timeout=5.0)
        try:
            os.unlink(os.path.join(self._job_dir(job), WORKER_PID_NAME))
        except OSError:
            pass

    def _complete(self, job: QueuedJob, result):
        summary = {
            "ok": True,
            "verdicts": list(result.verdicts),
            "digest": result.session_digest,
            "log_bytes": result.log_bytes,
            "log_records": result.log_records,
            "instructions": result.instructions,
            "checkpoints": result.checkpoints,
            "alarms_seen": result.alarms_seen,
            "dismissed_underflows": result.dismissed_underflows,
            "stop_reason": result.stop_reason,
            "backend": result.backend,
            "attempts": result.attempts,
        }
        self.queue.mark_done(job, summary)
        self.telemetry.count("service.completed")
        wait = job.wait_s()
        run = job.run_s()
        if wait is not None:
            self.telemetry.observe("service.wait_ms", int(wait * 1000))
        if run is not None:
            self.telemetry.observe("service.run_ms", int(run * 1000))

    def _finish(self, index: int, result):
        job = self._by_index.get(index)
        if job is None or job.state in ("done", "quarantined"):
            return
        entry = self._running.get(job.job_id)
        result_attempt = max(0, result.attempts - 1)
        if entry is not None and result_attempt != entry[3]:
            # A dying gasp from a launch we already preempted, racing
            # the job's *relaunched* worker: the live launch decides.
            return
        if entry is None:
            # The job was preempted (and not yet relaunched).  Its old
            # worker managed to finish before the SIGTERM landed —
            # accept the completed result rather than re-running; a
            # failure here is just the SIGTERM, already accounted for
            # by the preempt event.
            if result.ok and job.state == "queued":
                self._complete(job, result)
            return
        self._release(job)
        if result.ok:
            self._complete(job, result)
        else:
            self._fail(job, result.error)

    def _fail(self, job: QueuedJob, error: str):
        quarantined = self.queue.mark_fail(
            job, error, max_failures=self.max_resume_attempts,
            backoff_s=self.retry_backoff_s)
        if quarantined:
            self.telemetry.count("service.quarantined")
        else:
            self.telemetry.count("service.failed_launches")

    def _drain_results(self, block_s: float = 0.0) -> bool:
        got = False
        timeout = block_s
        while True:
            try:
                if timeout:
                    index, result = self._results.get(timeout=timeout)
                else:
                    index, result = self._results.get_nowait()
            except queue_mod.Empty:
                return got
            with self._lock:
                self._finish(index, result)
            got = True
            timeout = 0.0

    def _check_workers(self):
        with self._lock:
            entries = list(self._running.items())
        for job_id, (process, job, _, _) in entries:
            if process.is_alive():
                continue
            # Its result may still be in flight; give it a beat.
            self._drain_results(block_s=0.2)
            with self._lock:
                if job_id not in self._running:
                    continue
                self._release(job)
                self._fail(job, "worker process died without a result "
                                f"(exit code {process.exitcode})")

    def _preempt_for(self, job: QueuedJob) -> bool:
        """Make room for an alarm-class job by stopping the youngest
        running clean-class worker.  Returns True when a slot opened."""
        victims = [(launched, victim, process)
                   for process, victim, launched, _ in self._running.values()
                   if victim.priority > job.priority]
        if not victims:
            return False
        _, victim, process = max(victims, key=lambda entry: entry[0])
        self.queue.mark_preempt(victim)
        self.telemetry.count("service.preempted")
        if process.is_alive():
            process.terminate()
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)
        self._release(victim)
        return True

    def _schedule(self):
        with self._lock:
            if self._halt_launches:
                return
            now = time.monotonic()
            while True:
                job = self.queue.next_runnable(now)
                if job is None:
                    return
                if len(self._running) >= self.workers:
                    if not (job.priority == PRIORITY_AR
                            and self._preempt_for(job)):
                        return
                self._launch(job)

    def _maybe_beat(self):
        now = time.monotonic()
        if now - self._last_beat < 1.0:
            return
        self._last_beat = now
        with self._lock:
            stats = self.queue.stats()
        self.telemetry.gauge("service.queue_depth", stats.queued)
        self.telemetry.gauge("service.running", stats.running)
        self.telemetry.beat("draining" if self._draining else "serving",
                            icount=stats.done, frames=stats.queued)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def _install_signals(self):
        def on_term(signum, frame):
            # Graceful degradation: admissions close, in-flight jobs
            # finish, queued jobs stay durable for the next daemon.
            self._draining = True
            self._halt_launches = True
            self._exit_when_idle = True

        try:
            signal.signal(signal.SIGTERM, on_term)
            signal.signal(signal.SIGINT, on_term)
        except ValueError:
            # Not the main thread (embedded in tests): signals are the
            # caller's business.
            pass

    def run(self):
        """Serve until stopped (SIGTERM / drain --stop / ``once``)."""
        self._install_signals()
        self._open_listener()
        self.telemetry.beat("serving")
        try:
            while not self._stop:
                self._drain_results(block_s=self.poll_s)
                self._check_workers()
                self._schedule()
                self._maybe_beat()
                with self._lock:
                    idle = not self._running
                if (idle and self._exit_when_idle
                        and (self._halt_launches or self._quiet())):
                    # SIGTERM: in-flight work is done, queued work stays
                    # durable for the next daemon.  ``drain --stop``:
                    # everything accepted has completed.
                    break
                if self.once and idle and self._quiet():
                    break
        finally:
            self.shutdown()

    def shutdown(self):
        if self._stop:
            return
        self._stop = True
        with self._lock:
            jobs = [entry[1] for entry in self._running.values()]
            for entry in self._running.values():
                if entry[0].is_alive():
                    entry[0].terminate()
        for job in jobs:
            entry = self._running.get(job.job_id)
            if entry is not None:
                entry[0].join(timeout=5.0)
            self._release(job)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
        self.telemetry.beat("stopped")
        self.telemetry.journal.close()
        self._results.close()
        self._results.cancel_join_thread()
        self.queue.close()
        try:
            self._lock_handle.close()
        except OSError:
            pass


def serve(store_dir: str, **kwargs) -> None:
    """Build and run a daemon (the ``repro serve`` entry point)."""
    ServiceDaemon(store_dir, **kwargs).run()
