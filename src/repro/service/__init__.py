"""Replay-as-a-service: the always-on scheduler the deployment story needs.

``repro serve STORE_DIR`` runs a :class:`ServiceDaemon` — a crash-
resumable scheduler that accepts session submissions over a unix/TCP
socket, journals them into a durable priority queue
(``store/jobqueue.py``), and runs them on supervised worker processes
with the paper's CR/AR priority split (alarm-bearing work preempts
clean catch-up).  ``repro submit`` / ``repro queue`` / ``repro drain``
are thin :class:`ServiceClient` wrappers.  See ``docs/RELIABILITY.md``
for the service state machine and the crash contract.
"""

from repro.service.client import ServiceClient, default_endpoint
from repro.service.daemon import (
    LOCK_NAME,
    SERVICE_JOURNAL_NAME,
    WORKER_PID_NAME,
    ServiceDaemon,
    serve,
)
from repro.service.protocol import (
    SOCKET_NAME,
    LineChannel,
    decode_message,
    encode_message,
    parse_endpoint,
)

__all__ = [
    "LOCK_NAME",
    "LineChannel",
    "SERVICE_JOURNAL_NAME",
    "SOCKET_NAME",
    "ServiceClient",
    "ServiceDaemon",
    "WORKER_PID_NAME",
    "decode_message",
    "default_endpoint",
    "encode_message",
    "parse_endpoint",
    "serve",
]
