"""Wire protocol of the replay service: newline-delimited canonical JSON.

Every message — request or response — is one line: the canonical-JSON
encoding of ``{"crc": crc32(canonical(body)), "body": {...}}`` followed
by ``\\n``, the exact envelope the durable journals use on disk.  The
CRC is not cryptography; it is the same tear/garble detector the store
trusts: a byte flipped in transport (or injected by a
``GARBLE_MESSAGE`` fault) makes the line undecodable, and the daemon
answers with a structured ``garbled-message`` rejection instead of
acting on damaged input.

Requests carry ``op`` (``submit`` / ``queue`` / ``drain`` / ``ping``)
plus op-specific fields; responses carry ``ok`` and either the payload
or ``reason`` + ``error``.  Submissions carry a client-minted ``nonce``
so a retried submit (after a drop, a timeout, or a lost ack) is
idempotent: the daemon's queue journal deduplicates on the nonce and
returns the originally accepted job.

Endpoints: a path is a unix socket (the default is
``STORE_DIR/service.sock``); ``host:port`` is TCP.
"""

from __future__ import annotations

import json
import socket
import zlib

from repro.errors import ProtocolError
from repro.store.runstore import canonical_body

#: Unix-socket file name inside the service's store directory.
SOCKET_NAME = "service.sock"

#: Longest accepted line; anything bigger is damage or abuse.
MAX_MESSAGE_BYTES = 1 << 20


def encode_message(body: dict) -> bytes:
    """One protocol line (terminating newline included)."""
    envelope = {"crc": zlib.crc32(canonical_body(body)), "body": body}
    return json.dumps(envelope, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict:
    """Validate one received line into its body.

    Raises :class:`~repro.errors.ProtocolError` on anything short of a
    well-framed, CRC-clean message.
    """
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit")
    try:
        envelope = json.loads(line)
        body = envelope["body"]
        crc = envelope["crc"]
    except (ValueError, KeyError, TypeError) as exc:
        raise ProtocolError(f"unparseable message: {exc}") from None
    if not isinstance(body, dict):
        raise ProtocolError("message body is not an object")
    actual = zlib.crc32(canonical_body(body))
    if actual != crc:
        raise ProtocolError(
            f"message CRC mismatch (stored {crc}, computed {actual})")
    return body


def parse_endpoint(endpoint: str) -> tuple:
    """``("unix", path)`` or ``("tcp", host, port)``.

    Anything with a colon and no path separator is ``host:port``;
    everything else is a unix-socket path.
    """
    if ":" in endpoint and "/" not in endpoint and "\\" not in endpoint:
        host, _, port = endpoint.rpartition(":")
        try:
            return ("tcp", host or "127.0.0.1", int(port))
        except ValueError:
            pass
    return ("unix", endpoint)


def connect(endpoint: str, timeout_s: float = 10.0) -> socket.socket:
    """Open a client socket to a parsed endpoint."""
    parsed = parse_endpoint(endpoint)
    if parsed[0] == "tcp":
        sock = socket.create_connection((parsed[1], parsed[2]),
                                        timeout=timeout_s)
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout_s)
        sock.connect(parsed[1])
    return sock


class LineChannel:
    """Blocking line-framed message channel over one socket."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buffer = b""

    def send(self, body: dict):
        self.sock.sendall(encode_message(body))

    def send_raw(self, line: bytes):
        self.sock.sendall(line)

    def recv_line(self) -> bytes | None:
        """One raw line (without the newline), or ``None`` on EOF."""
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_MESSAGE_BYTES:
                raise ProtocolError("unterminated message exceeds the "
                                    "message size limit")
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self._buffer += chunk
        line, _, self._buffer = self._buffer.partition(b"\n")
        return line

    def recv(self) -> dict | None:
        """One decoded message body, or ``None`` on EOF."""
        line = self.recv_line()
        if line is None:
            return None
        return decode_message(line)

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass
