"""Deterministic device emulation shared by the recorder and the replayers.

Writes (OUT, MMIO stores) have deterministic effects on replica device
state, so the recorder and every replayer run the *same* emulation code
here.  Reads are different: the recorder consults the live devices and logs
the result; replayers inject logged values and never call the read side.
"""

from __future__ import annotations

from repro.cpu.exits import VmExit
from repro.devices.bus import (
    PORT_CONSOLE,
    PORT_DISK_ADDR,
    PORT_DISK_BLOCK,
    PORT_DISK_CMD,
    PORT_DISK_PARAM,
    PORT_DISK_STATUS,
    PORT_SHUTDOWN,
)
from repro.errors import DeviceError


def emulate_pio_out(machine, exit_event: VmExit) -> bool:
    """Apply an OUT to the right device replica.

    Returns ``True`` if the guest requested shutdown.
    """
    port = exit_event.port
    value = exit_event.value
    if port == PORT_CONSOLE:
        machine.console.pio_write(value)
        return False
    if port == PORT_SHUTDOWN:
        return True
    if port == PORT_DISK_CMD:
        machine.disk_dev.pio_write("cmd", value, machine.now)
        return False
    if port == PORT_DISK_BLOCK:
        machine.disk_dev.pio_write("block", value, machine.now)
        return False
    if port == PORT_DISK_ADDR:
        machine.disk_dev.pio_write("addr", value, machine.now)
        return False
    if port == PORT_DISK_PARAM:
        machine.disk_dev.pio_write("param", value, machine.now)
        return False
    raise DeviceError(f"OUT to unwired port {port}")


def emulate_pio_in(machine, exit_event: VmExit) -> int:
    """Read a device register (recording side only)."""
    if exit_event.port == PORT_DISK_STATUS:
        return machine.disk_dev.pio_read_status()
    raise DeviceError(f"IN from unwired port {exit_event.port}")
