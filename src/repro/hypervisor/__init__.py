"""The hypervisor layer: VMCS programming, device emulation, interposition.

Follows the paper's Intel VT terminology (§5): the :class:`Vmcs` is the
structure through which the hypervisor configures the virtualization
hardware — exit controls, the BackRASptr, and the two whitelist tables.
:class:`ContextSwitchInterposer` implements §5.2: trapping the guest
kernel's single SP-pivot instruction, introspecting the next thread's task
struct, and maintaining/recycling the per-thread BackRAS.
"""

from repro.hypervisor.vmcs import Vmcs
from repro.hypervisor.machine import GuestMachine, MachineSpec
from repro.hypervisor.interpose import BackRasStore, ContextSwitchInterposer
from repro.hypervisor.emulation import emulate_pio_out, emulate_pio_in

__all__ = [
    "Vmcs",
    "GuestMachine",
    "MachineSpec",
    "BackRasStore",
    "ContextSwitchInterposer",
    "emulate_pio_out",
    "emulate_pio_in",
]
