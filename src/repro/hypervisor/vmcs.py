"""The VM Control Structure (VMCS) programming interface.

The paper extends the VMCS with three new fields: the BackRASptr and the
two whitelist tables (§5.1); microcode reads them at VMEnter to program the
processor structures.  This class is the hypervisor's view of the simulated
hardware: setting a field here programs the corresponding CPU structure,
exactly like a VMEnter would.
"""

from __future__ import annotations

from typing import Iterable

from repro.cpu.core import Cpu
from repro.cpu.exits import ExitControls
from repro.errors import HypervisorError


class Vmcs:
    """Hypervisor-side programming interface for one virtual CPU."""

    def __init__(self, cpu: Cpu, tar_whitelist_capacity: int,
                 jop_table_capacity: int):
        self._cpu = cpu
        self._tar_capacity = tar_whitelist_capacity
        self._jop_capacity = jop_table_capacity

    @property
    def controls(self) -> ExitControls:
        """The execution controls (which events exit)."""
        return self._cpu.controls

    # ------------------------------------------------------------------
    # guest register access (what VMExit handlers read)
    # ------------------------------------------------------------------

    def guest_reg(self, index: int) -> int:
        """Read a guest register out of the VMCS after a VMExit."""
        return self._cpu.regs[index]

    @property
    def guest_pc(self) -> int:
        return self._cpu.pc

    @property
    def guest_user_mode(self) -> bool:
        return self._cpu.user

    # ------------------------------------------------------------------
    # the paper's new fields (§5.1)
    # ------------------------------------------------------------------

    def set_ret_whitelist(self, pc: int | None):
        """Program the single-entry RetWhitelist."""
        self._cpu.ret_whitelist = pc

    def set_tar_whitelist(self, targets: Iterable[int]):
        """Program the TarWhitelist (capacity-checked)."""
        targets = frozenset(targets)
        if len(targets) > self._tar_capacity:
            raise HypervisorError(
                f"TarWhitelist holds {self._tar_capacity} entries, "
                f"got {len(targets)}"
            )
        self._cpu.tar_whitelist = targets

    def set_jop_table(self, ranges: Iterable[tuple[int, int]]):
        """Program the hardware JOP function-boundary table."""
        ranges = tuple(ranges)
        if len(ranges) > self._jop_capacity:
            raise HypervisorError(
                f"JOP table holds {self._jop_capacity} entries, "
                f"got {len(ranges)}"
            )
        self._cpu.jop_table = ranges

    # ------------------------------------------------------------------
    # RAS microcode operations (§4.3)
    # ------------------------------------------------------------------

    def dump_ras(self) -> tuple[int, ...]:
        """Microcode dump of the RAS into the active BackRAS entry."""
        return self._cpu.ras.save()

    def load_ras(self, snapshot: tuple[int, ...]):
        """Microcode load of a BackRAS entry into the RAS (at VMEnter)."""
        self._cpu.ras.restore(snapshot)

    def clear_ras(self):
        """Empty the RAS (fresh thread with no BackRAS history)."""
        self._cpu.ras.clear()

    def resume_over_breakpoint(self):
        """Arrange for the trapped instruction to execute on VMEnter."""
        self._cpu.skip_breakpoint_once()
