"""Context-switch interposition and BackRAS maintenance (§5.2).

The hypervisor breakpoints three guest-kernel instructions:

* ``__switch_sp`` — the single instruction where the stack pointer moves to
  the next thread.  At this exit the hardware dumps the RAS into the
  outgoing thread's BackRAS; the hypervisor introspects the new stack
  pointer (in a guest register, read from the VMCS), resolves it to a task
  struct, retargets BackRASptr, and the VMEnter microcode loads the
  incoming thread's BackRAS into the RAS.
* ``__task_create_commit`` / ``__task_exit_commit`` — thread lifecycle
  commit points, used to allocate and recycle BackRAS entries so that
  reused thread IDs never inherit stale return addresses (§5.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.ras import RasSnapshot
from repro.errors import HypervisorError
from repro.hypervisor.vmcs import Vmcs
from repro.kernel.image import KernelImage
from repro.kernel.tasks import find_task_by_sp
from repro.memory.physical import PhysicalMemory

#: The guest register that holds the next thread's stack pointer at the
#: ``__switch_sp`` instruction (fixed by the kernel builder's codegen).
SWITCH_SP_REG = 4
#: The guest register that holds the thread ID at the lifecycle commits.
LIFECYCLE_TID_REG = 1


@dataclass
class BackRasStore:
    """The in-hypervisor map of thread ID to saved RAS (the BackRAS array).

    Stored "in a memory area inaccessible to the guest machine ... as a hash
    table mapping a thread's ID to its BackRAS entry" (§5.2.1).
    """

    entries: dict[int, RasSnapshot] = field(default_factory=dict)
    saves: int = 0
    restores: int = 0
    words_moved: int = 0

    def save(self, tid: int, snapshot: RasSnapshot):
        self.entries[tid] = snapshot
        self.saves += 1
        self.words_moved += len(snapshot) + 1  # entries + count word

    def load(self, tid: int) -> RasSnapshot:
        snapshot = self.entries.get(tid, ())
        self.restores += 1
        self.words_moved += len(snapshot) + 1
        return snapshot

    def allocate(self, tid: int):
        """Fresh, empty entry for a new thread."""
        self.entries[tid] = ()

    def recycle(self, tid: int):
        """Drop a dead thread's entry so a reused ID starts clean."""
        self.entries.pop(tid, None)

    def snapshot(self) -> dict[int, RasSnapshot]:
        """Copy for inclusion in a checkpoint."""
        return dict(self.entries)

    @property
    def bytes_moved(self) -> int:
        """Save/restore traffic in bytes (Figure 6b)."""
        return self.words_moved * 8


class ContextSwitchInterposer:
    """Handles the three breakpoint exits and tracks the current thread."""

    def __init__(self, kernel: KernelImage, vmcs: Vmcs,
                 memory: PhysicalMemory, manage_backras: bool):
        self.kernel = kernel
        self.vmcs = vmcs
        self.memory = memory
        self.manage_backras = manage_backras
        self.backras = BackRasStore()
        #: Optional observers for thread lifecycle commits (the alarm
        #: replayer resets its software RAS through these).
        self.thread_created_hook = None
        self.thread_destroyed_hook = None
        #: Thread the hypervisor believes is running (-1 before tasking).
        self.current_tid = -1
        self.context_switches = 0
        self._switch_pc = kernel.switch_sp_pc
        self._create_pc = kernel.task_create_pc
        self._exit_pc = kernel.task_exit_pc

    def breakpoints(self) -> set[int]:
        """The breakpoint set to program into the exit controls."""
        return {self._switch_pc, self._create_pc, self._exit_pc}

    def handles(self, pc: int) -> bool:
        return pc in (self._switch_pc, self._create_pc, self._exit_pc)

    def on_breakpoint(self, pc: int) -> tuple[int, int]:
        """Handle one breakpoint exit.

        Returns ``(old_tid, new_tid)`` — equal when no switch occurred —
        and arranges resumption past the trapped instruction.
        """
        old_tid = self.current_tid
        if pc == self._switch_pc:
            new_tid = self._on_switch()
        elif pc == self._create_pc:
            self._on_create()
            new_tid = old_tid
        elif pc == self._exit_pc:
            self._on_exit()
            new_tid = old_tid
        else:
            raise HypervisorError(f"unexpected breakpoint at {pc:#x}")
        self.vmcs.resume_over_breakpoint()
        return old_tid, new_tid

    def _on_switch(self) -> int:
        new_sp = self.vmcs.guest_reg(SWITCH_SP_REG)
        task = find_task_by_sp(self.memory, self.kernel.layout, new_sp)
        if task is None:
            raise HypervisorError(
                f"context switch to SP {new_sp:#x} resolves to no task"
            )
        if self.manage_backras:
            # Hardware dumps the outgoing RAS to the BackRAS entry pointed
            # to by BackRASptr, then VMEnter loads the incoming entry.
            if self.current_tid >= 0:
                self.backras.save(self.current_tid, self.vmcs.dump_ras())
            self.vmcs.load_ras(self.backras.load(task.tid))
        self.current_tid = task.tid
        self.context_switches += 1
        return task.tid

    def _on_create(self):
        tid = self.vmcs.guest_reg(LIFECYCLE_TID_REG)
        if self.manage_backras:
            self.backras.allocate(tid)
        if self.thread_created_hook is not None:
            self.thread_created_hook(tid)

    def _on_exit(self):
        tid = self.vmcs.guest_reg(LIFECYCLE_TID_REG)
        if self.manage_backras:
            self.backras.recycle(tid)
        if self.thread_destroyed_hook is not None:
            self.thread_destroyed_hook(tid)

    def restore_from_checkpoint(self, backras: dict[int, RasSnapshot],
                                current_tid: int):
        """Reset interposer state when a replayer loads a checkpoint."""
        self.backras.entries = dict(backras)
        self.current_tid = current_tid
