"""The guest machine: memory map, device wiring, loading, time accounting.

A :class:`MachineSpec` is a pure-data description of a workload deployment:
the kernel image, the user program images, the initial tasks, the timer
programming, and the external packet schedule.  Because the spec is
immutable data, the recorder and every replayer can construct *identical*
initial machines from it — the foundation of deterministic replay (the
paper ships a VM image to the replay machine; we rebuild from the spec).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.cpu.core import Cpu
from repro.cpu.exits import ExitControls
from repro.devices.bus import NIC_MMIO_BASE, NIC_MMIO_SIZE
from repro.devices.console import ConsoleDevice
from repro.devices.disk import DiskDevice, VirtualDisk
from repro.devices.interrupts import InterruptController
from repro.devices.nic import NetworkDevice, Packet
from repro.devices.timer import TimerDevice
from repro.devices.world import HostWorld
from repro.errors import KernelBuildError
from repro.hypervisor.vmcs import Vmcs
from repro.isa.assembler import AssembledImage
from repro.isa.opcodes import SP
from repro.kernel.image import KernelImage
from repro.memory.mmio import MmioRegistry
from repro.memory.paging import PERM_EXEC, PERM_READ, PERM_USER, PERM_WRITE
from repro.memory.physical import PhysicalMemory
from repro.perf.account import Category, CycleAccount


@dataclass(frozen=True)
class MachineSpec:
    """Reproducible description of one workload deployment."""

    label: str
    kernel: KernelImage
    user_images: tuple[AssembledImage, ...]
    init_entries: tuple[int, ...]
    config: SimulationConfig = DEFAULT_CONFIG
    #: Timer tick period and jitter, in cycles.
    timer_period_cycles: int = 50_000
    timer_jitter_cycles: int = 2_000
    #: External packet arrivals: (due_cycle, payload words) pairs.
    packet_schedule: tuple[tuple[int, tuple[int, ...]], ...] = ()
    #: Seed of the virtual disk's synthesized content.
    disk_seed: int = 7
    #: Seed of the host world's RNG (recording-side nondeterminism).
    world_seed: int = 2018


class GuestMachine:
    """One assembled guest: CPU, memory, devices, and cycle accounting."""

    def __init__(self, spec: MachineSpec, controls: ExitControls,
                 with_world: bool):
        self.spec = spec
        config = spec.config
        layout = spec.kernel.layout
        self.layout = layout
        self.memory = PhysicalMemory(page_size=config.page_size)
        self._map_regions()
        self._load_images()
        self.cpu = Cpu(self.memory, config, controls=controls)
        self.cpu.vec_syscall = spec.kernel.syscall_entry
        self.cpu.vec_irq = spec.kernel.irq_entry
        self.cpu.vec_fault = spec.kernel.fault_entry
        self.cpu.pc = spec.kernel.boot_entry
        self.cpu.regs[SP] = layout.boot_stack_top
        self.vmcs = Vmcs(
            self.cpu,
            tar_whitelist_capacity=config.tar_whitelist_entries,
            jop_table_capacity=config.jop_table_entries,
        )
        self.intc = InterruptController()
        self.world = HostWorld(config, spec.world_seed) if with_world else None
        self.disk = VirtualDisk(config.disk_block_size, spec.disk_seed)
        self.disk_dev = DiskDevice(self.disk, self.memory, self.intc,
                                   self.world)
        self.nic = NetworkDevice(self.memory, self.intc,
                                 ring_words=layout.nic_ring_words)
        self.console = ConsoleDevice()
        self.mmio = MmioRegistry()
        self.mmio.register(NIC_MMIO_BASE, NIC_MMIO_SIZE, self.nic)
        self.timer = (
            TimerDevice(self.world, self.intc, spec.timer_period_cycles,
                        spec.timer_jitter_cycles)
            if self.world is not None else None
        )
        if self.world is not None:
            for due_cycle, payload in spec.packet_schedule:
                packet = Packet(words=payload)
                self.world.schedule(
                    due_cycle,
                    lambda pkt=packet: self.nic.deliver_packet(pkt),
                )
        self.account = CycleAccount()
        self.overhead_cycles = 0
        self.stopped = False
        self.stop_reason = ""

    # ------------------------------------------------------------------
    # memory map and loading
    # ------------------------------------------------------------------

    def _map_regions(self):
        layout = self.layout
        memory = self.memory
        page = memory.page_size
        kernel_words = len(self.spec.kernel.image.words)
        kernel_limit = layout.kernel_code_base + kernel_words
        if kernel_limit > layout.kdata_base:
            raise KernelBuildError(
                f"kernel code ({kernel_words} words) overruns its region"
            )
        kernel_pages = -(-kernel_words // page)
        memory.map_range(layout.kernel_code_base, kernel_pages * page,
                         PERM_READ | PERM_EXEC)
        # Kernel globals + task table.
        memory.map_range(layout.kdata_base, 2 * page, PERM_READ | PERM_WRITE)
        # NIC RX ring.
        memory.map_range(layout.nic_ring, layout.nic_ring_words,
                         PERM_READ | PERM_WRITE)
        # Boot stack page.
        memory.map_range(layout.boot_stack_top - page, page,
                         PERM_READ | PERM_WRITE)
        # Per-task stacks (user-accessible: tasks run on them in user mode).
        memory.map_range(layout.stacks_base,
                         layout.max_tasks * layout.stack_words,
                         PERM_READ | PERM_WRITE | PERM_USER)
        # User code window.
        user_code_words = layout.user_data_base - layout.user_code_base
        memory.map_range(layout.user_code_base, user_code_words,
                         PERM_READ | PERM_EXEC | PERM_USER)
        # User data window.
        memory.map_range(
            layout.user_data_base,
            layout.max_tasks * layout.user_data_words_per_task,
            PERM_READ | PERM_WRITE | PERM_USER,
        )
        memory.add_mmio_range(NIC_MMIO_BASE, NIC_MMIO_SIZE)

    def _load_images(self):
        layout = self.layout
        for addr, word in self.spec.kernel.image.items():
            self.memory.write_word(addr, word)
        for image in self.spec.user_images:
            if image.base < layout.user_code_base:
                raise KernelBuildError(
                    f"user image {image.base:#x} below the user code window"
                )
            for addr, word in image.items():
                self.memory.write_word(addr, word)
        # Init table: count, then entry PCs (read by the kernel at boot).
        entries = self.spec.init_entries
        if len(entries) > layout.init_table_entries:
            raise KernelBuildError(
                f"{len(entries)} initial tasks exceed the init table"
            )
        table = layout.init_table_addr
        self.memory.write_word(table, len(entries))
        for index, entry in enumerate(entries):
            self.memory.write_word(table + 1 + index, entry)
        self.memory.clear_dirty()

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated cycle: guest CPI cycles plus overheads."""
        return self.cpu.icount + self.overhead_cycles

    def charge(self, category: Category, cycles: int, events: int = 1):
        """Record overhead cycles; they advance simulated time."""
        self.account.charge(category, cycles, events)
        self.overhead_cycles += cycles

    def stop(self, reason: str):
        """Halt the run loop."""
        self.stopped = True
        self.stop_reason = reason

    # ------------------------------------------------------------------
    # state digest (replay fidelity checks)
    # ------------------------------------------------------------------

    def cpu_digest(self, prev: int = 0) -> int:
        """Cheap CRC of processor state (registers, pc, mode, icount).

        ``prev`` chains digests: passing the previous sentinel's digest
        makes the result attest the whole prefix of the execution, not just
        the instantaneous state — the recorder and replayers both roll the
        chain forward, so the first mismatching sentinel brackets a
        divergence to one inter-sentinel window.  No memory walk: cheap
        enough to emit every few hundred log records.
        """
        cpu = self.cpu
        header = (
            ",".join(str(reg) for reg in cpu.regs)
            + f";{cpu.pc};{cpu.user};{cpu.int_enabled};{cpu.icount}"
        ).encode()
        return zlib.crc32(header, prev)

    def state_digest(self) -> int:
        """CRC of all architectural state: registers plus mapped memory.

        Recorded at the end of a recording and re-checked by replayers —
        the strongest available evidence that replay was deterministic.
        The page walk hashes the ``repr`` of each snapshot tuple: this is
        the digest baked into every existing End record, so changing the
        algorithm would invalidate recorded sessions.  The cheap raw-bytes
        walk lives in :meth:`fast_digest` instead.
        """
        crc = self.cpu_digest()
        indices = sorted(self.memory.mapped_pages())
        snapshots = self.memory.snapshot_pages(indices)
        for index in indices:
            crc = zlib.crc32(repr(snapshots[index]).encode(), crc)
        return crc

    def fast_digest(self) -> int:
        """Raw-bytes CRC of all architectural state (intra-run use only).

        ~20x cheaper than :meth:`state_digest` — no per-page tuple/repr
        materialisation — but a *different* CRC, so it is never written to
        logs or stores.  Use it where both sides of a comparison are
        computed fresh by the same code, e.g. the epoch seed/final digest
        checks that stitch a parallel CR replay.
        """
        return self.memory.digest(self.cpu_digest())
