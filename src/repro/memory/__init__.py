"""Guest physical memory: sparse paging, permissions, MMIO, dirty tracking.

The recorded VM's memory is word-addressed and organized in pages.  Pages
carry read/write/execute/user permission bits and the module enforces the
W⊕X invariant the paper assumes as its baseline defence (a page may be
writable or executable, never both).  Dirty-page tracking feeds the
checkpointing replayer's incremental copy-on-write checkpoints.
"""

from repro.memory.paging import (
    PERM_EXEC,
    PERM_NONE,
    PERM_READ,
    PERM_USER,
    PERM_WRITE,
    AccessKind,
    AccessViolation,
    describe_perms,
)
from repro.memory.physical import PhysicalMemory
from repro.memory.mmio import MmioRegion, MmioRegistry

__all__ = [
    "PERM_NONE",
    "PERM_READ",
    "PERM_WRITE",
    "PERM_EXEC",
    "PERM_USER",
    "AccessKind",
    "AccessViolation",
    "describe_perms",
    "PhysicalMemory",
    "MmioRegion",
    "MmioRegistry",
]
