"""Sparse, paged guest physical memory with dirty tracking and snapshots.

Guest accesses (:meth:`PhysicalMemory.load`, :meth:`store`, :meth:`fetch`)
enforce per-page permissions and the W⊕X invariant.  Host accesses
(:meth:`read_word`, :meth:`write_word`) bypass permissions — they model the
hypervisor and DMA engines, which operate on physical memory directly.

Dirty-page tracking is the substrate for incremental checkpoints: the
checkpointing replayer snapshots exactly the pages dirtied since the previous
checkpoint and keeps pointers for the rest (paper §4.6.1).

Performance notes.  Pages are backed by compact ``array('Q')`` storage and
word writes are masked to 64 bits, so a page costs 8 bytes/word instead of a
list of boxed ints.  Permission checks on the guest paths are inlined bit
tests (no enum dispatch), MMIO membership is a ``bisect`` over sorted range
starts, and writes skip observer notification entirely when no observer is
registered.  The :attr:`version` counter increments whenever the page-table
shape changes (mapping, permissions, page-object replacement); the CPU's
fetch-page cache uses it to decide when a cached page reference is stale.
In-place word writes do *not* bump the version — caches hold live page
objects, so content mutations are visible through them — with one
exception: writes that land in an *executable* page bump it, because the
trace-cache backend bakes decoded instructions into translated blocks and
must retranslate after self-modifying code (guest SMC requires
``enforce_wx=False``; host writes and DMA can always reach code pages).
"""

from __future__ import annotations

import zlib
from array import array
from bisect import bisect_right
from typing import Callable, Iterable

from repro.errors import MemoryError_
from repro.memory.paging import (
    PERM_EXEC,
    PERM_READ,
    PERM_USER,
    PERM_WRITE,
    AccessKind,
    AccessViolation,
)

_WORD_MASK = 0xFFFF_FFFF_FFFF_FFFF


class PhysicalMemory:
    """Word-addressed guest physical memory.

    Pages materialize lazily (zero-filled) when first mapped.  Unmapped
    addresses fault on guest access and raise :class:`MemoryError_` on host
    access, since a host touching unmapped memory is a simulator bug.
    """

    def __init__(self, page_size: int = 256, enforce_wx: bool = True):
        if page_size <= 0:
            raise MemoryError_(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.enforce_wx = enforce_wx
        self._pages: dict[int, array] = {}
        self._perms: dict[int, int] = {}
        self._dirty: set[int] = set()
        self._mmio_ranges: list[tuple[int, int]] = []
        #: Sorted MMIO interval endpoints for bisect membership tests.
        self._mmio_starts: list[int] = []
        self._mmio_ends: list[int] = []
        #: Callables invoked with the written address after any write.
        self.write_observers: list[Callable[[int], None]] = []
        #: Bumped whenever mapping/permission state or a page *object*
        #: changes; consumers (the CPU fetch-page cache) compare it to
        #: decide whether cached page references are still valid.
        self.version = 0

    def _zero_page(self) -> array:
        return array("Q", bytes(8 * self.page_size))

    # ------------------------------------------------------------------
    # mapping and permissions
    # ------------------------------------------------------------------

    def map_range(self, start: int, length: int, perms: int):
        """Map ``length`` words starting at ``start`` with ``perms``."""
        if length <= 0:
            raise MemoryError_("cannot map an empty range")
        first = start // self.page_size
        last = (start + length - 1) // self.page_size
        for index in range(first, last + 1):
            self.set_page_perms(index, perms)

    def set_page_perms(self, page_index: int, perms: int):
        """Set a page's permissions, enforcing W⊕X and materializing it."""
        if self.enforce_wx and perms & PERM_WRITE and perms & PERM_EXEC:
            raise MemoryError_(
                f"page {page_index}: W and X together violate W⊕X"
            )
        self._perms[page_index] = perms
        if page_index not in self._pages:
            self._pages[page_index] = self._zero_page()
        self.version += 1

    def page_perms(self, page_index: int) -> int:
        """Return a page's permission bits (0 when unmapped)."""
        return self._perms.get(page_index, 0)

    def is_mapped(self, addr: int) -> bool:
        """Return whether ``addr`` falls in a mapped page."""
        return addr // self.page_size in self._perms

    # ------------------------------------------------------------------
    # MMIO
    # ------------------------------------------------------------------

    def add_mmio_range(self, start: int, length: int):
        """Mark an address range as memory-mapped I/O.

        Guest loads/stores that hit an MMIO range are *not* served from RAM;
        the CPU reports them to the hypervisor, which emulates the device
        (and records the result during recording).
        """
        for existing_start, existing_end in self._mmio_ranges:
            if start < existing_end and existing_start < start + length:
                raise MemoryError_("overlapping MMIO ranges")
        self._mmio_ranges.append((start, start + length))
        self._mmio_ranges.sort()
        self._mmio_starts = [lo for lo, _ in self._mmio_ranges]
        self._mmio_ends = [hi for _, hi in self._mmio_ranges]
        self.version += 1

    @property
    def mmio_bounds(self) -> tuple[int, int]:
        """(lowest start, highest end) over all MMIO ranges; (1, 0) if none.

        A cheap pre-filter for the hot load/store path: addresses outside
        the bounds cannot be MMIO, and the empty sentinel (1, 0) rejects
        every address.
        """
        if not self._mmio_starts:
            return (1, 0)
        return (self._mmio_starts[0], self._mmio_ends[-1])

    def is_mmio(self, addr: int) -> bool:
        """Return whether ``addr`` is in a registered MMIO range."""
        position = bisect_right(self._mmio_starts, addr)
        return position > 0 and addr < self._mmio_ends[position - 1]

    # ------------------------------------------------------------------
    # guest accesses (permission-checked)
    # ------------------------------------------------------------------

    def load(self, addr: int, user: bool) -> int:
        """Permission-checked guest read."""
        page_index = addr // self.page_size
        perms = self._perms.get(page_index, 0)
        if not perms & PERM_READ or (user and not perms & PERM_USER):
            raise AccessViolation(addr, AccessKind.READ, perms, user)
        return self._pages[page_index][addr % self.page_size]

    def store(self, addr: int, value: int, user: bool):
        """Permission-checked guest write."""
        page_index = addr // self.page_size
        perms = self._perms.get(page_index, 0)
        if not perms & PERM_WRITE or (user and not perms & PERM_USER):
            raise AccessViolation(addr, AccessKind.WRITE, perms, user)
        self._pages[page_index][addr % self.page_size] = value & _WORD_MASK
        self._dirty.add(page_index)
        if perms & PERM_EXEC:
            # Self-modifying code: translated blocks may now be stale.
            self.version += 1
        if self.write_observers:
            for observer in self.write_observers:
                observer(addr)

    def fetch(self, addr: int, user: bool) -> int:
        """Permission-checked instruction fetch."""
        page_index = addr // self.page_size
        perms = self._perms.get(page_index, 0)
        if not perms & PERM_EXEC or (user and not perms & PERM_USER):
            raise AccessViolation(addr, AccessKind.FETCH, perms, user)
        return self._pages[page_index][addr % self.page_size]

    def fetch_page(self, addr: int, user: bool) -> tuple[array, int, int]:
        """Fetch-check ``addr`` and return its whole page as (page, lo, hi).

        The caller may serve subsequent fetches of addresses in [lo, hi) in
        the same mode directly from ``page`` until :attr:`version` changes —
        the page is returned by reference, so in-place content writes stay
        visible.
        """
        page_index = addr // self.page_size
        perms = self._perms.get(page_index, 0)
        if not perms & PERM_EXEC or (user and not perms & PERM_USER):
            raise AccessViolation(addr, AccessKind.FETCH, perms, user)
        lo = page_index * self.page_size
        return self._pages[page_index], lo, lo + self.page_size

    # ------------------------------------------------------------------
    # host accesses (hypervisor / DMA; no permission checks)
    # ------------------------------------------------------------------

    def read_word(self, addr: int) -> int:
        """Host read of one word."""
        page = self._pages.get(addr // self.page_size)
        if page is None:
            raise MemoryError_(f"host read of unmapped address {addr:#x}")
        return page[addr % self.page_size]

    def write_word(self, addr: int, value: int):
        """Host write of one word (DMA, log injection, exploit staging)."""
        page_index = addr // self.page_size
        page = self._pages.get(page_index)
        if page is None:
            raise MemoryError_(f"host write of unmapped address {addr:#x}")
        page[addr % self.page_size] = value & _WORD_MASK
        self._dirty.add(page_index)
        if self._perms.get(page_index, 0) & PERM_EXEC:
            # Host-side code patching: stale translations must flush.
            self.version += 1
        if self.write_observers:
            for observer in self.write_observers:
                observer(addr)

    def read_block(self, addr: int, count: int) -> list[int]:
        """Host read of ``count`` consecutive words."""
        if count <= 0:
            return []
        page_size = self.page_size
        out: list[int] = []
        remaining = count
        while remaining > 0:
            page_index = addr // page_size
            page = self._pages.get(page_index)
            if page is None:
                raise MemoryError_(
                    f"host read of unmapped address {addr:#x}"
                )
            offset = addr % page_size
            take = min(remaining, page_size - offset)
            out.extend(page[offset:offset + take])
            addr += take
            remaining -= take
        return out

    def write_block(self, addr: int, values: Iterable[int]):
        """Host write of consecutive words starting at ``addr``.

        Words are copied page-slice at a time; observers are notified once
        per written address *after* the whole block lands (batched), which
        preserves the per-address callback signature while keeping the copy
        loop tight.
        """
        words = [v & _WORD_MASK for v in values]
        if not words:
            return
        page_size = self.page_size
        start = addr
        position = 0
        total = len(words)
        while position < total:
            page_index = addr // page_size
            page = self._pages.get(page_index)
            if page is None:
                raise MemoryError_(
                    f"host write of unmapped address {addr:#x}"
                )
            offset = addr % page_size
            take = min(total - position, page_size - offset)
            page[offset:offset + take] = array(
                "Q", words[position:position + take]
            )
            self._dirty.add(page_index)
            if self._perms.get(page_index, 0) & PERM_EXEC:
                # DMA into a code page: stale translations must flush.
                self.version += 1
            addr += take
            position += take
        if self.write_observers:
            for observer in self.write_observers:
                for offset in range(total):
                    observer(start + offset)

    # ------------------------------------------------------------------
    # dirty tracking and snapshots
    # ------------------------------------------------------------------

    def dirty_pages(self) -> frozenset[int]:
        """Pages written since the last :meth:`clear_dirty`."""
        return frozenset(self._dirty)

    def clear_dirty(self):
        """Reset the dirty set (called when a checkpoint closes)."""
        self._dirty.clear()

    def mapped_pages(self) -> frozenset[int]:
        """All mapped page indices."""
        return frozenset(self._perms)

    def digest(self, crc: int = 0) -> int:
        """CRC of every mapped page's raw contents, chained onto ``crc``.

        The fast path behind ``GuestMachine.fast_digest``: hashing the
        page arrays' bytes directly costs neither the tuple copy nor the
        ``repr`` formatting a per-word walk would, which matters because
        epoch-parallel replay digests the full machine twice per epoch
        (seed and final) to chain the stitch verification.  Deliberately
        *not* the End-record digest (``GuestMachine.state_digest``), whose
        algorithm is frozen into every recorded session.
        """
        for index in sorted(self._perms):
            page = self._pages.get(index)
            if page is None:
                raise MemoryError_(f"digest of unmapped page {index}")
            crc = zlib.crc32(page.tobytes(), crc)
        return crc

    def snapshot_pages(self, indices: Iterable[int]) -> dict[int, tuple[int, ...]]:
        """Copy the contents of the given pages (for checkpoints)."""
        snapshot = {}
        for index in indices:
            page = self._pages.get(index)
            if page is None:
                raise MemoryError_(f"snapshot of unmapped page {index}")
            snapshot[index] = tuple(page)
        return snapshot

    def restore_pages(self, snapshot: dict[int, tuple[int, ...]]):
        """Restore page contents captured by :meth:`snapshot_pages`."""
        for index, words in snapshot.items():
            self._pages[index] = array("Q", words)
            self._dirty.add(index)
        # Page objects were replaced, so cached references are stale.
        self.version += 1
        if self.write_observers:
            page_size = self.page_size
            for observer in self.write_observers:
                for index in snapshot:
                    observer(index * page_size)

    def snapshot_full(self) -> dict[int, tuple[int, ...]]:
        """Copy every mapped page (used by the first, full checkpoint)."""
        return self.snapshot_pages(self._pages.keys())

    def perms_snapshot(self) -> dict[int, int]:
        """Copy the permission map (restored together with page contents)."""
        return dict(self._perms)

    def restore_perms(self, perms: dict[int, int]):
        """Restore a permission map captured by :meth:`perms_snapshot`.

        Pages mapped now but absent from the restored map are dropped —
        leaving them behind would let host reads of since-unmapped pages
        silently succeed after a checkpoint restore.
        """
        self._perms = dict(perms)
        for index in perms:
            if index not in self._pages:
                self._pages[index] = self._zero_page()
        for index in [i for i in self._pages if i not in perms]:
            del self._pages[index]
            self._dirty.discard(index)
        self.version += 1
