"""Sparse, paged guest physical memory with dirty tracking and snapshots.

Guest accesses (:meth:`PhysicalMemory.load`, :meth:`store`, :meth:`fetch`)
enforce per-page permissions and the W⊕X invariant.  Host accesses
(:meth:`read_word`, :meth:`write_word`) bypass permissions — they model the
hypervisor and DMA engines, which operate on physical memory directly.

Dirty-page tracking is the substrate for incremental checkpoints: the
checkpointing replayer snapshots exactly the pages dirtied since the previous
checkpoint and keeps pointers for the rest (paper §4.6.1).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import MemoryError_
from repro.memory.paging import (
    PERM_EXEC,
    PERM_WRITE,
    AccessKind,
    AccessViolation,
    check_access,
)

_WORD_MASK = 0xFFFF_FFFF_FFFF_FFFF


class PhysicalMemory:
    """Word-addressed guest physical memory.

    Pages materialize lazily (zero-filled) when first mapped.  Unmapped
    addresses fault on guest access and raise :class:`MemoryError_` on host
    access, since a host touching unmapped memory is a simulator bug.
    """

    def __init__(self, page_size: int = 256, enforce_wx: bool = True):
        if page_size <= 0:
            raise MemoryError_(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.enforce_wx = enforce_wx
        self._pages: dict[int, list[int]] = {}
        self._perms: dict[int, int] = {}
        self._dirty: set[int] = set()
        self._mmio_ranges: list[tuple[int, int]] = []
        #: Callables invoked with the written address after any write.
        self.write_observers: list[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # mapping and permissions
    # ------------------------------------------------------------------

    def map_range(self, start: int, length: int, perms: int):
        """Map ``length`` words starting at ``start`` with ``perms``."""
        if length <= 0:
            raise MemoryError_("cannot map an empty range")
        first = start // self.page_size
        last = (start + length - 1) // self.page_size
        for index in range(first, last + 1):
            self.set_page_perms(index, perms)

    def set_page_perms(self, page_index: int, perms: int):
        """Set a page's permissions, enforcing W⊕X and materializing it."""
        if self.enforce_wx and perms & PERM_WRITE and perms & PERM_EXEC:
            raise MemoryError_(
                f"page {page_index}: W and X together violate W⊕X"
            )
        self._perms[page_index] = perms
        if page_index not in self._pages:
            self._pages[page_index] = [0] * self.page_size

    def page_perms(self, page_index: int) -> int:
        """Return a page's permission bits (0 when unmapped)."""
        return self._perms.get(page_index, 0)

    def is_mapped(self, addr: int) -> bool:
        """Return whether ``addr`` falls in a mapped page."""
        return addr // self.page_size in self._perms

    # ------------------------------------------------------------------
    # MMIO
    # ------------------------------------------------------------------

    def add_mmio_range(self, start: int, length: int):
        """Mark an address range as memory-mapped I/O.

        Guest loads/stores that hit an MMIO range are *not* served from RAM;
        the CPU reports them to the hypervisor, which emulates the device
        (and records the result during recording).
        """
        for existing_start, existing_end in self._mmio_ranges:
            if start < existing_end and existing_start < start + length:
                raise MemoryError_("overlapping MMIO ranges")
        self._mmio_ranges.append((start, start + length))

    def is_mmio(self, addr: int) -> bool:
        """Return whether ``addr`` is in a registered MMIO range."""
        for start, end in self._mmio_ranges:
            if start <= addr < end:
                return True
        return False

    # ------------------------------------------------------------------
    # guest accesses (permission-checked)
    # ------------------------------------------------------------------

    def load(self, addr: int, user: bool) -> int:
        """Permission-checked guest read."""
        page = self._guest_page(addr, AccessKind.READ, user)
        return page[addr % self.page_size]

    def store(self, addr: int, value: int, user: bool):
        """Permission-checked guest write."""
        page_index = addr // self.page_size
        perms = self._perms.get(page_index, 0)
        if not check_access(perms, AccessKind.WRITE, user):
            raise AccessViolation(addr, AccessKind.WRITE, perms, user)
        self._pages[page_index][addr % self.page_size] = value & _WORD_MASK
        self._dirty.add(page_index)
        for observer in self.write_observers:
            observer(addr)

    def fetch(self, addr: int, user: bool) -> int:
        """Permission-checked instruction fetch."""
        page = self._guest_page(addr, AccessKind.FETCH, user)
        return page[addr % self.page_size]

    def _guest_page(self, addr: int, kind: AccessKind, user: bool) -> list[int]:
        page_index = addr // self.page_size
        perms = self._perms.get(page_index, 0)
        if not check_access(perms, kind, user):
            raise AccessViolation(addr, kind, perms, user)
        return self._pages[page_index]

    # ------------------------------------------------------------------
    # host accesses (hypervisor / DMA; no permission checks)
    # ------------------------------------------------------------------

    def read_word(self, addr: int) -> int:
        """Host read of one word."""
        page = self._pages.get(addr // self.page_size)
        if page is None:
            raise MemoryError_(f"host read of unmapped address {addr:#x}")
        return page[addr % self.page_size]

    def write_word(self, addr: int, value: int):
        """Host write of one word (DMA, log injection, exploit staging)."""
        page_index = addr // self.page_size
        page = self._pages.get(page_index)
        if page is None:
            raise MemoryError_(f"host write of unmapped address {addr:#x}")
        page[addr % self.page_size] = value & _WORD_MASK
        self._dirty.add(page_index)
        for observer in self.write_observers:
            observer(addr)

    def read_block(self, addr: int, count: int) -> list[int]:
        """Host read of ``count`` consecutive words."""
        return [self.read_word(addr + i) for i in range(count)]

    def write_block(self, addr: int, values: Iterable[int]):
        """Host write of consecutive words starting at ``addr``."""
        for offset, value in enumerate(values):
            self.write_word(addr + offset, value)

    # ------------------------------------------------------------------
    # dirty tracking and snapshots
    # ------------------------------------------------------------------

    def dirty_pages(self) -> frozenset[int]:
        """Pages written since the last :meth:`clear_dirty`."""
        return frozenset(self._dirty)

    def clear_dirty(self):
        """Reset the dirty set (called when a checkpoint closes)."""
        self._dirty.clear()

    def mapped_pages(self) -> frozenset[int]:
        """All mapped page indices."""
        return frozenset(self._perms)

    def snapshot_pages(self, indices: Iterable[int]) -> dict[int, tuple[int, ...]]:
        """Copy the contents of the given pages (for checkpoints)."""
        snapshot = {}
        for index in indices:
            page = self._pages.get(index)
            if page is None:
                raise MemoryError_(f"snapshot of unmapped page {index}")
            snapshot[index] = tuple(page)
        return snapshot

    def restore_pages(self, snapshot: dict[int, tuple[int, ...]]):
        """Restore page contents captured by :meth:`snapshot_pages`."""
        for index, words in snapshot.items():
            if index not in self._pages:
                self._pages[index] = [0] * self.page_size
            self._pages[index][:] = list(words)
            self._dirty.add(index)
        changed = set(snapshot)
        for observer in self.write_observers:
            for index in changed:
                observer(index * self.page_size)

    def snapshot_full(self) -> dict[int, tuple[int, ...]]:
        """Copy every mapped page (used by the first, full checkpoint)."""
        return self.snapshot_pages(self._pages.keys())

    def perms_snapshot(self) -> dict[int, int]:
        """Copy the permission map (restored together with page contents)."""
        return dict(self._perms)

    def restore_perms(self, perms: dict[int, int]):
        """Restore a permission map captured by :meth:`perms_snapshot`."""
        self._perms = dict(perms)
        for index in perms:
            if index not in self._pages:
                self._pages[index] = [0] * self.page_size
