"""MMIO dispatch: mapping device register windows to device models.

The CPU never reads MMIO from RAM; it reports the access to the hypervisor,
which resolves the target device here and emulates the access.  During
recording the returned value is written to the input log; during replay the
logged value is injected instead of consulting the device at all (§7.3).
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import DeviceError


class MmioRegion(Protocol):
    """Interface a device exposes for its MMIO register window."""

    def mmio_read(self, offset: int) -> int:
        """Read the register at ``offset`` within the device window."""
        ...

    def mmio_write(self, offset: int, value: int) -> None:
        """Write the register at ``offset`` within the device window."""
        ...


class MmioRegistry:
    """Maps guest physical addresses to device register windows."""

    def __init__(self):
        self._regions: list[tuple[int, int, MmioRegion]] = []

    def register(self, start: int, length: int, device: MmioRegion):
        """Attach ``device`` to the window ``[start, start+length)``."""
        for existing_start, existing_end, _ in self._regions:
            if start < existing_end and existing_start < start + length:
                raise DeviceError(
                    f"MMIO window {start:#x}+{length} overlaps an existing one"
                )
        self._regions.append((start, start + length, device))

    def resolve(self, addr: int) -> tuple[MmioRegion, int]:
        """Return ``(device, offset)`` for ``addr``."""
        for start, end, device in self._regions:
            if start <= addr < end:
                return device, addr - start
        raise DeviceError(f"no device behind MMIO address {addr:#x}")

    def read(self, addr: int) -> int:
        """Emulate an MMIO read."""
        device, offset = self.resolve(addr)
        return device.mmio_read(offset)

    def write(self, addr: int, value: int):
        """Emulate an MMIO write."""
        device, offset = self.resolve(addr)
        device.mmio_write(offset, value)
