"""Page permissions and architectural access violations.

Permissions are per-page bit flags.  ``PERM_USER`` marks a page accessible
from user mode; kernel pages (task structs, kernel stacks, kernel code) omit
it, which is what lets the hypervisor keep the BackRAS and whitelists "out of
the kernel's reach" — they live outside guest memory entirely — while the
guest kernel keeps its own data away from user code.
"""

from __future__ import annotations

import enum

PERM_NONE = 0
PERM_READ = 1
PERM_WRITE = 2
PERM_EXEC = 4
PERM_USER = 8

#: Convenience combinations.
PERM_RW = PERM_READ | PERM_WRITE
PERM_RX = PERM_READ | PERM_EXEC


class AccessKind(enum.Enum):
    """What the guest was doing when it touched memory."""

    READ = "read"
    WRITE = "write"
    FETCH = "fetch"


class AccessViolation(Exception):
    """Architectural memory fault raised on a disallowed guest access.

    This is *guest-visible* state, not a library error: the CPU catches it
    and turns it into a guest fault (which the kernel's recovery path or the
    hypervisor then handles).
    """

    def __init__(self, addr: int, kind: AccessKind, perms: int, user: bool):
        self.addr = addr
        self.kind = kind
        self.perms = perms
        self.user = user
        mode = "user" if user else "kernel"
        super().__init__(
            f"{kind.value} of {addr:#x} denied in {mode} mode "
            f"(page perms {describe_perms(perms)})"
        )


def describe_perms(perms: int) -> str:
    """Render permission bits as an ``rwxu`` string."""
    return "".join(
        letter if perms & bit else "-"
        for letter, bit in (
            ("r", PERM_READ),
            ("w", PERM_WRITE),
            ("x", PERM_EXEC),
            ("u", PERM_USER),
        )
    )


def check_access(perms: int, kind: AccessKind, user: bool) -> bool:
    """Return whether an access of ``kind`` in the given mode is allowed."""
    if user and not perms & PERM_USER:
        return False
    if kind is AccessKind.READ:
        return bool(perms & PERM_READ)
    if kind is AccessKind.WRITE:
        return bool(perms & PERM_WRITE)
    return bool(perms & PERM_EXEC)
