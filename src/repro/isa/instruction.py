"""Instruction representation and binary encoding.

Every instruction packs into one 64-bit word::

    bits 56..63   opcode byte
    bits 52..55   rd
    bits 48..51   rs1
    bits 44..47   rs2
    bits 32..43   must be zero (decode validity check)
    bits  0..31   imm, two's-complement signed 32-bit

The reversible encoding matters for two reasons.  First, the gadget scanner
(Appendix A) works the way a real attacker does: it walks the raw words of
the victim binary looking for ``ret`` instructions and decodes the words
before them.  Second, checkpoints store memory as plain integers, so code and
data are uniformly snapshotted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError
from repro.isa.opcodes import (
    Opcode,
    REG_COUNT,
    SIGNATURES,
    is_valid_opcode_byte,
)

_IMM_MIN = -(2**31)
_IMM_MAX = 2**31 - 1
_ZERO_FIELD_MASK = 0xFFF_0000_0000  # bits 32..43


@dataclass(frozen=True, slots=True)
class Instruction:
    """A decoded guest instruction."""

    op: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self):
        for name, reg in (("rd", self.rd), ("rs1", self.rs1), ("rs2", self.rs2)):
            if not 0 <= reg < REG_COUNT:
                raise DecodeError(f"{name}={reg} out of range for {self.op.name}")
        if not _IMM_MIN <= self.imm <= _IMM_MAX:
            raise DecodeError(f"imm={self.imm} out of 32-bit signed range")

    @property
    def signature(self) -> str:
        """Operand signature string (see :data:`repro.isa.opcodes.SIGNATURES`)."""
        return SIGNATURES[self.op]

    def encode(self) -> int:
        """Pack this instruction into its 64-bit machine word."""
        return encode(self)


def encode(instr: Instruction) -> int:
    """Pack ``instr`` into a 64-bit machine word."""
    word = int(instr.op) << 56
    word |= (instr.rd & 0xF) << 52
    word |= (instr.rs1 & 0xF) << 48
    word |= (instr.rs2 & 0xF) << 44
    word |= instr.imm & 0xFFFF_FFFF
    return word


def decode(word: int) -> Instruction:
    """Decode a 64-bit machine word, raising :class:`DecodeError` if invalid.

    A word is a valid instruction only if its opcode byte names a real
    opcode and the reserved bits 32..43 are zero.  Arbitrary data words
    therefore almost never decode, which keeps gadget scanning honest.
    """
    if not 0 <= word < 2**64:
        raise DecodeError(f"word {word:#x} is not a 64-bit value")
    if word & _ZERO_FIELD_MASK:
        raise DecodeError(f"word {word:#x} has nonzero reserved bits")
    op_byte = (word >> 56) & 0xFF
    if not is_valid_opcode_byte(op_byte):
        raise DecodeError(f"word {word:#x} has invalid opcode byte {op_byte:#x}")
    imm = word & 0xFFFF_FFFF
    if imm >= 2**31:
        imm -= 2**32
    return Instruction(
        op=Opcode(op_byte),
        rd=(word >> 52) & 0xF,
        rs1=(word >> 48) & 0xF,
        rs2=(word >> 44) & 0xF,
        imm=imm,
    )


def try_decode(word: int) -> Instruction | None:
    """Decode a word, returning ``None`` instead of raising on invalid words.

    This is the scanner-facing entry point: image scans probe every word and
    most data words are not instructions.
    """
    try:
        return decode(word)
    except DecodeError:
        return None
