"""Disassembler for guest machine words.

Used by attack forensics (showing the gadget chain an attacker staged on the
stack), by the gadget scanner's reporting, and by debugging aids in tests.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction, try_decode
from repro.isa.opcodes import FP, RV, SIGNATURES, SP

_REG_NAMES = {SP: "sp", FP: "fp", RV: "rv"}


def _reg(index: int) -> str:
    return _REG_NAMES.get(index, f"r{index}")


def format_instruction(instr: Instruction) -> str:
    """Render one instruction in assembler syntax."""
    mnemonic = instr.op.name.lower().rstrip("_")
    parts = []
    for slot in SIGNATURES[instr.op]:
        if slot == "d":
            parts.append(_reg(instr.rd))
        elif slot == "a":
            parts.append(_reg(instr.rs1))
        elif slot == "b":
            parts.append(_reg(instr.rs2))
        else:
            parts.append(str(instr.imm))
    if parts:
        return f"{mnemonic} {', '.join(parts)}"
    return mnemonic


def disassemble(word: int) -> str:
    """Render one machine word, falling back to ``.word`` for data."""
    instr = try_decode(word)
    if instr is None:
        return f".word {word:#x}"
    return format_instruction(instr)


def disassemble_range(read_word, start: int, count: int) -> list[str]:
    """Disassemble ``count`` words starting at ``start``.

    ``read_word`` is any ``addr -> int`` callable (typically
    ``memory.read_word``), so this works on live guests and on checkpointed
    images alike.
    """
    lines = []
    for offset in range(count):
        addr = start + offset
        lines.append(f"{addr:#08x}:  {disassemble(read_word(addr))}")
    return lines
