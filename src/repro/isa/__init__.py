"""Guest instruction-set architecture.

A compact, word-addressed RISC-like ISA rich enough to express the guest
kernel, user workloads, and ROP/JOP gadget chains.  Every instruction
occupies exactly one 64-bit memory word and has a reversible binary
encoding, so binary images can be scanned for gadgets (Appendix A of the
paper) and disassembled for forensics.
"""

from repro.isa.opcodes import Opcode, REG_COUNT, SP, FP, RV, NUM_PORTS
from repro.isa.instruction import Instruction, encode, decode, try_decode
from repro.isa.assembler import Asm, AssembledImage, assemble_text
from repro.isa.disassembler import disassemble, disassemble_range

__all__ = [
    "Opcode",
    "REG_COUNT",
    "SP",
    "FP",
    "RV",
    "NUM_PORTS",
    "Instruction",
    "encode",
    "decode",
    "try_decode",
    "Asm",
    "AssembledImage",
    "assemble_text",
    "disassemble",
    "disassemble_range",
]
