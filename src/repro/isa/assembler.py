"""Two-pass assembler for the guest ISA.

Two front ends share one back end:

* :class:`Asm` — a programmatic builder used by the kernel image builder and
  the workload generators (Python loops compose naturally with it);
* :func:`assemble_text` — a small text syntax for tests and examples.

Both produce an :class:`AssembledImage`: a base address, the machine words,
a symbol table, and a function map ``name -> (start, end)``.  The function
map feeds the JOP detector's function-boundary table and attack forensics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.isa.instruction import Instruction, encode
from repro.isa.opcodes import FP, RV, SIGNATURES, SP, Opcode

#: Operand that may be a literal or a (possibly offset) label reference.
Operand = int | str


@dataclass(frozen=True)
class AssembledImage:
    """The output of assembly: words to load plus metadata."""

    base: int
    words: tuple[int, ...]
    symbols: dict[str, int]
    functions: dict[str, tuple[int, int]]

    @property
    def end(self) -> int:
        """First address past the image."""
        return self.base + len(self.words)

    def addr_of(self, symbol: str) -> int:
        """Resolve a symbol to its address."""
        if symbol not in self.symbols:
            raise AssemblerError(f"unknown symbol {symbol!r}")
        return self.symbols[symbol]

    def items(self):
        """Iterate ``(address, word)`` pairs for loading into memory."""
        for offset, word in enumerate(self.words):
            yield self.base + offset, word

    def function_at(self, addr: int) -> str | None:
        """Return the name of the function containing ``addr``, if any."""
        for name, (start, end) in self.functions.items():
            if start <= addr < end:
                return name
        return None


@dataclass
class _Pending:
    """One yet-unresolved emission slot."""

    kind: str  # "instr" or "word"
    op: Opcode | None = None
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: Operand = 0
    value: Operand = 0


class Asm:
    """Programmatic assembler: emit instructions, then :meth:`assemble`.

    Immediate operands may be integers, label names, or ``"label+N"`` /
    ``"label-N"`` offset expressions; labels are resolved in a second pass.
    """

    def __init__(self, base: int = 0):
        self.base = base
        self._items: list[_Pending] = []
        self._symbols: dict[str, int] = {}
        self._functions: dict[str, tuple[int, int]] = {}
        self._open_function: tuple[str, int] | None = None

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------

    @property
    def here(self) -> int:
        """Address of the next emitted word."""
        return self.base + len(self._items)

    def label(self, name: str) -> int:
        """Define ``name`` at the current address and return that address."""
        if name in self._symbols:
            raise AssemblerError(f"duplicate label {name!r}")
        self._symbols[name] = self.here
        return self.here

    def begin_function(self, name: str) -> int:
        """Open a function: defines a label and starts its address range."""
        if self._open_function is not None:
            raise AssemblerError(
                f"function {self._open_function[0]!r} still open"
            )
        addr = self.label(name)
        self._open_function = (name, addr)
        return addr

    def end_function(self):
        """Close the currently open function, recording its range."""
        if self._open_function is None:
            raise AssemblerError("no open function")
        name, start = self._open_function
        self._functions[name] = (start, self.here)
        self._open_function = None

    def word(self, value: Operand):
        """Emit one raw data word (or a label address)."""
        self._items.append(_Pending(kind="word", value=value))

    def space(self, count: int, fill: int = 0):
        """Emit ``count`` filler words."""
        for _ in range(count):
            self.word(fill)

    def emit(self, op: Opcode, rd: int = 0, rs1: int = 0, rs2: int = 0,
             imm: Operand = 0):
        """Emit one instruction; ``imm`` may be a label reference."""
        self._items.append(
            _Pending(kind="instr", op=op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
        )

    # ------------------------------------------------------------------
    # instruction mnemonics
    # ------------------------------------------------------------------

    def nop(self):
        self.emit(Opcode.NOP)

    def hlt(self):
        self.emit(Opcode.HLT)

    def li(self, rd: int, imm: Operand):
        self.emit(Opcode.LI, rd=rd, imm=imm)

    def mov(self, rd: int, rs: int):
        self.emit(Opcode.MOV, rd=rd, rs1=rs)

    def add(self, rd: int, rs1: int, rs2: int):
        self.emit(Opcode.ADD, rd=rd, rs1=rs1, rs2=rs2)

    def sub(self, rd: int, rs1: int, rs2: int):
        self.emit(Opcode.SUB, rd=rd, rs1=rs1, rs2=rs2)

    def mul(self, rd: int, rs1: int, rs2: int):
        self.emit(Opcode.MUL, rd=rd, rs1=rs1, rs2=rs2)

    def div(self, rd: int, rs1: int, rs2: int):
        self.emit(Opcode.DIV, rd=rd, rs1=rs1, rs2=rs2)

    def and_(self, rd: int, rs1: int, rs2: int):
        self.emit(Opcode.AND, rd=rd, rs1=rs1, rs2=rs2)

    def or_(self, rd: int, rs1: int, rs2: int):
        self.emit(Opcode.OR, rd=rd, rs1=rs1, rs2=rs2)

    def xor(self, rd: int, rs1: int, rs2: int):
        self.emit(Opcode.XOR, rd=rd, rs1=rs1, rs2=rs2)

    def shl(self, rd: int, rs1: int, rs2: int):
        self.emit(Opcode.SHL, rd=rd, rs1=rs1, rs2=rs2)

    def shr(self, rd: int, rs1: int, rs2: int):
        self.emit(Opcode.SHR, rd=rd, rs1=rs1, rs2=rs2)

    def addi(self, rd: int, rs1: int, imm: Operand):
        self.emit(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm)

    def cmp(self, rs1: int, rs2: int):
        self.emit(Opcode.CMP, rs1=rs1, rs2=rs2)

    def cmpi(self, rs1: int, imm: Operand):
        self.emit(Opcode.CMPI, rs1=rs1, imm=imm)

    def ld(self, rd: int, rs1: int, imm: Operand = 0):
        self.emit(Opcode.LD, rd=rd, rs1=rs1, imm=imm)

    def st(self, rs1: int, rs2: int, imm: Operand = 0):
        self.emit(Opcode.ST, rs1=rs1, rs2=rs2, imm=imm)

    def push(self, rs: int):
        self.emit(Opcode.PUSH, rs1=rs)

    def pop(self, rd: int):
        self.emit(Opcode.POP, rd=rd)

    def call(self, target: Operand):
        self.emit(Opcode.CALL, imm=target)

    def calli(self, rs: int):
        self.emit(Opcode.CALLI, rs1=rs)

    def ret(self):
        self.emit(Opcode.RET)

    def jmp(self, target: Operand):
        self.emit(Opcode.JMP, imm=target)

    def jmpi(self, rs: int):
        self.emit(Opcode.JMPI, rs1=rs)

    def jz(self, target: Operand):
        self.emit(Opcode.JZ, imm=target)

    def jnz(self, target: Operand):
        self.emit(Opcode.JNZ, imm=target)

    def jlt(self, target: Operand):
        self.emit(Opcode.JLT, imm=target)

    def jge(self, target: Operand):
        self.emit(Opcode.JGE, imm=target)

    def syscall(self, number: int):
        self.emit(Opcode.SYSCALL, imm=number)

    def sysret(self):
        self.emit(Opcode.SYSRET)

    def iret(self):
        self.emit(Opcode.IRET)

    def int3(self):
        self.emit(Opcode.INT3)

    def rdtsc(self, rd: int):
        self.emit(Opcode.RDTSC, rd=rd)

    def rdrand(self, rd: int):
        self.emit(Opcode.RDRAND, rd=rd)

    def inp(self, rd: int, port: int):
        self.emit(Opcode.IN, rd=rd, imm=port)

    def outp(self, port: int, rs: int):
        self.emit(Opcode.OUT, rs1=rs, imm=port)

    def cli(self):
        self.emit(Opcode.CLI)

    def sti(self):
        self.emit(Opcode.STI)

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------

    def assemble(self) -> AssembledImage:
        """Resolve label references and produce the final image."""
        if self._open_function is not None:
            raise AssemblerError(
                f"function {self._open_function[0]!r} never closed"
            )
        words = []
        for item in self._items:
            if item.kind == "word":
                words.append(self._resolve(item.value) & 0xFFFF_FFFF_FFFF_FFFF)
            else:
                instr = Instruction(
                    op=item.op,
                    rd=item.rd,
                    rs1=item.rs1,
                    rs2=item.rs2,
                    imm=self._resolve(item.imm),
                )
                words.append(encode(instr))
        return AssembledImage(
            base=self.base,
            words=tuple(words),
            symbols=dict(self._symbols),
            functions=dict(self._functions),
        )

    def _resolve(self, operand: Operand) -> int:
        if isinstance(operand, int):
            return operand
        name, offset = _split_label_expr(operand)
        if name not in self._symbols:
            raise AssemblerError(f"undefined label {name!r}")
        return self._symbols[name] + offset


def _split_label_expr(expr: str) -> tuple[str, int]:
    """Split ``"label+N"`` / ``"label-N"`` into (label, signed offset)."""
    for sign, sep in ((1, "+"), (-1, "-")):
        if sep in expr:
            name, _, tail = expr.partition(sep)
            try:
                return name.strip(), sign * int(tail.strip(), 0)
            except ValueError as exc:
                raise AssemblerError(f"bad label expression {expr!r}") from exc
    return expr.strip(), 0


_REG_ALIASES = {"sp": SP, "fp": FP, "rv": RV}


def _parse_register(token: str, line: int) -> int:
    token = token.strip().lower()
    if token in _REG_ALIASES:
        return _REG_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        reg = int(token[1:])
        if 0 <= reg < 16:
            return reg
    raise AssemblerError(f"bad register {token!r}", line)


def _parse_operand(token: str, line: int) -> Operand:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        pass
    if token and (token[0].isalpha() or token[0] == "_"):
        return token
    raise AssemblerError(f"bad operand {token!r}", line)


def assemble_text(source: str, base: int = 0) -> AssembledImage:
    """Assemble the text syntax used by tests and examples.

    Syntax per line: an optional ``label:`` prefix, then either a directive
    (``.org N``, ``.word V``, ``.space N``) or a mnemonic with comma-separated
    operands.  ``;`` and ``#`` start comments.  ``func name`` / ``endfunc``
    delimit function ranges.
    """
    asm = Asm(base=base)
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        while ":" in line.split()[0] if line else False:
            label, _, line = line.partition(":")
            asm.label(label.strip())
            line = line.strip()
            if not line:
                break
        if not line:
            continue
        head, _, rest = line.partition(" ")
        head = head.strip().lower()
        operands = [tok for tok in rest.split(",") if tok.strip()] if rest else []
        if head == ".org":
            target = int(operands[0], 0) if operands else 0
            if target < asm.here:
                raise AssemblerError(".org cannot move backwards", lineno)
            asm.space(target - asm.here)
        elif head == ".word":
            asm.word(_parse_operand(operands[0], lineno))
        elif head == ".space":
            asm.space(int(operands[0], 0))
        elif head == "func":
            asm.begin_function(rest.strip())
        elif head == "endfunc":
            asm.end_function()
        else:
            _emit_mnemonic(asm, head, operands, lineno)
    return asm.assemble()


def _emit_mnemonic(asm: Asm, mnemonic: str, operands: list[str], line: int):
    name_map = {"and": "AND", "or": "OR"}
    opname = name_map.get(mnemonic, mnemonic.upper())
    try:
        op = Opcode[opname]
    except KeyError as exc:
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line) from exc
    signature = SIGNATURES[op]
    if len(operands) != len(signature):
        raise AssemblerError(
            f"{mnemonic} takes {len(signature)} operands, got {len(operands)}",
            line,
        )
    fields = {"rd": 0, "rs1": 0, "rs2": 0, "imm": 0}
    slot_to_field = {"d": "rd", "a": "rs1", "b": "rs2", "i": "imm"}
    for slot, token in zip(signature, operands):
        field_name = slot_to_field[slot]
        if slot == "i":
            fields[field_name] = _parse_operand(token, line)
        else:
            fields[field_name] = _parse_register(token, line)
    asm.emit(op, **fields)
