"""Opcode definitions and operand signatures for the guest ISA.

The ISA is deliberately small but complete for the paper's needs:

* direct and indirect calls/jumps plus ``ret`` (so the RAS, ROP chains, and
  JOP redirection all behave architecturally);
* ``syscall``/``sysret``/``iret`` for privilege transitions;
* ``rdtsc``/``rdrand``/``in``/``out`` as synchronous nondeterministic
  instructions that the hypervisor traps and logs (§7.3);
* ``cli``/``sti`` so the kernel can build critical sections;
* ``int3`` — the one-word debug exception the paper uses to instrument
  binaries for alarm-replay evaluation (§7.4).
"""

from __future__ import annotations

import enum

#: Number of architectural general-purpose registers (r0..r15).
REG_COUNT = 16
#: Frame-pointer register index (software convention).
FP = 13
#: Stack-pointer register index (used by PUSH/POP/CALL/RET hardware).
SP = 14
#: Return-value register index (software convention).
RV = 15

#: Size of the port-mapped I/O space used by IN/OUT.
NUM_PORTS = 64


class Opcode(enum.IntEnum):
    """All guest opcodes.  Values are stable: they are the encoding bytes."""

    NOP = 0x01
    HLT = 0x02
    LI = 0x03
    MOV = 0x04
    ADD = 0x05
    SUB = 0x06
    MUL = 0x07
    DIV = 0x08
    AND = 0x09
    OR = 0x0A
    XOR = 0x0B
    SHL = 0x0C
    SHR = 0x0D
    ADDI = 0x0E
    CMP = 0x0F
    CMPI = 0x10
    LD = 0x11
    ST = 0x12
    PUSH = 0x13
    POP = 0x14
    CALL = 0x15
    CALLI = 0x16
    RET = 0x17
    JMP = 0x18
    JMPI = 0x19
    JZ = 0x1A
    JNZ = 0x1B
    JLT = 0x1C
    JGE = 0x1D
    SYSCALL = 0x1E
    SYSRET = 0x1F
    IRET = 0x20
    INT3 = 0x21
    RDTSC = 0x22
    RDRAND = 0x23
    IN = 0x24
    OUT = 0x25
    CLI = 0x26
    STI = 0x27


#: Operand signature per opcode.  Each letter names one operand slot:
#:   d = destination register, a = first source register,
#:   b = second source register, i = immediate.
#: The assembler and disassembler are both driven by this table.
SIGNATURES: dict[Opcode, str] = {
    Opcode.NOP: "",
    Opcode.HLT: "",
    Opcode.LI: "di",
    Opcode.MOV: "da",
    Opcode.ADD: "dab",
    Opcode.SUB: "dab",
    Opcode.MUL: "dab",
    Opcode.DIV: "dab",
    Opcode.AND: "dab",
    Opcode.OR: "dab",
    Opcode.XOR: "dab",
    Opcode.SHL: "dab",
    Opcode.SHR: "dab",
    Opcode.ADDI: "dai",
    Opcode.CMP: "ab",
    Opcode.CMPI: "ai",
    Opcode.LD: "dai",
    Opcode.ST: "abi",
    Opcode.PUSH: "a",
    Opcode.POP: "d",
    Opcode.CALL: "i",
    Opcode.CALLI: "a",
    Opcode.RET: "",
    Opcode.JMP: "i",
    Opcode.JMPI: "a",
    Opcode.JZ: "i",
    Opcode.JNZ: "i",
    Opcode.JLT: "i",
    Opcode.JGE: "i",
    Opcode.SYSCALL: "i",
    Opcode.SYSRET: "",
    Opcode.IRET: "",
    Opcode.INT3: "",
    Opcode.RDTSC: "d",
    Opcode.RDRAND: "d",
    Opcode.IN: "di",
    Opcode.OUT: "ai",
    Opcode.CLI: "",
    Opcode.STI: "",
}

#: Opcodes that transfer control (used by static analysis and generators).
CONTROL_FLOW = frozenset(
    {
        Opcode.CALL,
        Opcode.CALLI,
        Opcode.RET,
        Opcode.JMP,
        Opcode.JMPI,
        Opcode.JZ,
        Opcode.JNZ,
        Opcode.JLT,
        Opcode.JGE,
        Opcode.SYSCALL,
        Opcode.SYSRET,
        Opcode.IRET,
        Opcode.HLT,
    }
)

#: Opcodes with nondeterministic results that must be recorded (§7.3).
NONDETERMINISTIC = frozenset(
    {Opcode.RDTSC, Opcode.RDRAND, Opcode.IN, Opcode.OUT}
)

#: Privileged opcodes: executing these in user mode raises a fault.
PRIVILEGED = frozenset(
    {Opcode.IRET, Opcode.IN, Opcode.OUT, Opcode.CLI, Opcode.STI, Opcode.HLT,
     Opcode.SYSRET}
)

_VALID_OPCODE_BYTES = frozenset(int(op) for op in Opcode)


def is_valid_opcode_byte(byte: int) -> bool:
    """Return whether ``byte`` is the encoding byte of some opcode."""
    return byte in _VALID_OPCODE_BYTES
