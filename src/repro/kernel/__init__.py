"""The miniature guest kernel, written in the guest ISA.

The kernel is what makes the paper's four false-positive sources real
executed behaviour rather than injected flags:

* a preemptive round-robin **scheduler** whose context switch pivots the
  stack pointer in a single instruction (the hypervisor's breakpoint target,
  §5.2.1) and completes through a **non-procedural return** to one of three
  well-defined landing sites (§4.4);
* **threads** with in-guest-memory task structs that the hypervisor
  introspects by stack pointer, plus create/exit paths for BackRAS
  recycling (§5.2.2);
* **syscalls** and interrupt handlers with realistic call trees, including
  a recursive network-ring copy whose depth under load causes genuine RAS
  underflows (apache's residual false alarms, §8.2);
* a deliberately **vulnerable syscall** (unbounded string copy into a
  kernel stack buffer) — the paper's Figure 10 attack surface — and the
  function-pointer dispatch table targeted by the JOP variant.
"""

from repro.kernel.layout import (
    KernelLayout,
    Syscall,
    TaskField,
    TaskState,
    DEFAULT_LAYOUT,
)
from repro.kernel.image import KernelImage
from repro.kernel.builder import build_kernel
from repro.kernel.tasks import TaskView, read_task, find_task_by_sp

__all__ = [
    "KernelLayout",
    "Syscall",
    "TaskField",
    "TaskState",
    "DEFAULT_LAYOUT",
    "KernelImage",
    "build_kernel",
    "TaskView",
    "read_task",
    "find_task_by_sp",
]
