"""The built kernel image and its hypervisor-facing metadata.

Besides the machine words, a :class:`KernelImage` exposes the addresses the
hypervisor must know (§5.1-5.2): the SP-pivot instruction to breakpoint, the
non-procedural return and its three legal targets for the whitelists, the
thread create/exit commit points for BackRAS recycling, and the function map
used by the JOP detector and forensics.  All of it is derived from the
binary image's symbol table — the paper obtains the same information "by
analyzing the binary image of the guest kernel" (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.assembler import AssembledImage
from repro.kernel.layout import KernelLayout


@dataclass(frozen=True)
class KernelImage:
    """A fully assembled guest kernel plus derived metadata."""

    image: AssembledImage
    layout: KernelLayout
    #: Names of syscall handler functions in dispatch order.
    syscall_handlers: tuple[str, ...]

    # ------------------------------------------------------------------
    # symbol shorthands
    # ------------------------------------------------------------------

    def addr(self, symbol: str) -> int:
        """Resolve a kernel symbol."""
        return self.image.addr_of(symbol)

    @property
    def boot_entry(self) -> int:
        return self.addr("boot")

    @property
    def syscall_entry(self) -> int:
        return self.addr("syscall_entry")

    @property
    def irq_entry(self) -> int:
        return self.addr("irq_entry")

    @property
    def fault_entry(self) -> int:
        return self.addr("fault_entry")

    @property
    def switch_sp_pc(self) -> int:
        """PC of the single instruction that pivots the stack pointer.

        The hypervisor breakpoints this address to interpose on context
        switches (§5.2.1).
        """
        return self.addr("__switch_sp")

    @property
    def ctxsw_ret_pc(self) -> int:
        """PC of the kernel's non-procedural return (RetWhitelist entry)."""
        return self.addr("__ctxsw_ret")

    @property
    def whitelist_targets(self) -> frozenset[int]:
        """The three legal targets of the non-procedural return (§4.4)."""
        return frozenset({
            self.addr("__ret_fork"),
            self.addr("__kthread_entry"),
            self.addr("__resume_resched"),
        })

    @property
    def task_create_pc(self) -> int:
        """Commit point of thread creation (BackRAS allocation trap)."""
        return self.addr("__task_create_commit")

    @property
    def task_exit_pc(self) -> int:
        """Commit point of thread destruction (BackRAS recycling trap)."""
        return self.addr("__task_exit_commit")

    @property
    def functions(self) -> dict[str, tuple[int, int]]:
        """Kernel function map: name -> (start, end)."""
        return self.image.functions

    def function_at(self, pc: int) -> str | None:
        """Symbolize a kernel PC for forensics."""
        return self.image.function_at(pc)
