"""Emits the guest kernel as guest ISA code.

Register conventions inside the kernel (the builder "is" the compiler):

* ``r1``-``r3``: arguments; ``r15`` (rv): return value;
* ``r4``-``r9``: scratch, clobbered freely;
* ``r10``: IRQ vector / fault code (hardware); ``r11``: syscall number
  (hardware);
* syscall entry preserves ``r0``-``r13`` around the handler so user state
  survives; IRQ entry additionally preserves ``r15``.

The context-switch core follows §4.4's Linux description: ``schedule``
*stores* the resume address on the outgoing stack (no matching call, hence
no RAS entry), pivots SP in one instruction (``__switch_sp``, the
hypervisor's breakpoint), and completes with one non-procedural return
(``__ctxsw_ret``) whose only legal targets are ``__ret_fork``,
``__kthread_entry`` and ``__resume_resched``.
"""

from __future__ import annotations

from repro.devices.bus import (
    DISK_CMD_READ,
    DISK_CMD_WRITE,
    IRQ_DISK,
    PORT_DISK_PARAM,
    IRQ_NIC,
    IRQ_TIMER,
    NIC_MMIO_BASE,
    NIC_REG_RX_ADDR,
    NIC_REG_RX_LEN,
    NIC_REG_RX_PENDING,
    NIC_REG_RX_RING,
    PORT_CONSOLE,
    PORT_DISK_ADDR,
    PORT_DISK_BLOCK,
    PORT_DISK_CMD,
    PORT_DISK_STATUS,
    PORT_SHUTDOWN,
)
from repro.isa.assembler import Asm
from repro.isa.opcodes import RV, SP
from repro.kernel.image import KernelImage
from repro.kernel.layout import (
    DEFAULT_LAYOUT,
    KernelLayout,
    Syscall,
    TaskField,
    TaskState,
)

#: Registers preserved across a syscall (user context minus sp and rv).
_SYSCALL_SAVED = tuple(range(14))
#: Registers preserved across an interrupt (everything but sp).
_IRQ_SAVED = tuple(range(14)) + (15,)

def build_kernel(layout: KernelLayout = DEFAULT_LAYOUT) -> KernelImage:
    """Assemble the complete guest kernel."""
    asm = Asm(base=layout.kernel_code_base)
    handlers = _syscall_handler_names()
    _emit_boot(asm, layout, handlers)
    _emit_scheduler(asm, layout)
    _emit_task_lifecycle(asm, layout)
    _emit_entries(asm, layout, handlers)
    _emit_helpers(asm, layout)
    _emit_syscall_handlers(asm, layout)
    _emit_ops_functions(asm, layout)
    image = asm.assemble()
    return KernelImage(image=image, layout=layout,
                       syscall_handlers=handlers)


def _syscall_handler_names() -> tuple[str, ...]:
    """Handler function names indexed by syscall number."""
    return tuple(f"sys_{call.name.lower()}" for call in Syscall)


# ---------------------------------------------------------------------------
# boot
# ---------------------------------------------------------------------------

def _emit_boot(asm: Asm, layout: KernelLayout, handlers: tuple[str, ...]):
    asm.begin_function("boot")
    asm.li(SP, layout.boot_stack_top)
    # Zero the kernel globals (but not the init table, which the loader
    # populated) and the task table.
    asm.li(1, layout.kdata_base)
    asm.li(2, 8)
    asm.call("kzero_range")
    asm.li(1, layout.task_table)
    asm.li(2, layout.max_tasks * layout.task_struct_words)
    asm.call("kzero_range")
    # Populate the syscall table.
    for index, handler in enumerate(handlers):
        asm.li(4, handler)
        asm.li(5, layout.syscall_table_addr + index)
        asm.st(5, 4, 0)
    # Populate the ops (function-pointer) table: mostly no-ops, one stats
    # op, and the privileged set_root op in the last slot — the ROP chain's
    # eventual target.
    for index in range(layout.ops_table_entries):
        if index == 1:
            asm.li(4, "op_stat")
        elif index == layout.ops_table_entries - 1:
            asm.li(4, "set_root")
        else:
            asm.li(4, "op_noop")
        asm.li(5, layout.ops_table_addr + index)
        asm.st(5, 4, 0)
    # Initial UID: unprivileged.
    asm.li(4, 1000)
    asm.li(5, layout.uid_addr)
    asm.st(5, 4, 0)
    # Program the NIC RX ring.
    asm.li(4, NIC_MMIO_BASE + NIC_REG_RX_RING)
    asm.li(5, layout.nic_ring)
    asm.st(4, 5, 0)
    # Exercise the gadget-bearing helpers legitimately, so the attack reuses
    # genuinely live code (Appendix A: gadgets come from the victim's own
    # instructions).
    asm.li(1, layout.ops_table_addr)
    asm.call("kload2")
    asm.call("kdispatch2")
    # Create the idle kernel thread (slot 0).
    asm.li(1, "idle_body")
    asm.call("create_kthread")
    # Create the initial user tasks listed in the init table.  Loop state
    # lives in r0/r12/r13, which the task-creation callees never touch.
    asm.li(0, layout.init_table_addr)
    asm.ld(12, 0, 0)
    asm.li(13, 0)
    asm.label("boot_init_loop")
    asm.cmp(13, 12)
    asm.jz("boot_init_done")
    asm.add(8, 0, 13)
    asm.ld(1, 8, 1)
    asm.call("create_user_task")
    asm.addi(13, 13, 1)
    asm.jmp("boot_init_loop")
    asm.label("boot_init_done")
    # Enter the idle task through the switch tail: load its saved SP and
    # fall into the SP pivot, exactly like a normal context switch.
    asm.li(2, layout.task_struct_addr(0))
    asm.li(5, layout.current_addr)
    asm.st(5, 2, 0)
    asm.ld(4, 2, int(TaskField.SAVED_SP))
    asm.jmp("__switch_sp")
    asm.end_function()


# ---------------------------------------------------------------------------
# scheduler and context switch
# ---------------------------------------------------------------------------

def _emit_scheduler(asm: Asm, layout: KernelLayout):
    """``schedule``: round-robin pick + the paper's context-switch core.

    Must be called with interrupts disabled.  Clobbers r2-r9.
    """
    asm.begin_function("schedule")
    asm.li(5, layout.current_addr)
    asm.ld(3, 5, 0)                       # r3 = current task struct
    asm.ld(6, 3, int(TaskField.TID))      # r6 = current tid
    asm.li(7, 1)                          # r7 = k (probe distance)
    asm.label("sched_pick_loop")
    asm.add(8, 6, 7)
    asm.li(9, layout.max_tasks - 1)
    asm.and_(8, 8, 9)                     # idx = (tid + k) % max_tasks
    asm.cmpi(8, 0)                        # slot 0 (idle) only as last resort
    asm.jz("sched_next_k")
    asm.li(9, 3)                          # task_struct_words == 8 -> shift 3
    asm.shl(5, 8, 9)
    asm.li(9, layout.task_table)
    asm.add(5, 5, 9)                      # r5 = candidate struct
    asm.ld(9, 5, int(TaskField.STATE))
    asm.cmpi(9, int(TaskState.READY))
    asm.jz("sched_found")
    asm.label("sched_next_k")
    asm.addi(7, 7, 1)
    asm.cmpi(7, layout.max_tasks + 1)
    asm.jlt("sched_pick_loop")
    # No other runnable worker: stay on the current task if it can run,
    # otherwise fall back to the idle thread.
    asm.ld(9, 3, int(TaskField.STATE))
    asm.cmpi(9, int(TaskState.READY))
    asm.jnz("sched_pick_idle")
    asm.mov(5, 3)
    asm.jmp("sched_found")
    asm.label("sched_pick_idle")
    asm.li(5, layout.task_table)          # idle lives in slot 0
    asm.label("sched_found")
    asm.mov(2, 5)                         # r2 = next task struct
    asm.cmp(2, 3)
    asm.jz("sched_no_switch")
    # Count the switch and charge the incoming task a slice.
    asm.li(5, layout.ctxsw_count_addr)
    asm.ld(4, 5, 0)
    asm.addi(4, 4, 1)
    asm.st(5, 4, 0)
    asm.ld(4, 2, int(TaskField.SLICES))
    asm.addi(4, 4, 1)
    asm.st(2, 4, int(TaskField.SLICES))
    # Store (not call-push!) the resume address on the outgoing stack: the
    # later pop of this word is the non-procedural return's target.
    asm.li(5, "__resume_resched")
    asm.push(5)
    asm.st(3, SP, int(TaskField.SAVED_SP))
    asm.ld(4, 2, int(TaskField.SAVED_SP))
    # The single instruction where SP changes threads (§5.2.1): the
    # hypervisor breakpoints this PC; at the exit, microcode dumps the RAS
    # to the outgoing BackRAS and the hypervisor retargets BackRASptr.
    asm.label("__switch_sp")
    asm.mov(SP, 4)
    asm.li(5, layout.current_addr)
    asm.st(5, 2, 0)
    # The non-procedural return (§4.4): RetWhitelist entry.  Its target is
    # one of three well-defined landing sites.
    asm.label("__ctxsw_ret")
    asm.ret()
    asm.label("__resume_resched")
    asm.ret()                             # normal return from schedule
    asm.label("sched_no_switch")
    asm.ret()
    asm.end_function()
    # Landing site for freshly forked user tasks: stack holds [entry_pc].
    asm.begin_function("__ret_fork")
    asm.sti()
    asm.sysret()
    asm.end_function()
    # Landing site for fresh kernel threads: stack holds [body_pc].
    asm.begin_function("__kthread_entry")
    asm.pop(4)
    asm.calli(4)
    asm.call("task_exit_current")
    asm.label("kthread_unreachable")
    asm.jmp("kthread_unreachable")
    asm.end_function()
    # The idle thread: enables interrupts and spins.
    asm.begin_function("idle_body")
    asm.sti()
    asm.label("idle_loop")
    asm.nop()
    asm.nop()
    asm.nop()
    asm.jmp("idle_loop")
    asm.end_function()


# ---------------------------------------------------------------------------
# task lifecycle
# ---------------------------------------------------------------------------

def _emit_task_lifecycle(asm: Asm, layout: KernelLayout):
    stack_shift = layout.stack_words.bit_length() - 1
    assert 1 << stack_shift == layout.stack_words, "stack_words power of two"

    # create_task(r1=entry, r2=bootstrap) -> rv = tid or -1
    asm.begin_function("create_task")
    asm.li(5, 0)
    asm.label("ct_scan")
    asm.cmpi(5, layout.max_tasks)
    asm.jz("ct_fail")
    asm.li(9, 3)
    asm.shl(6, 5, 9)
    asm.li(9, layout.task_table)
    asm.add(6, 6, 9)                       # r6 = candidate struct
    asm.ld(7, 6, int(TaskField.STATE))
    asm.cmpi(7, int(TaskState.FREE))
    asm.jz("ct_found")
    asm.addi(5, 5, 1)
    asm.jmp("ct_scan")
    asm.label("ct_found")
    asm.st(6, 5, int(TaskField.TID))
    asm.li(7, int(TaskState.READY))
    asm.st(6, 7, int(TaskField.STATE))
    asm.li(9, stack_shift)
    asm.shl(8, 5, 9)
    asm.li(9, layout.stacks_base)
    asm.add(8, 8, 9)                       # r8 = stack base
    asm.st(6, 8, int(TaskField.STACK_BASE))
    asm.li(9, layout.stack_words)
    asm.add(9, 8, 9)                       # r9 = stack top
    asm.st(6, 9, int(TaskField.STACK_TOP))
    asm.st(6, 1, int(TaskField.ENTRY_PC))
    asm.li(7, 0)
    asm.st(6, 7, int(TaskField.WAIT_VECTOR))
    asm.st(6, 7, int(TaskField.SLICES))
    # Seed the stack: [bootstrap, entry] with SP at bootstrap, so the
    # non-procedural return lands on the bootstrap, which consumes entry.
    asm.st(9, 1, -1)                       # mem[top-1] = entry
    asm.st(9, 2, -2)                       # mem[top-2] = bootstrap
    asm.addi(7, 9, -2)
    asm.st(6, 7, int(TaskField.SAVED_SP))
    asm.mov(1, 5)
    # BackRAS allocation trap: r1 holds the new tid here (§5.2.2).
    asm.label("__task_create_commit")
    asm.nop()
    asm.mov(RV, 5)
    asm.ret()
    asm.label("ct_fail")
    asm.li(RV, -1)
    asm.ret()
    asm.end_function()

    asm.begin_function("create_user_task")
    asm.li(2, "__ret_fork")
    asm.call("create_task")
    asm.ret()
    asm.end_function()

    asm.begin_function("create_kthread")
    asm.li(2, "__kthread_entry")
    asm.call("create_task")
    asm.ret()
    asm.end_function()

    # task_exit_current(): free the slot, maybe power off, schedule away.
    asm.begin_function("task_exit_current")
    asm.li(5, layout.current_addr)
    asm.ld(3, 5, 0)
    asm.li(4, int(TaskState.FREE))
    asm.st(3, 4, int(TaskField.STATE))
    asm.ld(1, 3, int(TaskField.TID))
    # BackRAS recycling trap: r1 holds the dying tid here (§5.2.2).
    asm.label("__task_exit_commit")
    asm.nop()
    # Power off when no non-idle task remains.
    asm.li(5, 1)
    asm.label("te_scan")
    asm.cmpi(5, layout.max_tasks)
    asm.jz("te_all_free")
    asm.li(9, 3)
    asm.shl(6, 5, 9)
    asm.li(9, layout.task_table)
    asm.add(6, 6, 9)
    asm.ld(7, 6, int(TaskField.STATE))
    asm.cmpi(7, int(TaskState.FREE))
    asm.jnz("te_live")
    asm.addi(5, 5, 1)
    asm.jmp("te_scan")
    asm.label("te_all_free")
    asm.li(4, 1)
    asm.outp(PORT_SHUTDOWN, 4)
    asm.label("te_live")
    asm.call("schedule")                   # never returns: we are not READY
    asm.label("te_unreachable")
    asm.jmp("te_unreachable")
    asm.end_function()

    # block_on(r1=vector): mark current blocked and yield until woken.
    asm.begin_function("block_on")
    asm.li(5, layout.current_addr)
    asm.ld(3, 5, 0)
    asm.li(4, int(TaskState.BLOCKED))
    asm.st(3, 4, int(TaskField.STATE))
    asm.st(3, 1, int(TaskField.WAIT_VECTOR))
    asm.call("schedule")
    asm.li(5, layout.current_addr)
    asm.ld(3, 5, 0)
    asm.li(4, 0)
    asm.st(3, 4, int(TaskField.WAIT_VECTOR))
    asm.ret()
    asm.end_function()

    # wake_waiters(r1=vector): ready every task blocked on the vector.
    asm.begin_function("wake_waiters")
    asm.li(5, 0)
    asm.label("ww_scan")
    asm.cmpi(5, layout.max_tasks)
    asm.jz("ww_done")
    asm.li(9, 3)
    asm.shl(6, 5, 9)
    asm.li(9, layout.task_table)
    asm.add(6, 6, 9)
    asm.ld(7, 6, int(TaskField.STATE))
    asm.cmpi(7, int(TaskState.BLOCKED))
    asm.jnz("ww_next")
    asm.ld(7, 6, int(TaskField.WAIT_VECTOR))
    asm.cmp(7, 1)
    asm.jnz("ww_next")
    asm.li(7, int(TaskState.READY))
    asm.st(6, 7, int(TaskField.STATE))
    asm.label("ww_next")
    asm.addi(5, 5, 1)
    asm.jmp("ww_scan")
    asm.label("ww_done")
    asm.ret()
    asm.end_function()


# ---------------------------------------------------------------------------
# syscall / IRQ / fault entries
# ---------------------------------------------------------------------------

def _emit_entries(asm: Asm, layout: KernelLayout, handlers: tuple[str, ...]):
    asm.begin_function("syscall_entry")
    asm.cli()
    for reg in _SYSCALL_SAVED:
        asm.push(reg)
    asm.cmpi(11, len(handlers))
    asm.jlt("sc_dispatch")
    asm.li(RV, -1)
    asm.jmp("sc_out")
    asm.label("sc_dispatch")
    asm.li(4, layout.syscall_table_addr)
    asm.add(4, 4, 11)
    asm.ld(4, 4, 0)
    asm.calli(4)
    # Post-dispatch kernel path (accounting, signal checks, ...): real
    # syscalls execute long call chains; this is what makes alarm replay
    # expensive relative to recording (Figure 9).
    asm.li(1, 6)
    asm.call("kwork")
    asm.label("sc_out")
    for reg in reversed(_SYSCALL_SAVED):
        asm.pop(reg)
    asm.sti()
    asm.sysret()
    asm.end_function()

    asm.begin_function("irq_entry")
    for reg in _IRQ_SAVED:
        asm.push(reg)
    asm.cmpi(10, IRQ_TIMER)
    asm.jnz("irq_not_timer")
    asm.li(4, layout.ticks_addr)
    asm.ld(5, 4, 0)
    asm.addi(5, 5, 1)
    asm.st(4, 5, 0)
    # Spuriously wake NIC waiters each tick: NIC interrupts coalesce, so a
    # waiter that lost a wakeup race would otherwise starve at the tail of
    # the packet schedule (receivers recheck and re-block harmlessly).
    asm.li(1, IRQ_NIC)
    asm.call("wake_waiters")
    asm.call("schedule")
    asm.jmp("irq_out")
    asm.label("irq_not_timer")
    # Device interrupts only mark waiters runnable; the switch itself
    # happens at the next preemption point, as in mainstream kernels.
    asm.cmpi(10, IRQ_DISK)
    asm.jnz("irq_not_disk")
    asm.li(1, IRQ_DISK)
    asm.call("wake_waiters")
    asm.call("schedule")
    asm.jmp("irq_out")
    asm.label("irq_not_disk")
    asm.cmpi(10, IRQ_NIC)
    asm.jnz("irq_out")
    asm.li(1, IRQ_NIC)
    asm.call("wake_waiters")
    asm.label("irq_out")
    for reg in reversed(_IRQ_SAVED):
        asm.pop(reg)
    asm.iret()
    asm.end_function()

    # Kernel bug recovery (§4.1, imperfect nesting source): a recoverable
    # fault terminates the offending thread; a fault in the idle thread or
    # before tasking is up is fatal.
    asm.begin_function("fault_entry")
    asm.li(5, layout.current_addr)
    asm.ld(3, 5, 0)
    asm.cmpi(3, 0)
    asm.jz("fault_fatal")
    asm.ld(4, 3, int(TaskField.TID))
    asm.cmpi(4, 0)
    asm.jz("fault_fatal")
    asm.call("task_exit_current")
    asm.label("fault_fatal")
    asm.hlt()
    asm.label("fault_spin")
    asm.jmp("fault_spin")
    asm.end_function()


# ---------------------------------------------------------------------------
# shared helpers (including the gadget-bearing ones)
# ---------------------------------------------------------------------------

def _emit_helpers(asm: Asm, layout: KernelLayout):
    # kzero_range(r1=addr, r2=len): zero words.  Its epilogue restores a
    # saved register — the classic `pop r1; ret` sequence the ROP chain
    # reuses as gadget G1.
    asm.begin_function("kzero_range")
    asm.push(1)
    asm.li(4, 0)
    asm.label("kz_loop")
    asm.cmpi(2, 0)
    asm.jz("kz_done")
    asm.st(1, 4, 0)
    asm.addi(1, 1, 1)
    asm.addi(2, 2, -1)
    asm.jmp("kz_loop")
    asm.label("kz_done")
    asm.label("__gadget_pop_r1")
    asm.pop(1)
    asm.ret()
    asm.end_function()

    # kload2(r1=ptr): r2 = *ptr.  Used by the dispatch path; doubles as
    # gadget G2 (`ld r2, [r1]; ret`).
    asm.begin_function("kload2")
    asm.ld(2, 1, 0)
    asm.ret()
    asm.end_function()

    # kdispatch2: call the function pointer in r2.  Doubles as gadget G3
    # (`calli r2; ret`).
    asm.begin_function("kdispatch2")
    asm.calli(2)
    asm.ret()
    asm.end_function()

    # kwork(r1=depth): recursive no-op work, modelling kernel path depth.
    asm.begin_function("kwork")
    asm.cmpi(1, 0)
    asm.jz("kwork_done")
    asm.addi(1, 1, -1)
    asm.call("kwork")
    asm.label("kwork_done")
    asm.ret()
    asm.end_function()

    # kstrcpy(r1=dest, r2=src) -> rv=len: copy words until a zero word.
    # No bounds check — Figure 10(c)'s strcpy.
    asm.begin_function("kstrcpy")
    asm.li(RV, 0)
    asm.label("kc_loop")
    asm.ld(4, 2, 0)
    asm.st(1, 4, 0)
    asm.cmpi(4, 0)
    asm.jz("kc_done")
    asm.addi(1, 1, 1)
    asm.addi(2, 2, 1)
    asm.addi(RV, RV, 1)
    asm.jmp("kc_loop")
    asm.label("kc_done")
    asm.ret()
    asm.end_function()

    # ring_copy(r1=dest, r2=src, r3=len): recursive chunked copy out of the
    # NIC ring.  Depth = ceil(len/chunk); big packets overflow the RAS —
    # the source of apache's residual underflow false alarms (§8.2).
    chunk = layout.ring_copy_chunk
    asm.begin_function("ring_copy")
    asm.cmpi(3, 0)
    asm.jz("rc_done")
    asm.li(4, chunk)
    asm.cmp(3, 4)
    asm.jlt("rc_small")
    asm.mov(5, 4)
    asm.jmp("rc_copy")
    asm.label("rc_small")
    asm.mov(5, 3)
    asm.label("rc_copy")
    asm.li(6, 0)
    asm.label("rc_loop")
    asm.cmp(6, 5)
    asm.jz("rc_advance")
    asm.add(7, 2, 6)
    asm.ld(8, 7, 0)
    asm.add(7, 1, 6)
    asm.st(7, 8, 0)
    asm.addi(6, 6, 1)
    asm.jmp("rc_loop")
    asm.label("rc_advance")
    asm.add(1, 1, 5)
    asm.add(2, 2, 5)
    asm.sub(3, 3, 5)
    asm.call("ring_copy")
    asm.label("rc_done")
    asm.ret()
    asm.end_function()


# ---------------------------------------------------------------------------
# syscall handlers
# ---------------------------------------------------------------------------

def _emit_syscall_handlers(asm: Asm, layout: KernelLayout):
    # sys_yield()
    asm.begin_function("sys_yield")
    asm.call("schedule")
    asm.li(RV, 0)
    asm.ret()
    asm.end_function()

    # sys_exit(): terminate the calling task.
    asm.begin_function("sys_exit")
    asm.call("task_exit_current")
    asm.ret()                              # unreachable
    asm.end_function()

    # sys_gettime() -> rv = TSC (with the clock-subsystem call depth of a
    # real gettimeofday path).
    asm.begin_function("sys_gettime")
    asm.li(1, 4)
    asm.call("kwork")
    asm.rdtsc(RV)
    asm.ret()
    asm.end_function()

    # sys_read_block(r1=block, r2=dest): serialized disk read.
    asm.begin_function("sys_read_block")
    asm.label("rb_acquire")
    asm.inp(4, PORT_DISK_STATUS)
    asm.cmpi(4, 0)
    asm.jz("rb_go")
    asm.push(1)
    asm.push(2)
    asm.call("schedule")
    asm.pop(2)
    asm.pop(1)
    asm.jmp("rb_acquire")
    asm.label("rb_go")
    # Program the request: transfer parameters first (real drivers touch
    # several controller registers per request), then block/address/command.
    for param in range(6):
        asm.li(4, param)
        asm.outp(PORT_DISK_PARAM, 4)
    asm.outp(PORT_DISK_BLOCK, 1)
    asm.outp(PORT_DISK_ADDR, 2)
    asm.li(4, DISK_CMD_READ)
    asm.outp(PORT_DISK_CMD, 4)
    asm.li(1, IRQ_DISK)
    asm.call("block_on")
    asm.inp(4, PORT_DISK_STATUS)           # logged status read
    asm.li(1, 4)
    asm.call("kwork")                      # post-I/O kernel path depth
    asm.li(RV, 0)
    asm.ret()
    asm.end_function()

    # sys_write_block(r1=block, r2=src): serialized disk write.
    asm.begin_function("sys_write_block")
    asm.label("wb_acquire")
    asm.inp(4, PORT_DISK_STATUS)
    asm.cmpi(4, 0)
    asm.jz("wb_go")
    asm.push(1)
    asm.push(2)
    asm.call("schedule")
    asm.pop(2)
    asm.pop(1)
    asm.jmp("wb_acquire")
    asm.label("wb_go")
    for param in range(6):
        asm.li(4, param)
        asm.outp(PORT_DISK_PARAM, 4)
    asm.outp(PORT_DISK_BLOCK, 1)
    asm.outp(PORT_DISK_ADDR, 2)
    asm.li(4, DISK_CMD_WRITE)
    asm.outp(PORT_DISK_CMD, 4)
    asm.li(1, IRQ_DISK)
    asm.call("block_on")
    asm.inp(4, PORT_DISK_STATUS)
    asm.li(RV, 0)
    asm.ret()
    asm.end_function()

    # sys_recv(r1=dest) -> rv = packet length; blocks until a packet lands.
    asm.begin_function("sys_recv")
    asm.label("rv_wait")
    asm.li(4, NIC_MMIO_BASE + NIC_REG_RX_PENDING)
    asm.ld(5, 4, 0)                        # MMIO read, logged
    asm.cmpi(5, 0)
    asm.jnz("rv_have")
    asm.push(1)
    asm.li(1, IRQ_NIC)
    asm.call("block_on")
    asm.pop(1)
    asm.jmp("rv_wait")
    asm.label("rv_have")
    asm.li(4, NIC_MMIO_BASE + NIC_REG_RX_LEN)
    asm.ld(3, 4, 0)                        # r3 = length
    asm.li(4, NIC_MMIO_BASE + NIC_REG_RX_ADDR)
    asm.ld(2, 4, 0)                        # r2 = ring address (consumes)
    asm.push(3)
    asm.call("ring_copy")                  # driver copy, recursion depth ~len/8
    asm.pop(RV)
    asm.ret()
    asm.end_function()

    # sys_print(r1=char).
    asm.begin_function("sys_print")
    asm.outp(PORT_CONSOLE, 1)
    asm.li(RV, 0)
    asm.ret()
    asm.end_function()

    # sys_spawn(r1=entry_pc) -> rv = tid.
    asm.begin_function("sys_spawn")
    asm.call("create_user_task")
    asm.ret()
    asm.end_function()

    # sys_gettid() -> rv.
    asm.begin_function("sys_gettid")
    asm.li(5, layout.current_addr)
    asm.ld(3, 5, 0)
    asm.ld(RV, 3, int(TaskField.TID))
    asm.ret()
    asm.end_function()

    # sys_process_msg(r1=src buffer): the vulnerable path (Figure 10).
    asm.begin_function("sys_process_msg")
    asm.mov(2, 1)
    asm.call("msg_handle")
    asm.li(RV, 0)
    asm.ret()
    asm.end_function()

    # msg_handle(r2=src): copies the message into a fixed kernel-stack
    # buffer with no bounds check, then "parses" it.
    buffer = layout.vulnerable_buffer_words
    asm.begin_function("msg_handle")
    asm.addi(SP, SP, -buffer)
    asm.mov(1, SP)
    asm.call("kstrcpy")
    asm.mov(1, SP)
    asm.li(2, buffer)
    asm.call("msg_checksum")
    asm.addi(SP, SP, buffer)
    asm.ret()                              # the hijacked return
    asm.end_function()

    # msg_checksum(r1=addr, r2=len) -> rv: word sum (the "parse" work).
    asm.begin_function("msg_checksum")
    asm.li(RV, 0)
    asm.label("mc_loop")
    asm.cmpi(2, 0)
    asm.jz("mc_done")
    asm.ld(4, 1, 0)
    asm.add(RV, RV, 4)
    asm.addi(1, 1, 1)
    asm.addi(2, 2, -1)
    asm.jmp("mc_loop")
    asm.label("mc_done")
    asm.ret()
    asm.end_function()

    # sys_set_handler(r1=index, r2=fn): unchecked function-pointer install —
    # the JOP attack surface.
    asm.begin_function("sys_set_handler")
    asm.li(4, layout.ops_table_entries - 1)
    asm.and_(1, 1, 4)
    asm.li(4, layout.ops_table_addr)
    asm.add(4, 4, 1)
    asm.st(4, 2, 0)
    asm.li(RV, 0)
    asm.ret()
    asm.end_function()

    # sys_invoke_handler(r1=index): indirect dispatch through the ops table.
    asm.begin_function("sys_invoke_handler")
    asm.li(4, layout.ops_table_entries - 1)
    asm.and_(1, 1, 4)
    asm.li(4, layout.ops_table_addr)
    asm.add(4, 4, 1)
    asm.mov(1, 4)
    asm.call("kload2")                     # r2 = ops_table[index]
    asm.call("kdispatch2")                 # calli r2
    asm.li(RV, 0)
    asm.ret()
    asm.end_function()

    # sys_spin(r1=iterations): hog the kernel without yielding (DOS).
    asm.begin_function("sys_spin")
    asm.label("spin_loop")
    asm.cmpi(1, 0)
    asm.jz("spin_done")
    asm.push(1)
    asm.li(1, 3)
    asm.call("kwork")
    asm.pop(1)
    asm.addi(1, 1, -1)
    asm.jmp("spin_loop")
    asm.label("spin_done")
    asm.li(RV, 0)
    asm.ret()
    asm.end_function()


# ---------------------------------------------------------------------------
# ops-table functions
# ---------------------------------------------------------------------------

def _emit_ops_functions(asm: Asm, layout: KernelLayout):
    asm.begin_function("op_noop")
    asm.ret()
    asm.end_function()

    asm.begin_function("op_stat")
    asm.li(5, layout.ticks_addr)
    asm.ld(RV, 5, 0)
    asm.ret()
    asm.end_function()

    # The privilege-escalation target: sets UID to root.
    asm.begin_function("set_root")
    asm.li(4, 0)
    asm.li(5, layout.uid_addr)
    asm.st(5, 4, 0)
    asm.ret()
    asm.end_function()
