"""Host-side task-struct introspection.

The hypervisor interposes on the guest's context switch by trapping the
single SP-pivot instruction; at that point it must map the *new* stack
pointer to a thread ID by walking the guest's task table — exactly the
introspection the paper performs on Linux's ``task_struct`` (§5.2.1).
These helpers read guest memory; they never modify it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.layout import KernelLayout, TaskField, TaskState
from repro.memory.physical import PhysicalMemory


@dataclass(frozen=True)
class TaskView:
    """A read-only decoded task struct."""

    tid: int
    state: TaskState
    saved_sp: int
    stack_base: int
    stack_top: int
    entry_pc: int
    wait_vector: int
    slices: int

    @property
    def alive(self) -> bool:
        return self.state is not TaskState.FREE


def read_task(memory: PhysicalMemory, layout: KernelLayout,
              tid: int) -> TaskView:
    """Decode task ``tid``'s struct from guest memory."""
    base = layout.task_struct_addr(tid)
    raw = memory.read_block(base, layout.task_struct_words)
    return TaskView(
        tid=raw[TaskField.TID],
        state=TaskState(raw[TaskField.STATE]),
        saved_sp=raw[TaskField.SAVED_SP],
        stack_base=raw[TaskField.STACK_BASE],
        stack_top=raw[TaskField.STACK_TOP],
        entry_pc=raw[TaskField.ENTRY_PC],
        wait_vector=raw[TaskField.WAIT_VECTOR],
        slices=raw[TaskField.SLICES],
    )


def find_task_by_sp(memory: PhysicalMemory, layout: KernelLayout,
                    sp: int) -> TaskView | None:
    """Find the task whose stack region contains ``sp``.

    This is how the hypervisor identifies the next thread at a context
    switch: it reads the register holding the new stack pointer from the
    VMCS and resolves it against the guest's task table.
    """
    for tid in range(layout.max_tasks):
        task = read_task(memory, layout, tid)
        if not task.alive:
            continue
        if task.stack_base <= sp <= task.stack_top:
            return task
    return None


def current_task(memory: PhysicalMemory, layout: KernelLayout) -> TaskView | None:
    """Read the task the guest kernel considers current."""
    struct_addr = memory.read_word(layout.current_addr)
    if struct_addr == 0:
        return None
    tid = (struct_addr - layout.task_table) // layout.task_struct_words
    if not 0 <= tid < layout.max_tasks:
        return None
    return read_task(memory, layout, tid)
