"""Guest memory layout, task-struct format, and syscall numbers.

Everything here is a contract between three parties: the kernel builder
(which emits code against these addresses), the machine loader (which maps
the regions with the right permissions), and the hypervisor (which
introspects task structs and programs whitelists from the symbols).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TaskState(enum.IntEnum):
    """Task-struct ``state`` field values."""

    FREE = 0
    READY = 1
    BLOCKED = 2


class TaskField(enum.IntEnum):
    """Word offsets of fields within a task struct."""

    TID = 0
    STATE = 1
    SAVED_SP = 2
    STACK_BASE = 3
    STACK_TOP = 4
    ENTRY_PC = 5
    WAIT_VECTOR = 6
    SLICES = 7


class Syscall(enum.IntEnum):
    """Syscall numbers dispatched through the in-memory syscall table."""

    YIELD = 0
    EXIT = 1
    GETTIME = 2
    READ_BLOCK = 3
    WRITE_BLOCK = 4
    RECV = 5
    PRINT = 6
    SPAWN = 7
    GETTID = 8
    PROCESS_MSG = 9
    SET_HANDLER = 10
    INVOKE_HANDLER = 11
    SPIN = 12


@dataclass(frozen=True)
class KernelLayout:
    """Word addresses of every region the kernel and hypervisor agree on."""

    # code and data regions
    kernel_code_base: int = 0x1000
    kdata_base: int = 0x4000
    task_table: int = 0x4100
    boot_stack_top: int = 0x4300
    stacks_base: int = 0x5000
    stack_words: int = 512
    nic_ring: int = 0x6000
    nic_ring_words: int = 16384
    user_code_base: int = 0x20000
    user_data_base: int = 0x30000
    user_data_words_per_task: int = 1024

    # capacities
    max_tasks: int = 8
    task_struct_words: int = 8

    # kernel global variables (offsets from kdata_base)
    off_current: int = 0
    off_ticks: int = 1
    off_uid: int = 3
    off_ctxsw_count: int = 4
    off_ops_table: int = 8
    ops_table_entries: int = 8
    off_init_table: int = 16  # word 0: count, then entry PCs
    init_table_entries: int = 8
    off_syscall_table: int = 32
    syscall_table_entries: int = 32

    #: Kernel-stack buffer size of the vulnerable syscall (Figure 10 uses a
    #: 128-byte buffer; ours is 128 words).
    vulnerable_buffer_words: int = 128
    #: Chunk size of the recursive network-ring copy; recursion depth is
    #: ``ceil(packet_len / chunk)``, which exceeds the RAS under big packets.
    ring_copy_chunk: int = 8

    @property
    def current_addr(self) -> int:
        return self.kdata_base + self.off_current

    @property
    def ticks_addr(self) -> int:
        return self.kdata_base + self.off_ticks

    @property
    def uid_addr(self) -> int:
        return self.kdata_base + self.off_uid

    @property
    def ctxsw_count_addr(self) -> int:
        return self.kdata_base + self.off_ctxsw_count

    @property
    def ops_table_addr(self) -> int:
        return self.kdata_base + self.off_ops_table

    @property
    def init_table_addr(self) -> int:
        return self.kdata_base + self.off_init_table

    @property
    def syscall_table_addr(self) -> int:
        return self.kdata_base + self.off_syscall_table

    def task_struct_addr(self, tid: int) -> int:
        """Guest address of task ``tid``'s struct."""
        return self.task_table + tid * self.task_struct_words

    def stack_region(self, tid: int) -> tuple[int, int]:
        """(base, top) of task ``tid``'s stack; the stack grows down from top."""
        base = self.stacks_base + tid * self.stack_words
        return base, base + self.stack_words

    def user_data_region(self, tid: int) -> tuple[int, int]:
        """(base, end) of task ``tid``'s private user data area."""
        base = self.user_data_base + tid * self.user_data_words_per_task
        return base, base + self.user_data_words_per_task


#: The layout used everywhere unless a test overrides it.
DEFAULT_LAYOUT = KernelLayout()
