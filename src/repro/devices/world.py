"""The nondeterministic host world.

Everything the recorded VM cannot predict comes from here: the wall-clock
TSC, hardware randomness, device latencies, and the arrival schedule of
external work (network packets).  A single seeded :class:`random.Random`
drives all of it, which makes whole-system tests reproducible while leaving
the guest genuinely unable to predict the values — exactly the situation
RnR recording is built for.

The world also owns the global event queue.  Devices schedule future events
("this disk read completes at cycle T", "a packet arrives at cycle T"), and
the machine loop fires them as simulated time passes.  The replayers never
construct a world: their events come from the input log.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.config import SimulationConfig


@dataclass(order=True)
class WorldEvent:
    """One scheduled future event, ordered by due cycle."""

    due_cycle: int
    sequence: int
    action: Callable[[], None] = field(compare=False)


class HostWorld:
    """Seeded source of all recording-side nondeterminism."""

    def __init__(self, config: SimulationConfig, seed: int | None = None):
        self.config = config
        self.rng = random.Random(config.seed if seed is None else seed)
        self._queue: list[WorldEvent] = []
        self._sequence = itertools.count()
        self._tsc_offset = self.rng.randrange(1 << 30)
        #: Cached due time of the earliest event (micro-optimization for the
        #: machine loop, which polls every instruction).
        self.next_due: int | None = None

    # ------------------------------------------------------------------
    # nondeterministic values
    # ------------------------------------------------------------------

    def tsc(self, now_cycles: int) -> int:
        """Read the wall-clock time-stamp counter.

        Monotonic in simulated time but with unpredictable drift, modelling
        the host clock the guest cannot foresee.
        """
        self._tsc_offset += self.rng.randrange(0, 64)
        return now_cycles + self._tsc_offset

    def random_word(self) -> int:
        """One rdrand result."""
        return self.rng.getrandbits(64)

    def latency(self, low_cycles: int, high_cycles: int) -> int:
        """A device-latency draw in ``[low, high]`` cycles."""
        return self.rng.randint(low_cycles, high_cycles)

    # ------------------------------------------------------------------
    # event queue
    # ------------------------------------------------------------------

    def schedule(self, due_cycle: int, action: Callable[[], None]):
        """Run ``action`` once simulated time reaches ``due_cycle``."""
        event = WorldEvent(due_cycle, next(self._sequence), action)
        heapq.heappush(self._queue, event)
        if self.next_due is None or due_cycle < self.next_due:
            self.next_due = due_cycle

    def run_due(self, now_cycles: int):
        """Fire every event whose due time has passed."""
        while self._queue and self._queue[0].due_cycle <= now_cycles:
            heapq.heappop(self._queue).action()
        self.next_due = self._queue[0].due_cycle if self._queue else None

    @property
    def pending_events(self) -> int:
        """Number of events not yet fired."""
        return len(self._queue)
