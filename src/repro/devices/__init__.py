"""Virtual devices and the nondeterministic host world.

During recording these models are the source of every nondeterministic
event: timer interrupts, disk completions, network packet arrivals, TSC
reads.  The :class:`~repro.devices.world.HostWorld` draws all of them from
one seeded RNG, so a *recorded* execution is reproducible for testing, while
remaining opaque to the replayers (which see only the input log, exactly as
the paper requires).

Device I/O follows the paper's hypervisor-mediated model (§2.1): every
device-register access VM-exits and is emulated by the hypervisor, which is
what makes recording possible without device cooperation.
"""

from repro.devices.bus import (
    IRQ_DISK,
    IRQ_NIC,
    IRQ_TIMER,
    NIC_MMIO_BASE,
    NIC_MMIO_SIZE,
    NIC_REG_RX_ADDR,
    NIC_REG_RX_LEN,
    NIC_REG_RX_PENDING,
    NIC_REG_RX_RING,
    PORT_CONSOLE,
    PORT_DISK_ADDR,
    PORT_DISK_BLOCK,
    PORT_DISK_CMD,
    PORT_DISK_STATUS,
    PORT_SHUTDOWN,
    DISK_CMD_READ,
    DISK_CMD_WRITE,
    DISK_STATUS_BUSY,
    DISK_STATUS_READY,
)
from repro.devices.interrupts import InterruptController
from repro.devices.world import HostWorld, WorldEvent
from repro.devices.disk import DiskDevice, VirtualDisk
from repro.devices.nic import NetworkDevice, Packet
from repro.devices.timer import TimerDevice
from repro.devices.console import ConsoleDevice

__all__ = [
    "IRQ_TIMER",
    "IRQ_DISK",
    "IRQ_NIC",
    "PORT_CONSOLE",
    "PORT_SHUTDOWN",
    "PORT_DISK_CMD",
    "PORT_DISK_BLOCK",
    "PORT_DISK_ADDR",
    "PORT_DISK_STATUS",
    "DISK_CMD_READ",
    "DISK_CMD_WRITE",
    "DISK_STATUS_BUSY",
    "DISK_STATUS_READY",
    "NIC_MMIO_BASE",
    "NIC_MMIO_SIZE",
    "NIC_REG_RX_PENDING",
    "NIC_REG_RX_LEN",
    "NIC_REG_RX_ADDR",
    "NIC_REG_RX_RING",
    "InterruptController",
    "HostWorld",
    "WorldEvent",
    "DiskDevice",
    "VirtualDisk",
    "NetworkDevice",
    "Packet",
    "TimerDevice",
    "ConsoleDevice",
]
