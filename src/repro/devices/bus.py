"""Platform wiring constants: IRQ vectors, PIO ports, MMIO windows.

These constants are the contract between the guest kernel's drivers
(assembled guest code) and the hypervisor's device emulation.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# interrupt vectors
# ---------------------------------------------------------------------------

IRQ_TIMER = 1
IRQ_DISK = 2
IRQ_NIC = 3

# ---------------------------------------------------------------------------
# port-mapped I/O
# ---------------------------------------------------------------------------

#: Console output: OUT writes one character code.
PORT_CONSOLE = 0
#: Shutdown: OUT to this port powers off the VM (clean workload end).
PORT_SHUTDOWN = 1
#: Disk command register.
PORT_DISK_CMD = 8
#: Disk block-number register.
PORT_DISK_BLOCK = 9
#: Disk DMA target address register.
PORT_DISK_ADDR = 10
#: Disk status register (IN).
PORT_DISK_STATUS = 11
#: Disk parameter/config register (OUT; real drivers program several of
#: these per request, which is most of their per-op exit traffic).
PORT_DISK_PARAM = 12

DISK_CMD_READ = 1
DISK_CMD_WRITE = 2

DISK_STATUS_READY = 0
DISK_STATUS_BUSY = 1

# ---------------------------------------------------------------------------
# NIC memory-mapped I/O
# ---------------------------------------------------------------------------

#: Base guest-physical address of the NIC register window.
NIC_MMIO_BASE = 0x0F00_0000
NIC_MMIO_SIZE = 16

#: Number of received packets not yet consumed (read).
NIC_REG_RX_PENDING = 0
#: Length in words of the packet at the head of the RX queue (read).
NIC_REG_RX_LEN = 1
#: Ring-buffer offset of the head packet's payload (read); reading this
#: register also *consumes* the head packet.
NIC_REG_RX_ADDR = 2
#: Guest-physical base of the RX DMA ring (written by the driver at boot).
NIC_REG_RX_RING = 3
