"""Console output device.

A pure sink: OUT to the console port appends one character code.  The
device has no guest-visible state, so replay needs nothing from the log —
the exits themselves still cost time, which the performance model charges.
"""

from __future__ import annotations


class ConsoleDevice:
    """Collects guest console output for tests and forensics reports."""

    def __init__(self):
        self._chars: list[int] = []

    def pio_write(self, value: int):
        """Handle an OUT to the console port."""
        self._chars.append(value & 0xFF)

    @property
    def text(self) -> str:
        """Everything printed so far, decoded as Latin-1."""
        return "".join(chr(code) for code in self._chars)

    def clear(self):
        self._chars.clear()
