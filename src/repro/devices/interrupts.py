"""Interrupt controller: queues device IRQs until the CPU can take them.

Devices raise vectors here; the machine loop delivers them at instruction
boundaries when the guest has interrupts enabled.  During recording the
hypervisor logs the exact instruction count of each delivery so replay can
re-inject at the same point (§7.3, asynchronous events).
"""

from __future__ import annotations

from collections import deque


class InterruptController:
    """A FIFO of pending interrupt vectors with simple coalescing.

    Like a real IOAPIC line, a vector that is already pending is not queued
    twice; the device's next state change re-raises it.
    """

    def __init__(self):
        self._pending: deque[int] = deque()
        self._pending_set: set[int] = set()
        #: Total interrupts raised (statistics).
        self.raised_count = 0

    def raise_irq(self, vector: int):
        """Assert an interrupt line."""
        self.raised_count += 1
        if vector not in self._pending_set:
            self._pending.append(vector)
            self._pending_set.add(vector)

    @property
    def has_pending(self) -> bool:
        """Whether any vector is waiting for delivery."""
        return bool(self._pending)

    def take(self) -> int:
        """Pop the next vector to deliver."""
        vector = self._pending.popleft()
        self._pending_set.discard(vector)
        return vector

    def clear(self):
        """Drop all pending interrupts (machine reset / checkpoint load)."""
        self._pending.clear()
        self._pending_set.clear()
