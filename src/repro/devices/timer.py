"""Programmable interval timer.

Drives the guest kernel's scheduler: each tick raises ``IRQ_TIMER``, whose
handler may context-switch.  Tick spacing carries small host-side jitter —
the interrupts are asynchronous nondeterministic events that the recorder
must log and the replayers must re-inject at exact instruction counts.
"""

from __future__ import annotations

from repro.devices.bus import IRQ_TIMER
from repro.devices.interrupts import InterruptController
from repro.devices.world import HostWorld


class TimerDevice:
    """Periodic tick source with jitter, active only while recording."""

    def __init__(self, world: HostWorld, intc: InterruptController,
                 period_cycles: int, jitter_cycles: int = 0):
        self.world = world
        self.intc = intc
        self.period_cycles = period_cycles
        self.jitter_cycles = jitter_cycles
        self.ticks = 0
        self._stopped = False

    def start(self, now_cycles: int):
        """Arm the first tick."""
        self._schedule_next(now_cycles)

    def stop(self):
        """Stop raising further ticks (machine shutdown)."""
        self._stopped = True

    def _schedule_next(self, now_cycles: int):
        jitter = (
            self.world.latency(0, self.jitter_cycles)
            if self.jitter_cycles else 0
        )
        due = now_cycles + self.period_cycles + jitter
        self.world.schedule(due, lambda: self._tick(due))

    def _tick(self, now_cycles: int):
        if self._stopped:
            return
        self.ticks += 1
        self.intc.raise_irq(IRQ_TIMER)
        self._schedule_next(now_cycles)
