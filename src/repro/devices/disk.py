"""Virtual disk: block store plus a PIO/DMA disk controller.

The guest driver programs the controller through PIO ports (block number,
DMA address, command) and receives a completion interrupt.  Read data moves
by DMA into guest memory *at interrupt-delivery time*, so recording can pin
the memory change to an exact instruction count and replay can reproduce it
(the content itself is **not** logged — the replayer owns a deterministic
replica of the virtual disk, which is why checkpoints must include modified
disk blocks, §4.6.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.devices.bus import (
    DISK_CMD_READ,
    DISK_CMD_WRITE,
    DISK_STATUS_BUSY,
    DISK_STATUS_READY,
    IRQ_DISK,
)
from repro.devices.interrupts import InterruptController
from repro.devices.world import HostWorld
from repro.errors import DeviceError
from repro.memory.physical import PhysicalMemory


class VirtualDisk:
    """Deterministic block store.

    Unwritten blocks are lazily synthesized from ``content_seed``, so the
    recorder's disk and every replayer's replica agree on all contents
    without shipping data through the log.  Written blocks are tracked for
    incremental checkpointing.
    """

    def __init__(self, block_size: int, content_seed: int):
        self.block_size = block_size
        self.content_seed = content_seed
        self._blocks: dict[int, list[int]] = {}
        self._dirty: set[int] = set()

    def _synthesize(self, block: int) -> list[int]:
        rng = random.Random((self.content_seed << 32) ^ block)
        return [rng.getrandbits(64) for _ in range(self.block_size)]

    def read_block(self, block: int) -> list[int]:
        """Read one block (synthesizing pristine content on first touch)."""
        data = self._blocks.get(block)
        if data is None:
            data = self._synthesize(block)
            self._blocks[block] = data
        return list(data)

    def write_block(self, block: int, words: Iterable[int]):
        """Overwrite one block."""
        data = list(words)
        if len(data) != self.block_size:
            raise DeviceError(
                f"block write of {len(data)} words, expected {self.block_size}"
            )
        self._blocks[block] = data
        self._dirty.add(block)

    def dirty_blocks(self) -> frozenset[int]:
        """Blocks written since the last :meth:`clear_dirty`."""
        return frozenset(self._dirty)

    def clear_dirty(self):
        self._dirty.clear()

    def snapshot_blocks(self, blocks: Iterable[int]) -> dict[int, tuple[int, ...]]:
        """Copy the given blocks for a checkpoint."""
        return {block: tuple(self.read_block(block)) for block in blocks}

    def restore_blocks(self, snapshot: dict[int, tuple[int, ...]]):
        """Restore blocks captured by :meth:`snapshot_blocks`."""
        for block, words in snapshot.items():
            self._blocks[block] = list(words)
            self._dirty.add(block)


@dataclass(frozen=True)
class _PendingDma:
    """A completed read whose data lands at interrupt delivery."""

    block: int
    addr: int


class DiskDevice:
    """PIO-programmed disk controller with DMA and completion interrupts."""

    #: Completion latency range in cycles (drawn per request).
    LATENCY_LOW = 2_000
    LATENCY_HIGH = 8_000

    def __init__(self, disk: VirtualDisk, memory: PhysicalMemory,
                 intc: InterruptController, world: HostWorld | None):
        self.disk = disk
        self.memory = memory
        self.intc = intc
        self.world = world
        self._reg_block = 0
        self._reg_addr = 0
        self._reg_param = 0
        self._outstanding = 0
        self._pending_dma: list[_PendingDma] = []
        #: Statistics for the benchmarks.
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # PIO interface (called by the hypervisor's device emulation)
    # ------------------------------------------------------------------

    def pio_write(self, port_role: str, value: int, now_cycles: int):
        """Handle an OUT to one of the disk's ports.

        ``port_role`` is one of ``"cmd"``, ``"block"``, ``"addr"`` — the
        hypervisor resolves port numbers before calling.
        """
        if port_role == "param":
            self._reg_param = value
        elif port_role == "block":
            self._reg_block = value
        elif port_role == "addr":
            self._reg_addr = value
        elif port_role == "cmd":
            self._command(value, now_cycles)
        else:
            raise DeviceError(f"unknown disk port role {port_role!r}")

    def pio_read_status(self) -> int:
        """Handle an IN from the status port."""
        return DISK_STATUS_BUSY if self._outstanding else DISK_STATUS_READY

    def _command(self, command: int, now_cycles: int):
        if command == DISK_CMD_READ:
            self.reads += 1
            request = _PendingDma(block=self._reg_block, addr=self._reg_addr)
            if self.world is not None:
                # Recording: completion fires on the world's clock.
                self._outstanding += 1
                due = now_cycles + self.world.latency(
                    self.LATENCY_LOW, self.LATENCY_HIGH
                )
                self.world.schedule(due, lambda: self._complete_read(request))
            # Replaying: the DMA landing and its interrupt come from the
            # input log; the command itself only needs counting.
        elif command == DISK_CMD_WRITE:
            self.writes += 1
            # Writes move data out of guest memory synchronously — this is
            # deterministic guest state, so the replayers run it too and
            # their replica disks evolve identically.
            words = self.memory.read_block(self._reg_addr, self.disk.block_size)
            self.disk.write_block(self._reg_block, words)
            if self.world is not None:
                self._outstanding += 1
                due = now_cycles + self.world.latency(
                    self.LATENCY_LOW, self.LATENCY_HIGH
                )
                self.world.schedule(due, self._complete_write)
        else:
            raise DeviceError(f"unknown disk command {command}")

    # ------------------------------------------------------------------
    # completions
    # ------------------------------------------------------------------

    def _complete_read(self, request: _PendingDma):
        self._pending_dma.append(request)
        self._outstanding -= 1
        self.intc.raise_irq(IRQ_DISK)

    def _complete_write(self):
        self._outstanding -= 1
        self.intc.raise_irq(IRQ_DISK)

    def capture_regs(self) -> tuple[int, int, int]:
        """Snapshot controller registers (checkpoints must include them:
        an OUT sequence may straddle a checkpoint boundary)."""
        return (self._reg_block, self._reg_addr, self._reg_param)

    def restore_regs(self, regs: tuple[int, int, int]):
        """Restore controller registers captured by :meth:`capture_regs`."""
        self._reg_block, self._reg_addr, self._reg_param = regs

    def flush_dma(self) -> list[tuple[int, int]]:
        """Land all completed reads into guest memory.

        Called by the machine immediately before delivering ``IRQ_DISK`` so
        that the memory change happens at the recorded instruction count.
        Returns ``(block, addr)`` pairs for the recorder's log.
        """
        landed = []
        for request in self._pending_dma:
            words = self.disk.read_block(request.block)
            self.memory.write_block(request.addr, words)
            landed.append((request.block, request.addr))
        self._pending_dma.clear()
        return landed
