"""Durable priority job queue for the replay service daemon.

The scheduler daemon (:mod:`repro.service`) must survive its own death:
``kill -9`` at any instant may lose neither an accepted job nor complete
one twice.  The queue therefore lives on disk as ``queue.jsonl`` — an
append-only, CRC'd, event-sourced journal written with exactly the
discipline of the frame and telemetry journals (``store/runstore.py``,
``obs/journal.py``): an unbuffered handle, one canonical-JSON entry per
line wrapped as ``{"crc": ..., "body": ...}``, monotone sequence
numbers, and recovery that trusts nothing but the CRCs.  A torn tail is
cut at the last whole entry, never parsed.

The journal records *events*, not state:

======================  ==============================================
``serve``               a daemon began serving this store (pid, wall)
``submit``              a job was accepted (full spec + nonce); the
                        daemon acks a submission only *after* this
                        entry is fsync'd — the write-ahead ack that
                        makes "accepted" mean "durable"
``start``               a worker launched the job (launch ordinal,
                        resume flag)
``preempt``             the scheduler stopped a running job to make
                        room for higher-priority work; it re-queues
                        with ``resume=True`` and no failure charged
``fail``                a launch failed (error text); the job
                        re-queues with ``resume=True``
``quarantine``          failures exhausted ``max_resume_attempts`` —
                        the job is poison and never runs again
``done``                terminal success, with the result summary
                        (verdicts, digest, log bytes, instructions)
``drain``               the daemon stopped accepting submissions
======================  ==============================================

Replaying the event log rebuilds the queue: a job whose last event is
``start`` was *in flight* when the daemon died, so recovery re-queues it
with ``resume=True`` — its per-job run store resumes it bit-identically,
and its durable ``done`` (had it finished) would have parked it forever.
That pair of rules is the whole crash-consistency argument: accepted
jobs persist because the ack follows the fsync, and completed jobs never
re-run because ``done`` is terminal.

Priority follows the paper's CR/AR split: alarm-bearing sessions
(class 0, ``"ar"``) preempt clean CR catch-up (class 1, ``"cr"``).
Within a class, FIFO by submission index.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field

from repro.errors import QueueFullError, StoreCorruptError
from repro.store.runstore import canonical_body

#: File name inside the service's store directory.
JOB_QUEUE_NAME = "queue.jsonl"

#: Priority classes, lowest number runs first (paper's CR/AR split).
PRIORITY_AR = 0
PRIORITY_CR = 1

_STATES = ("queued", "running", "done", "quarantined")


def _crc(body: dict) -> int:
    return zlib.crc32(canonical_body(body))


def job_dir_name(index: int) -> str:
    """The per-job run-store directory name under the service store."""
    return f"job-{index:06d}"


@dataclass
class QueuedJob:
    """One job's current state, rebuilt from (or about to enter) the journal."""

    index: int
    job_id: str
    benchmark: str
    seed: int
    attack: str | None
    max_instructions: int
    period_s: float
    priority: int
    nonce: str
    state: str = "queued"
    #: Total worker launches so far (start events).
    launches: int = 0
    #: Failed launches (fail events) — preemptions never count.
    failures: int = 0
    #: Whether the next launch should resume from the job's run store.
    resume: bool = False
    submitted_wall: float = 0.0
    #: Wall time of the *first* launch (queue-wait latency endpoint).
    started_wall: float | None = None
    finished_wall: float | None = None
    error: str = ""
    #: Result summary from the ``done`` event (verdicts, digest, ...).
    result: dict | None = None
    #: In-memory retry-backoff gate; never journaled (a resumed daemon
    #: retries immediately — the backoff protected the old process).
    not_before: float = field(default=0.0, compare=False)

    def session_spec(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "seed": self.seed,
            "attack": self.attack,
            "max_instructions": self.max_instructions,
            "period_s": self.period_s,
        }

    def wait_s(self) -> float | None:
        if self.started_wall is None:
            return None
        return max(0.0, self.started_wall - self.submitted_wall)

    def run_s(self) -> float | None:
        if self.started_wall is None or self.finished_wall is None:
            return None
        return max(0.0, self.finished_wall - self.started_wall)

    def to_row(self) -> dict:
        """The structured row ``repro queue`` prints for this job."""
        return {
            "job": self.job_id,
            "state": self.state,
            "priority": "ar" if self.priority == PRIORITY_AR else "cr",
            "benchmark": self.benchmark,
            "seed": self.seed,
            "attack": self.attack,
            "launches": self.launches,
            "failures": self.failures,
            "error": self.error,
            "result": self.result,
        }


def default_priority(attack: str | None) -> int:
    """Alarm-bearing (attack) sessions outrank clean CR catch-up."""
    return PRIORITY_AR if attack else PRIORITY_CR


# ----------------------------------------------------------------------
# scan / rebuild
# ----------------------------------------------------------------------


@dataclass
class JobQueueScan:
    """Validated contents of one queue journal."""

    path: str
    #: Event bodies that passed CRC + framing, in journal order.
    events: tuple = ()
    #: Recovery notes (torn tail cut, CRC mismatch, sequence gap).
    notes: tuple = ()
    #: Byte length of the valid prefix (resume truncates to this).
    valid_bytes: int = 0

    @property
    def next_seq(self) -> int:
        seqs = [event.get("seq", -1) for event in self.events]
        return max(seqs) + 1 if seqs else 0


def scan_job_queue(path: str) -> JobQueueScan:
    """CRC-validate a queue journal, tolerating a torn tail.

    Mirrors the telemetry journal's scan: events are accepted only while
    framing, CRC, and the monotone sequence all hold; the first
    violation cuts the journal there and everything after is reported as
    a note, never parsed.
    """
    events: list[dict] = []
    notes: list[str] = []
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return JobQueueScan(path=path, notes=("queue journal missing",))
    valid_bytes = 0
    offset = 0
    expected_seq = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            notes.append(
                f"queue journal: dropped {len(data) - offset} byte torn "
                f"tail after event {len(events) - 1}"
            )
            break
        line = data[offset:newline]
        try:
            envelope = json.loads(line)
            body = envelope["body"]
            crc = envelope["crc"]
        except (ValueError, KeyError, TypeError):
            notes.append(
                f"queue journal: dropped {len(data) - offset} trailing "
                f"bytes (unparseable event after event {len(events) - 1})"
            )
            break
        if _crc(body) != crc:
            notes.append(
                f"queue journal: dropped {len(data) - offset} trailing "
                f"bytes (CRC mismatch at event {len(events)})"
            )
            break
        seq = body.get("seq", -1)
        if seq != expected_seq:
            notes.append(
                f"queue journal: sequence jump at event {len(events)} "
                f"(expected seq {expected_seq}, found {seq}) — dropping "
                f"it and everything after"
            )
            break
        expected_seq = seq + 1
        events.append(body)
        offset = newline + 1
        valid_bytes = offset
    return JobQueueScan(path=path, events=tuple(events), notes=tuple(notes),
                        valid_bytes=valid_bytes)


def replay_events(events) -> tuple[dict, dict, list[str]]:
    """Fold a journal's events into queue state.

    Returns ``(jobs by id, nonce -> job_id, recovery notes)``.  Jobs
    whose last event is ``start`` were in flight when the writer died;
    they come back ``queued`` with ``resume=True`` — the note records
    each such heal.
    """
    jobs: dict[str, QueuedJob] = {}
    nonces: dict[str, str] = {}
    notes: list[str] = []
    for event in events:
        kind = event.get("kind")
        if kind in ("serve", "drain"):
            continue
        job_id = event.get("job")
        if kind == "submit":
            job = QueuedJob(
                index=event["index"],
                job_id=job_id,
                benchmark=event["benchmark"],
                seed=event["seed"],
                attack=event.get("attack"),
                max_instructions=event["max_instructions"],
                period_s=event.get("period_s", 1.0),
                priority=event["priority"],
                nonce=event.get("nonce", ""),
                submitted_wall=event.get("wall", 0.0),
            )
            jobs[job_id] = job
            if job.nonce:
                nonces[job.nonce] = job_id
            continue
        job = jobs.get(job_id)
        if job is None:
            notes.append(f"queue journal: {kind} event for unknown job "
                         f"{job_id!r} ignored")
            continue
        if kind == "start":
            job.state = "running"
            job.launches += 1
            job.resume = bool(event.get("resume", False))
            if job.started_wall is None:
                job.started_wall = event.get("wall", 0.0)
        elif kind == "preempt":
            job.state = "queued"
            job.resume = True
        elif kind == "fail":
            job.state = "queued"
            job.resume = True
            job.failures += 1
            job.error = event.get("error", "")
        elif kind == "quarantine":
            job.state = "quarantined"
            job.failures += 1
            job.error = event.get("error", "")
            job.finished_wall = event.get("wall", 0.0)
        elif kind == "done":
            job.state = "done"
            job.error = ""
            job.result = event.get("result")
            job.finished_wall = event.get("wall", 0.0)
    for job in jobs.values():
        if job.state == "running":
            job.state = "queued"
            job.resume = True
            notes.append(
                f"{job.job_id}: was in flight at the last crash — "
                f"re-queued with resume"
            )
    return jobs, nonces, notes


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    position = min(len(sorted_values) - 1,
                   int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[position]


@dataclass(frozen=True)
class JobQueueStats:
    """Aggregate queue accounting (what ``repro queue`` summarizes)."""

    total: int
    queued: int
    running: int
    done: int
    quarantined: int
    #: Queue-wait latency (submit -> first launch) percentiles, seconds.
    wait_p50_s: float
    wait_p99_s: float
    #: Completion latency (first launch -> done) percentiles, seconds.
    run_p50_s: float
    run_p99_s: float

    def to_json(self) -> dict:
        return {
            "total": self.total,
            "queued": self.queued,
            "running": self.running,
            "done": self.done,
            "quarantined": self.quarantined,
            "wait_p50_s": self.wait_p50_s,
            "wait_p99_s": self.wait_p99_s,
            "run_p50_s": self.run_p50_s,
            "run_p99_s": self.run_p99_s,
        }


def compute_stats(jobs) -> JobQueueStats:
    jobs = list(jobs)
    counts = {state: 0 for state in _STATES}
    waits: list[float] = []
    runs: list[float] = []
    for job in jobs:
        counts[job.state] = counts.get(job.state, 0) + 1
        wait = job.wait_s()
        if wait is not None:
            waits.append(wait)
        if job.state == "done":
            run = job.run_s()
            if run is not None:
                runs.append(run)
    waits.sort()
    runs.sort()
    return JobQueueStats(
        total=len(jobs),
        queued=counts["queued"],
        running=counts["running"],
        done=counts["done"],
        quarantined=counts["quarantined"],
        wait_p50_s=_percentile(waits, 0.50),
        wait_p99_s=_percentile(waits, 0.99),
        run_p50_s=_percentile(runs, 0.50),
        run_p99_s=_percentile(runs, 0.99),
    )


@dataclass(frozen=True)
class JobQueueState:
    """A read-only view of a queue journal (for ``repro queue``/``top``)."""

    path: str
    jobs: tuple
    notes: tuple

    def stats(self) -> JobQueueStats:
        return compute_stats(self.jobs)


def load_job_queue_state(store_dir: str) -> JobQueueState:
    """Rebuild queue state from a service store without opening a writer.

    Safe to call while a daemon is live (the journal is append-only and
    every entry is self-validating); readers simply see a prefix.
    """
    path = os.path.join(store_dir, JOB_QUEUE_NAME)
    scan = scan_job_queue(path)
    jobs, _, replay_notes = replay_events(scan.events)
    ordered = tuple(sorted(jobs.values(), key=lambda job: job.index))
    return JobQueueState(path=path, jobs=ordered,
                         notes=scan.notes + tuple(replay_notes))


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------


class JobQueue:
    """The daemon's single-writer handle on the durable queue.

    Opening the queue *is* crash recovery: the journal's valid prefix is
    kept (any torn tail truncated away, exactly like the frame journal),
    the event log is replayed into job state, and jobs that were running
    when the previous daemon died come back queued with
    ``resume=True``.  All mutations append an event before touching
    in-memory state, and every append fsyncs by default — the queue is
    the service's source of truth, and it is tiny (one line per state
    transition, not per frame), so "always" costs nothing measurable.
    """

    def __init__(self, store_dir: str, *, limit: int = 256,
                 fsync: bool = True):
        if not os.path.isdir(store_dir):
            raise StoreCorruptError("service store directory missing",
                                    path=store_dir)
        self.store_dir = store_dir
        self.path = os.path.join(store_dir, JOB_QUEUE_NAME)
        self.limit = max(1, limit)
        self.fsync = fsync
        scan = scan_job_queue(self.path)
        self.jobs, self._nonces, replay_notes = replay_events(scan.events)
        self.recovery_notes = scan.notes + tuple(replay_notes)
        self._seq = scan.next_seq
        self._next_index = (max((job.index for job in self.jobs.values()),
                                default=-1) + 1)
        if os.path.exists(self.path) and scan.valid_bytes < os.path.getsize(
                self.path):
            with open(self.path, "r+b") as handle:
                handle.truncate(scan.valid_bytes)
        self._handle = open(self.path, "ab", buffering=0)
        self._closed = False

    # ------------------------------------------------------------------
    # journal append
    # ------------------------------------------------------------------

    def _append(self, kind: str, body: dict):
        body = dict(body)
        body["kind"] = kind
        body["seq"] = self._seq
        body["wall"] = time.time()
        self._seq += 1
        line = json.dumps(
            {"crc": _crc(body), "body": body},
            sort_keys=True, separators=(",", ":"), default=str,
        ).encode("utf-8") + b"\n"
        self._handle.write(line)
        if self.fsync:
            os.fsync(self._handle.fileno())
        return body

    # ------------------------------------------------------------------
    # queue operations (each = one durable event + the state fold)
    # ------------------------------------------------------------------

    def note_serve(self, pid: int):
        self._append("serve", {"pid": pid})

    def note_drain(self):
        self._append("drain", {})

    def queued_depth(self) -> int:
        return sum(1 for job in self.jobs.values() if job.state == "queued")

    def running_jobs(self) -> list[QueuedJob]:
        return [job for job in self.jobs.values() if job.state == "running"]

    def submit(self, spec: dict, *, nonce: str,
               priority: int | None = None) -> tuple[QueuedJob, bool]:
        """Admit one job; returns ``(job, accepted_now)``.

        ``accepted_now`` is False for a nonce the journal already holds
        — the idempotent-retry path (a duplicated submit message, or a
        client re-sending after a lost ack) returns the original job
        without a second journal entry, so a retried submission can
        never run twice.

        The event is durable (fsync'd) before this returns: the caller
        may ack the moment it gets the job back, and a crash at any
        earlier instant loses only a submission that was never acked.
        """
        if nonce and nonce in self._nonces:
            return self.jobs[self._nonces[nonce]], False
        if self.queued_depth() >= self.limit:
            raise QueueFullError("service queue is full",
                                 queued=self.queued_depth(),
                                 limit=self.limit)
        index = self._next_index
        self._next_index += 1
        job_id = job_dir_name(index)
        attack = spec.get("attack")
        body = {
            "job": job_id,
            "index": index,
            "benchmark": spec["benchmark"],
            "seed": int(spec.get("seed", 2018)),
            "attack": attack,
            "max_instructions": int(spec.get("max_instructions", 200_000)),
            "period_s": float(spec.get("period_s", 1.0)),
            "priority": (int(priority) if priority is not None
                         else default_priority(attack)),
            "nonce": nonce,
        }
        event = self._append("submit", body)
        job = QueuedJob(
            index=index, job_id=job_id,
            benchmark=body["benchmark"], seed=body["seed"],
            attack=body["attack"],
            max_instructions=body["max_instructions"],
            period_s=body["period_s"], priority=body["priority"],
            nonce=nonce, submitted_wall=event["wall"],
        )
        self.jobs[job_id] = job
        if nonce:
            self._nonces[nonce] = job_id
        return job, True

    def next_runnable(self, now: float | None = None) -> QueuedJob | None:
        """The queued job that should launch next: lowest (class, index)
        among jobs whose retry backoff has elapsed."""
        if now is None:
            now = time.monotonic()
        best = None
        for job in self.jobs.values():
            if job.state != "queued" or job.not_before > now:
                continue
            if best is None or (job.priority, job.index) < (best.priority,
                                                            best.index):
                best = job
        return best

    def mark_start(self, job: QueuedJob):
        self._append("start", {"job": job.job_id, "launch": job.launches,
                               "resume": job.resume})
        job.state = "running"
        job.launches += 1
        if job.started_wall is None:
            job.started_wall = time.time()

    def mark_preempt(self, job: QueuedJob):
        self._append("preempt", {"job": job.job_id})
        job.state = "queued"
        job.resume = True

    def mark_fail(self, job: QueuedJob, error: str, *,
                  max_failures: int, backoff_s: float = 0.0) -> bool:
        """Record a failed launch; quarantine when failures exhaust the
        budget.  Returns True when the job was quarantined."""
        if job.failures + 1 > max_failures:
            self._append("quarantine", {"job": job.job_id, "error": error})
            job.state = "quarantined"
            job.failures += 1
            job.error = error
            job.finished_wall = time.time()
            return True
        self._append("fail", {"job": job.job_id, "error": error})
        job.state = "queued"
        job.resume = True
        job.failures += 1
        job.error = error
        if backoff_s > 0.0:
            job.not_before = time.monotonic() + backoff_s * (2 ** (
                job.failures - 1))
        return False

    def mark_done(self, job: QueuedJob, result: dict):
        self._append("done", {"job": job.job_id, "result": result})
        job.state = "done"
        job.error = ""
        job.result = result
        job.finished_wall = time.time()

    def stats(self) -> JobQueueStats:
        return compute_stats(list(self.jobs.values()))

    def rows(self) -> list[dict]:
        return [job.to_row() for job in
                sorted(self.jobs.values(), key=lambda job: job.index)]

    def close(self):
        if self._closed:
            return
        self._closed = True
        if self.fsync:
            try:
                os.fsync(self._handle.fileno())
            except OSError:
                pass
        self._handle.close()
