"""The durable run store: crash-safe persistence for one session.

Each run owns a directory:

``MANIFEST.json``
    A CRC'd JSON manifest — ``{"crc": <crc32>, "body": {...}}`` where the
    CRC covers the canonical (sorted-keys, no-whitespace) dump of the
    body.  Every update writes a temp file in the same directory and
    ``os.replace``\\ s it over the old one, so the manifest is atomic: a
    reader sees the old version or the new one, never a torn mix.

``journal.v3``
    A write-ahead journal of the recording: the v3 (``0xF6``,
    CRC-per-frame) frames from the pipeline's
    :class:`~repro.rnr.log.RecordingLogTee`, appended in emission order
    before they enter the frame queue.  A crash leaves at worst a torn
    final frame, which recovery truncates at the last whole frame.

``checkpoints/ckpt-<id>.bin``
    One file per CR checkpoint, serialized *incrementally*: each file
    holds only the pages/blocks dirtied since its parent (exactly the
    in-memory :class:`~repro.replay.checkpoint.Checkpoint`), with the
    parent chain and a per-file CRC recorded in the manifest.  Persisting
    stays proportional to dirty state, mirroring the in-memory
    :class:`~repro.replay.checkpoint.CheckpointStore`.

Write ordering gives recovery its invariant: a frame is journaled before
the CR can consume it, and a checkpoint is persisted only after the CR
consumed the records up to its ``InputLogPtr`` — so every surviving
checkpoint refers to a log prefix the journal already held.  The fsync
policy (``always``/``interval``/``never``) trades the durability window
of the journal tail against write cost; see ``docs/RELIABILITY.md``.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import threading
import zlib
from typing import TYPE_CHECKING

from repro.errors import HypervisorError, LogError, StoreCorruptError
from repro.obs.journal import TELEMETRY_JOURNAL_NAME, TelemetryJournalWriter
from repro.rnr.session import SessionManifest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan
    from repro.replay.checkpoint import Checkpoint
    from repro.rnr.recorder import RecordingRun
    from repro.store.recover import ResumePoint

RUN_STORE_MAGIC = "rnr-safe-run-store"
RUN_STORE_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "journal.v3"
CHECKPOINT_DIR = "checkpoints"

_FSYNC_POLICIES = ("always", "interval", "never")


def canonical_body(body: dict) -> bytes:
    """The canonical byte form of a manifest body (what the CRC covers)."""
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def encode_manifest(body: dict) -> bytes:
    """Wrap a manifest body with its CRC for writing."""
    payload = {"crc": zlib.crc32(canonical_body(body)), "body": body}
    return (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode()


def decode_manifest(raw: bytes, path: str) -> dict:
    """Validate and unwrap a manifest file's bytes into its body.

    Raises :class:`~repro.errors.StoreCorruptError` on structural damage
    (bad JSON, missing fields, CRC mismatch, wrong magic) and a plain
    :class:`~repro.errors.LogError` when the manifest is *newer* than
    this code supports — that is a version skew, not corruption.
    """
    try:
        payload = json.loads(raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptError(
            f"manifest is not valid JSON: {exc}", path=path) from None
    if not isinstance(payload, dict) or "crc" not in payload \
            or "body" not in payload:
        raise StoreCorruptError(
            "manifest is missing its crc/body envelope", path=path)
    body = payload["body"]
    if not isinstance(body, dict):
        raise StoreCorruptError("manifest body is not an object", path=path)
    actual = zlib.crc32(canonical_body(body))
    if actual != payload["crc"]:
        raise StoreCorruptError(
            f"manifest CRC mismatch (stored {payload['crc']}, "
            f"computed {actual})", path=path)
    if body.get("magic") != RUN_STORE_MAGIC:
        raise StoreCorruptError(
            f"not a run-store manifest (magic {body.get('magic')!r})",
            path=path)
    version = body.get("version")
    if not isinstance(version, int) or version < 1:
        raise StoreCorruptError(
            f"manifest has an invalid version {version!r}", path=path)
    if version > RUN_STORE_VERSION:
        raise LogError(
            f"run-store manifest version {version} is newer than this "
            f"code supports (max {RUN_STORE_VERSION}); upgrade before "
            f"resuming {path}")
    return body


def _fsync_file(handle):
    handle.flush()
    os.fsync(handle.fileno())


def _atomic_write(target: pathlib.Path, data: bytes, fsync: bool):
    """Write-temp-then-replace so ``target`` is never torn."""
    temp = target.with_name(target.name + ".tmp")
    with temp.open("wb") as handle:
        handle.write(data)
        if fsync:
            _fsync_file(handle)
    os.replace(temp, target)


class RunStoreWriter:
    """Owns one run directory for the lifetime of a (resumable) run.

    Thread model matches the pipeline's thread backend: the producer
    thread appends journal frames, the CR thread persists checkpoints;
    the manifest (and the checkpoint chain it records) is guarded by a
    lock.  This is why durability forces the pipeline onto its thread
    backend — a CR in another OS process could not share the writer.

    ``resume`` threads a prior :class:`~repro.store.recover.ResumePoint`
    back in: the validated checkpoint chain is carried forward (the
    files are already on disk and stay valid — replay is deterministic),
    and the journal is either kept as-is (the recording completed) or
    truncated for the deterministic re-record.

    ``fault_plan`` hooks the ``"journal"`` worker role after each frame
    append — the kill schedule the crash-recovery tests drive.
    """

    def __init__(self, path: str | os.PathLike, session: SessionManifest,
                 *, fsync: str = "interval", fsync_interval: int = 8,
                 frame_records: int | None = None,
                 fault_plan: "FaultPlan | None" = None,
                 attempt: int = 0,
                 allow_hard_kill: bool = False,
                 resume: "ResumePoint | None" = None):
        if fsync not in _FSYNC_POLICIES:
            raise HypervisorError(
                f"unknown journal fsync policy {fsync!r}; choose one of "
                f"{', '.join(_FSYNC_POLICIES)}"
            )
        self.path = pathlib.Path(path)
        self.session = session
        self.fsync = fsync
        self.fsync_interval = max(1, fsync_interval)
        self.frame_records = frame_records
        self.attempt = attempt
        self._fault_plan = fault_plan
        self._allow_hard_kill = allow_hard_kill
        self._lock = threading.Lock()
        self._state = "recording"
        self._recording_meta: dict | None = None
        self._result_meta: dict | None = None
        #: Checkpoint chain entries keyed by checkpoint id (insertion
        #: ordered; ids are icount-ordered by construction).  A restarted
        #: CR re-persists the same ids with identical content, so keying
        #: by id makes that idempotent.
        self._chain: dict[int, dict] = {}
        self._frames = 0
        self._journal_bytes = 0
        self._unsynced_frames = 0
        self._closed = False
        self._telemetry_journal: TelemetryJournalWriter | None = None
        self._telemetry_resume = resume is not None

        self.path.mkdir(parents=True, exist_ok=True)
        (self.path / CHECKPOINT_DIR).mkdir(exist_ok=True)
        journal = self.path / JOURNAL_NAME
        keep_journal = resume is not None and resume.recording_complete
        if resume is not None:
            for entry in resume.chain_entries:
                self._chain[entry["id"]] = dict(entry)
            self._recording_meta = (dict(resume.recording_meta)
                                    if resume.recording_meta else None)
        if keep_journal:
            # The journal already holds the complete recording; nothing
            # will be re-recorded, so no append handle is needed.
            self._journal = None
            self._state = "log-sealed"
            self._frames = resume.frames
            self._journal_bytes = resume.journal_bytes_valid
            if resume.journal_bytes_valid != resume.journal_bytes_total:
                # Garbage past the last whole frame (torn write that
                # still ended on the End record): drop it so the file
                # is exactly the valid prefix.
                with journal.open("rb+") as handle:
                    handle.truncate(resume.journal_bytes_valid)
        else:
            # Fresh run, or a resume that must re-record: the journal is
            # rewritten from frame zero (the deterministic re-record
            # reproduces the prefix byte-identically).  Unbuffered, so a
            # crash loses at most what the OS page cache held — never a
            # Python-side buffer that a dying object might flush as
            # garbage after recovery already truncated the file.
            self._journal = journal.open("wb", buffering=0)
            self._recording_meta = None
        self._write_manifest()

    # ------------------------------------------------------------------
    # journal
    # ------------------------------------------------------------------

    def append_frame(self, frame: bytes):
        """Journal one v3 frame (write-ahead: called before the frame
        enters the pipeline queue)."""
        journal = self._journal
        if journal is None:
            raise StoreCorruptError(
                "journal is sealed; a resumed-complete run records "
                "nothing", path=str(self.path))
        journal.write(frame)
        index = self._frames
        self._frames += 1
        self._journal_bytes += len(frame)
        self._unsynced_frames += 1
        if self.fsync == "always" or (
                self.fsync == "interval"
                and self._unsynced_frames >= self.fsync_interval):
            _fsync_file(journal)
            self._unsynced_frames = 0
        if self._fault_plan is not None:
            self._fault_plan.fire_worker_fault(
                "journal", index, self.attempt,
                allow_hard_kill=self._allow_hard_kill,
            )

    def seal_log(self, recording: "RecordingRun"):
        """The recording finished: flush the journal and persist its
        summary (the scalars a resumed-complete run rebuilds its
        :class:`~repro.rnr.recorder.RecordingRun` from)."""
        with self._lock:
            if self._journal is not None and self.fsync != "never":
                _fsync_file(self._journal)
                self._unsynced_frames = 0
            metrics = recording.metrics
            self._recording_meta = {
                "label": metrics.label,
                "backras_bytes": metrics.backras_bytes,
                "instructions": metrics.instructions,
                "guest_cycles": metrics.guest_cycles,
                "log_bytes": metrics.log_bytes,
                "log_records": len(recording.log),
                "alarms": metrics.alarms,
                "evicts": metrics.evicts,
                "context_switches": metrics.context_switches,
                "stop_reason": recording.stop_reason,
            }
            self._state = "log-sealed"
            self._write_manifest_locked()

    # ------------------------------------------------------------------
    # telemetry journal
    # ------------------------------------------------------------------

    def telemetry_journal(self) -> TelemetryJournalWriter:
        """The run's durable telemetry journal (created on first use).

        Shares the store's fsync policy and attempt number; on a resumed
        run the predecessor's valid entries are kept (torn tail
        truncated) and this attempt's entries append after them, so the
        journal holds the whole history of the run across heals without
        ever mixing the attempts' icount streams.
        """
        with self._lock:
            if self._telemetry_journal is None:
                self._telemetry_journal = TelemetryJournalWriter(
                    str(self.path / TELEMETRY_JOURNAL_NAME),
                    fsync=self.fsync,
                    fsync_interval=self.fsync_interval,
                    attempt=self.attempt,
                    resume=self._telemetry_resume,
                )
            return self._telemetry_journal

    def persist_telemetry(self, snapshot):
        """Journal a final (cumulative) telemetry snapshot for the run."""
        if snapshot is None:
            return
        self.telemetry_journal().append_snapshot(snapshot)

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------

    def persist_checkpoint(self, checkpoint: "Checkpoint",
                           bookkeeping: dict):
        """Durably store one incremental checkpoint plus the CR's
        bookkeeping at that instant (the resume anchor's state)."""
        blob = pickle.dumps(
            {"checkpoint": checkpoint, "bookkeeping": bookkeeping},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        name = f"ckpt-{checkpoint.checkpoint_id:06d}.bin"
        target = self.path / CHECKPOINT_DIR / name
        _atomic_write(target, blob, fsync=self.fsync != "never")
        entry = {
            "id": checkpoint.checkpoint_id,
            "icount": checkpoint.icount,
            "cycles": checkpoint.cycles,
            "parent": checkpoint.parent_id,
            "log_position": checkpoint.log_position,
            # The recover-to-epoch-plan inputs (docs/LOG_FORMAT.md): with
            # icount/log_position this pc lets recovery pick epoch
            # boundaries without unpickling the blob — a checkpoint
            # parked on a kernel breakpoint pc is not a safe boundary.
            "pc": checkpoint.cpu_state.pc,
            "file": f"{CHECKPOINT_DIR}/{name}",
            "crc": zlib.crc32(blob),
            "bytes": len(blob),
        }
        with self._lock:
            self._chain[entry["id"]] = entry
            self._write_manifest_locked()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def finish(self, final_icount: int, verdicts=()):
        """Mark the run complete (CR done, verdicts in) and close."""
        if self._telemetry_journal is not None:
            # Terminal beat: `repro top` reads liveness from the beat
            # timeline, and without this a finished run looks wedged
            # forever (its last periodic beat just stops aging well).
            self._telemetry_journal.append_beat("run", "done", final_icount)
        with self._lock:
            self._result_meta = {
                "final_icount": final_icount,
                "verdicts": list(verdicts),
            }
            self._state = "complete"
            self._write_manifest_locked()
        self.close()

    def close(self):
        """Flush and release the journal handles (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._telemetry_journal is not None:
            self._telemetry_journal.close()
        if self._journal is not None:
            try:
                if self.fsync != "never":
                    _fsync_file(self._journal)
            finally:
                self._journal.close()
                self._journal = None

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    def _body(self) -> dict:
        return {
            "magic": RUN_STORE_MAGIC,
            "version": RUN_STORE_VERSION,
            "session": self.session.to_json(),
            "state": self._state,
            "attempt": self.attempt,
            "fsync": self.fsync,
            "fsync_interval": self.fsync_interval,
            "frame_records": self.frame_records,
            "journal": {"frames": self._frames,
                        "bytes": self._journal_bytes},
            "telemetry": ({"file": TELEMETRY_JOURNAL_NAME,
                           "entries": self._telemetry_journal._seq}
                          if self._telemetry_journal is not None else None),
            "recording": self._recording_meta,
            "checkpoints": [self._chain[cid] for cid in sorted(self._chain)],
            "result": self._result_meta,
        }

    def _write_manifest_locked(self):
        _atomic_write(self.path / MANIFEST_NAME,
                      encode_manifest(self._body()),
                      fsync=self.fsync != "never")

    def _write_manifest(self):
        with self._lock:
            self._write_manifest_locked()
