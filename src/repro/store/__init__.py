"""Durable run store: crash-safe persistence and recovery for runs.

``RunStoreWriter`` journals a streaming run to disk as it happens (CRC'd
manifest, write-ahead v3 frame journal, incremental checkpoint files);
``recover_run`` turns a directory a crashed session left behind into a
``ResumePoint`` the pipeline and the fleet supervisor resume from —
bit-identically to an uninterrupted run.  See ``docs/RELIABILITY.md``.
"""

from repro.errors import StoreCorruptError
from repro.store.jobqueue import (
    JOB_QUEUE_NAME,
    JobQueue,
    JobQueueState,
    JobQueueStats,
    QueuedJob,
    job_dir_name,
    load_job_queue_state,
    scan_job_queue,
)
from repro.store.recover import (
    FsckReport,
    ResumePoint,
    fsck_report,
    fsck_run,
    recover_run,
)
from repro.store.runstore import (
    CHECKPOINT_DIR,
    JOURNAL_NAME,
    MANIFEST_NAME,
    RUN_STORE_MAGIC,
    RUN_STORE_VERSION,
    RunStoreWriter,
    canonical_body,
    decode_manifest,
    encode_manifest,
)

__all__ = [
    "CHECKPOINT_DIR",
    "FsckReport",
    "JOB_QUEUE_NAME",
    "JOURNAL_NAME",
    "JobQueue",
    "JobQueueState",
    "JobQueueStats",
    "MANIFEST_NAME",
    "QueuedJob",
    "job_dir_name",
    "load_job_queue_state",
    "scan_job_queue",
    "RUN_STORE_MAGIC",
    "RUN_STORE_VERSION",
    "ResumePoint",
    "RunStoreWriter",
    "StoreCorruptError",
    "canonical_body",
    "decode_manifest",
    "encode_manifest",
    "fsck_report",
    "fsck_run",
    "recover_run",
]
