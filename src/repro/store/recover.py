"""Crash recovery for the durable run store.

:func:`recover_run` is a pure function from an on-disk run directory to
a :class:`ResumePoint`: it trusts nothing but CRCs.  The manifest's own
counters are treated as hints — the journal is re-scanned frame by frame
(each v3 frame carries its own CRC), a torn or corrupt tail is cut at
the last whole frame, and every checkpoint file is CRC-validated against
the manifest *before* its pickle is touched.  A checkpoint that fails
validation drops it and everything newer (the chain is incremental — a
child overlays its parent), falling back to the newest surviving anchor.

Only manifest-level damage is unrecoverable
(:class:`~repro.errors.StoreCorruptError`): without a trusted manifest
there is no session identity to re-record from and no chain to validate
against.  Everything else degrades — worst case, recovery returns a
resume point that restarts the deterministic run from scratch.
"""

from __future__ import annotations

import dataclasses
import pathlib
import pickle
import zlib

from repro.errors import LogError, StoreCorruptError
from repro.replay.checkpoint import CheckpointStore
from repro.replay.checkpointing import CrResumeState
from repro.rnr.log import InputLog
from repro.rnr.records import EndRecord
from repro.rnr.serialize import parse_frame
from repro.rnr.session import SessionManifest
from repro.obs.journal import TELEMETRY_JOURNAL_NAME, scan_telemetry_journal
from repro.store.runstore import (
    CHECKPOINT_DIR,
    JOURNAL_NAME,
    MANIFEST_NAME,
    decode_manifest,
)


@dataclasses.dataclass(frozen=True)
class ResumePoint:
    """Everything needed to continue a run exactly where it stopped.

    ``recording_complete`` is decided by the recovered *bytes* (the
    record stream ends with the recorder's End record), never by the
    manifest's state field: a manifest can say ``log-sealed`` while
    mid-file corruption has since eaten the tail.  When it is false the
    resumed pipeline re-records deterministically from the session
    manifest — producing byte-identical frames — and when true the
    journal bytes *are* the recording and no guest re-execution happens.

    ``cr_state`` carries the newest surviving checkpoint chain as a CR
    resume anchor (``None`` when no checkpoint survived);
    ``chain_entries`` are the validated manifest entries backing it, so
    a resumed :class:`~repro.store.RunStoreWriter` carries the chain
    forward without rewriting the files.
    """

    path: str
    session: SessionManifest
    #: The recovered log prefix (every record in valid journal frames).
    log: InputLog
    records: int
    frames: int
    journal_bytes_valid: int
    journal_bytes_total: int
    recording_complete: bool
    #: Icount after the last recovered record (0 when the journal is empty).
    last_icount: int
    cr_state: CrResumeState | None
    #: Icount of the resume anchor checkpoint (``None`` = replay from 0).
    anchor_icount: int | None
    #: Log position the CR resumes consuming from.
    anchor_log_position: int
    chain_entries: tuple[dict, ...]
    #: ``seal_log`` summary from the manifest (``None`` until sealed).
    recording_meta: dict | None
    attempt: int
    #: Human-readable recovery decisions (what fsck prints).
    notes: tuple[str, ...]
    #: Frame size the original writer journaled with (``None`` = config
    #: default); a resume must reuse it for byte-identical re-framing.
    frame_records: int | None = None
    #: Fsync policy the original writer ran with.
    fsync: str = "interval"
    #: Valid entries recovered from ``telemetry.jsonl`` (0 = no journal
    #: or telemetry was off; damage there never blocks a resume).
    telemetry_entries: int = 0

    @property
    def window(self) -> tuple[int, int]:
        """The ``(anchor icount, last journaled icount)`` replay window."""
        return (self.anchor_icount or 0, self.last_icount)

    def epoch_plan(self, spec, workers: int | None = None):
        """Partition the recovered run into epochs for parallel re-replay.

        Every usable persisted checkpoint becomes an epoch boundary (see
        :func:`repro.replay.epoch.epoch_plan_from_resume` for the safety
        filter); ``workers`` thins them to roughly-equal epochs for that
        worker count.  Feed the result to
        :func:`repro.core.parallel.replay_parallel` together with
        ``self.log`` — only useful when ``recording_complete`` is true,
        since a parallel replay needs the whole log up front.
        """
        from repro.replay.epoch import epoch_plan_from_resume

        return epoch_plan_from_resume(self, spec, workers=workers)


def _scan_journal(path: pathlib.Path, notes: list[str]):
    """Re-parse the journal, keeping the longest valid frame prefix."""
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        data = b""
    log = InputLog()
    frames = 0
    offset = 0
    last_icount = 0
    while offset < len(data):
        try:
            header, records, offset = parse_frame(data, offset)
        except LogError as exc:
            notes.append(
                f"journal: dropped {len(data) - offset} byte torn tail "
                f"after frame {frames} ({exc})")
            break
        if header.frame_index != frames:
            # A hole means bytes were destroyed mid-file, not torn at
            # the end; nothing after the gap can be trusted either.
            notes.append(
                f"journal: frame sequence jumped to {header.frame_index} "
                f"at frame {frames}; dropped the rest")
            break
        for record in records:
            log.append(record)
        last_icount = header.last_icount
        frames += 1
    return data, log, frames, offset, last_icount


def _load_chain(path: pathlib.Path, entries: list[dict], records: int,
                recording_complete: bool, notes: list[str]):
    """CRC-validate the checkpoint chain; keep the longest valid prefix.

    When the recovered record stream is complete we additionally drop
    checkpoints whose ``log_position`` lies beyond it — they can only
    exist if mid-file journal corruption shortened the stream, and a
    "complete" stream will not be re-recorded to cover them.  (When the
    stream is incomplete the deterministic re-record regenerates the
    full log, so every checkpoint stays valid.)
    """
    loaded: list[tuple[object, dict, dict]] = []
    for entry in entries:
        name = entry.get("file", "?")
        target = path / name
        try:
            blob = target.read_bytes()
        except OSError as exc:
            notes.append(f"checkpoints: {name} unreadable ({exc}); "
                         f"dropped it and everything newer")
            break
        if zlib.crc32(blob) != entry.get("crc"):
            notes.append(f"checkpoints: {name} failed its CRC; "
                         f"dropped it and everything newer")
            break
        if recording_complete and entry.get("log_position", 0) > records:
            notes.append(
                f"checkpoints: {name} points past the recovered log "
                f"(position {entry.get('log_position')} > {records} "
                f"records); dropped it and everything newer")
            break
        # CRC passed over the full blob, so the pickle bytes are exactly
        # what the writer produced — safe to load.
        payload = pickle.loads(blob)
        loaded.append((payload["checkpoint"], payload["bookkeeping"],
                       entry))
    return loaded


def recover_run(path: str | pathlib.Path) -> ResumePoint:
    """Validate a run store and compute its resume point.

    Raises :class:`~repro.errors.StoreCorruptError` only for damage that
    leaves nothing to resume from: a missing, unparsable, or
    CRC-mismatched manifest.  Journal and checkpoint damage degrade to
    an earlier resume point instead, with the decision recorded in
    ``notes``.
    """
    root = pathlib.Path(path)
    manifest_path = root / MANIFEST_NAME
    try:
        raw = manifest_path.read_bytes()
    except FileNotFoundError:
        raise StoreCorruptError("no run-store manifest found",
                                path=str(root)) from None
    except NotADirectoryError:
        raise StoreCorruptError("not a run-store directory",
                                path=str(root)) from None
    body = decode_manifest(raw, str(manifest_path))

    session = SessionManifest.from_json(body["session"])
    notes: list[str] = []

    data, log, frames, valid_bytes, last_icount = _scan_journal(
        root / JOURNAL_NAME, notes)
    records = len(log)
    recording_complete = records > 0 and isinstance(log[records - 1],
                                                    EndRecord)

    entries = body.get("checkpoints") or []
    loaded = _load_chain(root, entries, records, recording_complete, notes)

    # The telemetry journal is observability, never resume state: scan it
    # with the same trust-only-CRCs discipline so fsck surfaces damage,
    # but a torn or missing telemetry.jsonl cannot degrade the resume.
    telemetry_entries = 0
    telemetry_path = root / TELEMETRY_JOURNAL_NAME
    if telemetry_path.exists():
        telemetry_scan = scan_telemetry_journal(str(telemetry_path))
        telemetry_entries = len(telemetry_scan.entries)
        notes.extend(telemetry_scan.notes)

    cr_state = None
    anchor_icount = None
    anchor_log_position = 0
    chain_entries: tuple[dict, ...] = ()
    if loaded:
        store = CheckpointStore.from_checkpoints(
            [checkpoint for checkpoint, _, _ in loaded])
        anchor, bookkeeping, _ = loaded[-1]
        cr_state = CrResumeState(store=store,
                                 checkpoint_icount=anchor.icount,
                                 bookkeeping=bookkeeping)
        anchor_icount = anchor.icount
        anchor_log_position = anchor.log_position
        chain_entries = tuple(entry for _, _, entry in loaded)

    return ResumePoint(
        path=str(root),
        session=session,
        log=log,
        records=records,
        frames=frames,
        journal_bytes_valid=valid_bytes,
        journal_bytes_total=len(data),
        recording_complete=recording_complete,
        last_icount=last_icount,
        cr_state=cr_state,
        anchor_icount=anchor_icount,
        anchor_log_position=anchor_log_position,
        chain_entries=chain_entries,
        recording_meta=body.get("recording"),
        attempt=body.get("attempt", 0),
        notes=tuple(notes),
        frame_records=body.get("frame_records"),
        fsync=body.get("fsync", "interval"),
        telemetry_entries=telemetry_entries,
    )


@dataclasses.dataclass(frozen=True)
class FsckReport:
    """Machine-readable health verdict for a run store.

    ``status`` is the three-way contract ``repro fsck`` exposes as exit
    codes: ``"clean"`` (exit 0 — every byte validated), ``"recoverable"``
    (exit 1 — damage was found and cut, a resume still works), or
    ``"corrupt"`` (exit 2 — manifest-level damage; the CLI builds this
    variant from the :class:`~repro.errors.StoreCorruptError` since
    recovery cannot even return a resume point).
    """

    status: str
    path: str
    notes: tuple[str, ...]
    exit_code: int
    resume: "ResumePoint | None" = None

    def to_json(self) -> dict:
        info: dict = {
            "status": self.status,
            "path": self.path,
            "notes": list(self.notes),
            "exit_code": self.exit_code,
        }
        if self.resume is not None:
            resume = self.resume
            info.update(
                attempt=resume.attempt,
                records=resume.records,
                frames=resume.frames,
                journal_bytes_valid=resume.journal_bytes_valid,
                journal_bytes_total=resume.journal_bytes_total,
                recording_complete=resume.recording_complete,
                checkpoints=len(resume.chain_entries),
                anchor_icount=resume.anchor_icount,
                last_icount=resume.last_icount,
                telemetry_entries=resume.telemetry_entries,
            )
        return info

    def canonical_json(self) -> str:
        import json

        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))


def fsck_report(path: str | pathlib.Path) -> FsckReport:
    """Validate a run store and classify it clean/recoverable.

    Manifest-level damage still raises :class:`StoreCorruptError`
    (status ``"corrupt"``, exit 2) — callers that want the three-way
    verdict without exceptions catch it and build the report themselves,
    which is what the CLI does.
    """
    resume = recover_run(path)
    recoverable = bool(resume.notes)
    return FsckReport(
        status="recoverable" if recoverable else "clean",
        path=resume.path,
        notes=tuple(resume.notes),
        exit_code=1 if recoverable else 0,
        resume=resume,
    )


def fsck_run(path: str | pathlib.Path) -> str:
    """Human-readable health report for a run store (``repro fsck``).

    Runs the same validation as :func:`recover_run` and describes what a
    resume would do.  Unrecoverable stores raise; the CLI turns that
    into a nonzero exit.
    """
    resume = recover_run(path)
    session = resume.session
    lines = [
        f"run store {resume.path}: attempt {resume.attempt}",
        f"  session: {session.benchmark} seed={session.seed} "
        f"attack={session.attack or '-'} "
        f"max_instructions={session.max_instructions}",
        f"  journal: {resume.journal_bytes_valid}/"
        f"{resume.journal_bytes_total} bytes valid, {resume.frames} "
        f"frames, {resume.records} records, "
        f"complete={resume.recording_complete}",
        f"  checkpoints: {len(resume.chain_entries)} valid "
        f"(anchor icount "
        f"{resume.anchor_icount if resume.anchor_icount is not None else '-'})",
        f"  telemetry: {resume.telemetry_entries} journal entries",
    ]
    for note in resume.notes:
        lines.append(f"  note: {note}")
    if resume.recording_complete:
        plan = "reuse the sealed journal (no re-record)"
    elif resume.records:
        plan = (f"re-record deterministically "
                f"({resume.records} records already journaled)")
    else:
        plan = "restart the recording from scratch"
    if resume.anchor_icount is not None:
        plan += (f", resume the CR at icount {resume.anchor_icount} "
                 f"(log position {resume.anchor_log_position})")
    else:
        plan += ", replay the CR from the start"
    lines.append(f"  resume plan: {plan}")
    return "\n".join(lines)
