"""Tables 2 and 3: the configuration surface, rendered.

The paper's Tables 2 and 3 document the evaluation machine and benchmark
parameters.  These renderers produce the simulation's analogues so every
benchmark report can state exactly what was run.
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.workloads.profiles import ALL_PROFILES, BenchmarkProfile


def render_table2(config: SimulationConfig) -> str:
    """The simulated system configuration (Table 2 analogue)."""
    costs = config.costs
    lines = [
        "Table 2 (simulation analogue): system configuration",
        f"  guest CPU: uniprocessor, {config.ras_entries}-entry RAS, "
        f"CPI {costs.guest_cpi}",
        f"  time scale: {config.cycles_per_second} cycles per guest second",
        f"  memory: {config.page_size}-word pages, W^X enforced",
        f"  disk: {config.disk_block_size}-word blocks, PIO + DMA",
        f"  VM exit: {costs.vmexit_cycles} cycles; RAS dump/restore "
        f"{costs.ras_save_cycles}+{costs.ras_restore_cycles} cycles",
        f"  replay injection: {costs.replay_counter_skid}-step counter "
        f"skid at {costs.single_step_cycles} cycles/step",
        f"  whitelists: Ret x1, Tar x{config.tar_whitelist_entries}; "
        f"JOP table x{config.jop_table_entries}",
    ]
    return "\n".join(lines)


def _describe(profile: BenchmarkProfile) -> str:
    traits = [f"{profile.tasks} tasks", f"{profile.iterations} iters"]
    if profile.rdtsc_per_iter:
        traits.append(f"{profile.rdtsc_per_iter} timer reads/iter")
    if profile.disk_read_every:
        traits.append(f"disk read /{profile.disk_read_every} iters")
    if profile.disk_write_every:
        traits.append(f"disk write /{profile.disk_write_every} iters")
    if profile.recv_per_iter:
        traits.append(
            f"network recv ({profile.packet_len_low}-"
            f"{profile.packet_len_high}w packets)"
        )
    if profile.spawn_every:
        traits.append(f"spawn /{profile.spawn_every} iters")
    if profile.setjmp_every:
        traits.append(f"setjmp /{profile.setjmp_every} iters")
    return ", ".join(traits)


def render_table3() -> str:
    """The benchmark parameters (Table 3 analogue)."""
    lines = ["Table 3 (simulation analogue): benchmarks executed"]
    for profile in ALL_PROFILES:
        lines.append(f"  {profile.name:<10} {_describe(profile)}")
    return "\n".join(lines)
