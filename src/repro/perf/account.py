"""Cycle accounting by overhead category.

``Category`` values mirror the paper's breakdown buckets.  Figure 5(b)
decomposes recording overhead into rdtsc / pio-mmio / interrupt / network /
RAS; Figure 7(b) uses the same buckets plus Chk for checkpointing replay.
Recording charges *logging* costs into these buckets; replay charges
*injection* costs into the same buckets, so both breakdown figures read one
account type.

``DEVICE`` holds baseline hypervisor-mediated I/O emulation costs that are
present even without recording (the NoRec setups pay them too); it is
excluded from both breakdowns, which plot only the *extra* work.
"""

from __future__ import annotations

import enum

from repro.obs.metrics import TaggedCounter


class Category(enum.Enum):
    """Where overhead cycles went."""

    #: Baseline device-emulation exits (PIO/MMIO/interrupt delivery),
    #: present in every hypervisor-mediated setup including NoRec.
    DEVICE = "device"
    #: rdtsc/rdrand: recording traps + log writes, or replay injection.
    RDTSC = "rdtsc"
    #: PIO and MMIO read results: logging or injection.
    PIO_MMIO = "pio_mmio"
    #: Interrupt injection points: logging, or replay-side counter-skid
    #: single-stepping (the dominant replay cost, §8.3.1).
    INTERRUPT = "interrupt"
    #: Network packet contents: logging or injection.
    NETWORK = "network"
    #: RAS save/restore at context switches (BackRAS microcode plus the
    #: context-switch interposition exits).
    RAS = "ras"
    #: Alarm and evict record handling.
    ALARM = "alarm"
    #: Checkpointing: state dump plus copy-on-write page copies (Chk).
    CHECKPOINT = "checkpoint"
    #: Alarm replayer: call/ret trapping.
    AR_TRAP = "ar_trap"
    #: Idle cycles while the guest waits for external events.
    IDLE = "idle"


#: Categories plotted by Figure 5(b): recording overhead over NoRec.
RECORDING_BREAKDOWN = (
    Category.RDTSC,
    Category.PIO_MMIO,
    Category.INTERRUPT,
    Category.NETWORK,
    Category.RAS,
)

#: Categories plotted by Figure 7(b): checkpointing replay over Rec.
REPLAY_BREAKDOWN = RECORDING_BREAKDOWN + (Category.CHECKPOINT,)


class CycleAccount:
    """Accumulates overhead cycles by category for one run.

    The storage is a single :class:`~repro.obs.metrics.TaggedCounter` —
    the same cell type the telemetry registry uses — so the Figure 5/7
    breakdowns and runtime telemetry read one source of truth.  When
    telemetry is on, the machine's account is *adopted* by the registry
    (``MetricsRegistry.adopt_tagged``) rather than mirrored: charges land
    once and both views see them.
    """

    __slots__ = ("counter",)

    def __init__(self):
        self.counter = TaggedCounter()

    def charge(self, category: Category, cycles: int, events: int = 1):
        """Add ``cycles`` of overhead in ``category``."""
        self.counter.add(category, cycles, events)

    def cycles(self, category: Category) -> int:
        """Overhead cycles accumulated in one category."""
        return self.counter.value(category)

    def events(self, category: Category) -> int:
        """Number of charge events in one category."""
        return self.counter.events(category)

    @property
    def total_overhead(self) -> int:
        """All overhead cycles (added to guest instruction cycles)."""
        return self.counter.total

    def by_category(self) -> dict[Category, int]:
        """A copy of the per-category cycle totals (non-zero entries)."""
        return {cat: cell[0] for cat, cell in self.counter.cells.items()
                if cell[0]}

    def merge(self, other: "CycleAccount"):
        """Fold another account into this one (multi-phase runs)."""
        self.counter.merge(other.counter)

    def __getstate__(self):
        return self.counter

    def __setstate__(self, state):
        self.counter = state
