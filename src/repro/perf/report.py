"""Run metrics and overhead-breakdown reporting.

These are the data structures the benchmark harness prints: normalized
execution times (Figures 5a, 7a, 9), overhead breakdowns (5b, 7b), and
rates (6a, 6b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SimulationConfig
from repro.perf.account import Category, CycleAccount


@dataclass
class RunMetrics:
    """Everything measured about one simulated run."""

    label: str
    instructions: int
    guest_cycles: int
    account: CycleAccount
    log_bytes: int = 0
    backras_bytes: int = 0
    alarms: int = 0
    evicts: int = 0
    context_switches: int = 0
    checkpoints: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        """Guest cycles plus every overhead cycle: the run's wall clock."""
        return self.guest_cycles + self.account.total_overhead

    def seconds(self, config: SimulationConfig) -> float:
        """Simulated wall-clock duration."""
        return config.seconds(self.total_cycles)

    def log_rate_mb_per_s(self, config: SimulationConfig) -> float:
        """Input-log generation rate (Figure 6a)."""
        duration = self.seconds(config)
        if duration == 0:
            return 0.0
        return self.log_bytes / 1e6 / duration

    def backras_bandwidth_mb_per_s(self, config: SimulationConfig) -> float:
        """RAS save/restore bandwidth (Figure 6b)."""
        duration = self.seconds(config)
        if duration == 0:
            return 0.0
        return self.backras_bytes / 1e6 / duration

    def alarms_per_million(self) -> float:
        """Alarm rate per million instructions (Figure 8 units)."""
        if self.instructions == 0:
            return 0.0
        return self.alarms * 1e6 / self.instructions


def normalized_time(run: RunMetrics, baseline: RunMetrics) -> float:
    """Execution time of ``run`` normalized to ``baseline`` (Figure 5a/7a)."""
    if baseline.total_cycles == 0:
        return 0.0
    return run.total_cycles / baseline.total_cycles


@dataclass(frozen=True)
class BreakdownRow:
    """One category's share of an overhead delta."""

    category: Category
    cycles: int
    percent: float


@dataclass(frozen=True)
class OverheadBreakdown:
    """Decomposition of (run - baseline) overhead into categories.

    Used for Figures 5(b) and 7(b): the categories are the run's *extra*
    work, so their cycle sum approximates ``run.total - baseline.total``.
    """

    label: str
    rows: tuple[BreakdownRow, ...]

    @classmethod
    def from_account(cls, label: str, account: CycleAccount,
                     categories) -> "OverheadBreakdown":
        cycles = {cat: account.cycles(cat) for cat in categories}
        total = sum(cycles.values())
        rows = tuple(
            BreakdownRow(
                category=cat,
                cycles=cyc,
                percent=(100.0 * cyc / total) if total else 0.0,
            )
            for cat, cyc in cycles.items()
        )
        return cls(label=label, rows=rows)

    def percent_of(self, category: Category) -> float:
        """Share of one category within this breakdown."""
        for row in self.rows:
            if row.category is category:
                return row.percent
        return 0.0

    def dominant(self) -> Category:
        """The category with the largest share."""
        best = max(self.rows, key=lambda row: row.cycles)
        return best.category
