"""Performance model: cycle accounting and overhead breakdowns.

The paper measures wall-clock overheads on real hardware; this reproduction
instead *derives* overheads from event counts multiplied by the paper's own
unit costs (1,000-cycle VM exits, 200-cycle RAS dumps, per-step replay
costs).  Every simulated run produces a :class:`CycleAccount` whose
categories map one-to-one onto the paper's breakdown figures (5b and 7b).
"""

from repro.perf.account import Category, CycleAccount
from repro.perf.report import (
    BreakdownRow,
    OverheadBreakdown,
    RunMetrics,
    normalized_time,
)

__all__ = [
    "Category",
    "CycleAccount",
    "RunMetrics",
    "BreakdownRow",
    "OverheadBreakdown",
    "normalized_time",
]
