"""Record/replay pipeline coupling: lag and back-pressure (§8.3.1).

"While checkpointing replay is a bit slower, it can easily catch up with
recording because even busy machines are rarely 100% utilized ... If the
replay gets significantly behind, we can use back pressure to temporarily
slow down recorded execution."

This module couples a recording timeline and a CR timeline into one
deployment simulation.  Both runs are simulated sequentially (the
simulator is single-threaded), but their *cycle timelines* are replayed
against each other: the CR consumes log positions no faster than the
recorder produced them, the guest's idle fraction gives the CR slack to
catch up, and when the lag exceeds a bound the recorder is throttled —
the back-pressure knob — until the CR recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimulationConfig


@dataclass(frozen=True)
class PipelinePoint:
    """One log position's timing in the coupled pipeline."""

    log_position: int
    produced_at: int
    consumed_at: int

    @property
    def lag_cycles(self) -> int:
        return max(0, self.consumed_at - self.produced_at)


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of the coupled record/CR simulation."""

    points: tuple[PipelinePoint, ...]
    #: Extra cycles recording was stalled by back-pressure.
    backpressure_cycles: int
    #: Largest lag observed.
    max_lag_cycles: int
    #: Lag at the final log position (0 = the CR fully caught up).
    final_lag_cycles: int

    def max_lag_seconds(self, config: SimulationConfig) -> float:
        return config.seconds(self.max_lag_cycles)

    @property
    def throttled(self) -> bool:
        return self.backpressure_cycles > 0


def couple_pipeline(
    production_cycles: list[int],
    consumption_cycles: list[int],
    utilization: float = 0.85,
    backpressure_lag_cycles: int | None = None,
) -> PipelineResult:
    """Couple per-log-position timelines of a recorder and a CR.

    ``production_cycles[i]`` / ``consumption_cycles[i]`` are the cycle
    counts at which record i was produced and (standalone) consumed.
    ``utilization`` models the recorded machine's business: the recorder
    only advances during busy time, so the CR gains ``1 - utilization`` of
    every wall-clock interval for free — the paper's "rarely 100%
    utilized" slack.  When ``backpressure_lag_cycles`` is set and the lag
    exceeds it, the recorder stalls until the CR drains back under the
    bound, and the stall is accounted.
    """
    if len(production_cycles) != len(consumption_cycles):
        raise ValueError("timelines must cover the same log positions")
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization must be in (0, 1], got {utilization}")
    points: list[PipelinePoint] = []
    backpressure = 0
    max_lag = 0
    produced_shift = 0  # accumulated back-pressure stalls
    previous_production = 0
    previous_consumption = 0
    consumed_at = 0
    for position, (produced, consumed) in enumerate(
            zip(production_cycles, consumption_cycles)):
        # Wall-clock at which this record exists (recording stretched by
        # idle time and by any back-pressure stalls so far).
        produced_wall = int(produced / utilization) + produced_shift
        # The CR needs its own delta of work, but cannot start consuming a
        # record before it exists.
        consumption_delta = consumed - previous_consumption
        consumed_at = max(consumed_at, produced_wall) + consumption_delta
        lag = max(0, consumed_at - produced_wall)
        if backpressure_lag_cycles is not None and \
                lag > backpressure_lag_cycles:
            stall = lag - backpressure_lag_cycles
            produced_shift += stall
            backpressure += stall
            produced_wall += stall
            lag = backpressure_lag_cycles
        max_lag = max(max_lag, lag)
        points.append(PipelinePoint(
            log_position=position,
            produced_at=produced_wall,
            consumed_at=consumed_at,
        ))
        previous_production = produced
        previous_consumption = consumed
    final_lag = points[-1].lag_cycles if points else 0
    return PipelineResult(
        points=tuple(points),
        backpressure_cycles=backpressure,
        max_lag_cycles=max_lag,
        final_lag_cycles=final_lag,
    )


@dataclass(frozen=True)
class EpochSchedule:
    """A greedy longest-processing-time assignment of epochs to workers.

    The makespan is the critical path of an epoch-parallel replay
    (:func:`repro.core.parallel.replay_parallel`) on ``workers``
    concurrent replayers: epochs are independent, so the wall clock is
    the busiest worker's total, not the sum.  Durations may be host
    seconds (benchmarking) or simulated cycles (deployment modeling) —
    the schedule only compares them.
    """

    #: ``assignments[w]`` lists the epoch indices worker ``w`` replays.
    assignments: tuple[tuple[int, ...], ...]
    #: Busiest worker's total duration — the parallel wall clock.
    makespan: float
    #: Sum of every epoch's duration — the sequential wall clock.
    total: float

    @property
    def speedup(self) -> float:
        """Ideal sequential/parallel ratio for this partition (1.0 when
        a single epoch dominates or only one worker is available)."""
        return self.total / self.makespan if self.makespan > 0 else 1.0


def epoch_makespan(durations, workers: int) -> EpochSchedule:
    """Schedule epoch ``durations`` onto ``workers`` via greedy LPT.

    Longest-processing-time-first onto the least-loaded worker — the
    classic 4/3-approximation, and exactly what a work-stealing pool
    converges to for a handful of coarse epochs.  This is how the epoch
    planner and the parallel-replay benchmark turn per-epoch measurements
    into the speedup a ``workers``-wide replayer farm realizes.
    """
    durations = list(durations)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    loads = [0.0] * min(workers, max(1, len(durations)))
    assignment: list[list[int]] = [[] for _ in loads]
    order = sorted(range(len(durations)), key=lambda i: -durations[i])
    for index in order:
        target = min(range(len(loads)), key=lambda w: loads[w])
        loads[target] += durations[index]
        assignment[target].append(index)
    return EpochSchedule(
        assignments=tuple(tuple(epochs) for epochs in assignment),
        makespan=max(loads) if durations else 0.0,
        total=float(sum(durations)),
    )


def timelines_from_runs(recording, checkpointing) -> tuple[list[int], list[int]]:
    """Extract per-alarm timelines from a recording and a CR result.

    Uses the alarm timestamps both sides already track (every alarm is a
    shared log landmark); for alarm-free runs, falls back to the end-of-run
    totals as a single landmark.
    """
    shared = sorted(
        set(recording.alarm_cycles) & set(checkpointing.alarm_cycles)
    )
    production = [recording.alarm_cycles[icount] for icount in shared]
    consumption = [checkpointing.alarm_cycles[icount] for icount in shared]
    production.append(recording.metrics.total_cycles)
    consumption.append(checkpointing.replay.metrics.total_cycles)
    return production, consumption
