"""Plugin surface for first-line detectors and replay analyzers (Table 1).

RnR-Safe's flexibility claim (§3.2) is that defenders add new detectors on
the recorded VM and new analyzers on the replay side without touching the
framework.  A :class:`Detector` configures the recording side (exit
controls, hardware tables, watchdogs); a :class:`ReplayAnalyzer` resolves
the alarms that detector emits.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.replay.verdict import AlarmVerdict
from repro.rnr.records import AlarmRecord


@runtime_checkable
class Detector(Protocol):
    """First-line detection on the recorded VM.

    Implementations may be imprecise — false positives are the replayers'
    problem — but must never miss an attack (no false negatives, §3.1).
    """

    name: str

    def configure(self, recorder) -> None:
        """Arm the detector on a :class:`~repro.rnr.recorder.Recorder`.

        Typically sets exit controls and programs VMCS tables (whitelists,
        the JOP function table) or registers a watchdog.
        """
        ...

    def owns_alarm(self, alarm: AlarmRecord) -> bool:
        """Whether this detector raised the given alarm."""
        ...


@runtime_checkable
class ReplayAnalyzer(Protocol):
    """Alarm resolution on the replay side."""

    name: str

    def analyze(self, spec, log, alarm: AlarmRecord, checkpoint,
                store) -> AlarmVerdict:
        """Resolve one alarm, typically by replaying from ``checkpoint``."""
        ...
