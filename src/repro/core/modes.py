"""Named execution setups matching the paper's evaluation (§8.1, §8.3).

Recording-side setups (Figure 5a):

======== ======== ===================== ==========================
name     logging  RAS machinery         I/O model
======== ======== ===================== ==========================
NoRecPV  off      off                   paravirtual drivers
NoRec    off      off                   hypervisor-mediated
RecNoRAS on       off                   hypervisor-mediated
Rec      on       full (BackRAS,        hypervisor-mediated
                  whitelists, evicts)
======== ======== ===================== ==========================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hypervisor.machine import MachineSpec
from repro.rnr.recorder import Recorder, RecorderOptions, RecordingRun


@dataclass(frozen=True)
class RecordingSetup:
    """A named recording-side configuration."""

    name: str
    options: RecorderOptions

    def with_budget(self, max_instructions: int) -> "RecordingSetup":
        return RecordingSetup(
            name=self.name,
            options=replace(self.options, max_instructions=max_instructions),
        )


NO_REC_PV = RecordingSetup(
    name="NoRecPV",
    options=RecorderOptions(
        log_enabled=False, alarms=False, backras=False, whitelist=False,
        evict_records=False, paravirtual=True,
    ),
)

NO_REC = RecordingSetup(
    name="NoRec",
    options=RecorderOptions(
        log_enabled=False, alarms=False, backras=False, whitelist=False,
        evict_records=False, paravirtual=False,
    ),
)

REC_NO_RAS = RecordingSetup(
    name="RecNoRAS",
    options=RecorderOptions(
        log_enabled=True, alarms=False, backras=False, whitelist=False,
        evict_records=False, paravirtual=False,
    ),
)

REC = RecordingSetup(
    name="Rec",
    options=RecorderOptions(
        log_enabled=True, alarms=True, backras=True, whitelist=True,
        evict_records=True, paravirtual=False,
    ),
)

ALL_RECORDING_SETUPS = (NO_REC_PV, NO_REC, REC_NO_RAS, REC)


def record_benchmark(spec: MachineSpec, setup: RecordingSetup,
                     max_instructions: int | None = None) -> RecordingRun:
    """Run one benchmark under one recording setup."""
    options = setup.options
    if max_instructions is not None:
        options = replace(options, max_instructions=max_instructions)
    return Recorder(spec, options).run()
