"""The fleet driver: many record+replay sessions across a process pool.

The paper's deployment amortizes one replay machine over many recorded
VMs ("the replaying VM can multiplex several recorded VMs", §3).  The
inverse is just as useful for throughput studies: N independent sessions
— different benchmarks, seeds, or attack mixes — each running its own
record+CR(+AR) stack on its own core.  Sessions share nothing (every
machine is rebuilt from a :class:`~repro.rnr.session.SessionManifest`),
so the fleet is embarrassingly parallel; this module schedules it and
returns per-session results in input order.

Each worker can run its session either sequentially (record, then CR,
then ARs) or through the streaming pipeline
(:func:`~repro.core.parallel.record_and_replay_pipelined`); inside a
fleet worker the pipeline defaults to its thread backend so fleet
parallelism (process per session) and pipeline parallelism (threads
inside a session) compose without nested process pools.

Results carry a digest of the session's log bytes so equivalence across
schedulers is checkable without shipping whole logs between processes.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass

from repro.core.parallel import record_and_replay_pipelined, resolve_alarms_parallel
from repro.errors import HypervisorError
from repro.replay.checkpointing import CheckpointingOptions, CheckpointingReplayer
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.rnr.session import SessionManifest


@dataclass(frozen=True)
class FleetSession:
    """One session the fleet should run (a manifest plus run knobs)."""

    benchmark: str
    seed: int = 2018
    attack: str | None = None
    max_instructions: int = 1_000_000
    #: CR checkpoint period in guest seconds.
    period_s: float = 1.0

    def manifest(self) -> SessionManifest:
        return SessionManifest(
            benchmark=self.benchmark,
            seed=self.seed,
            attack=self.attack,
            max_instructions=self.max_instructions,
        )


@dataclass(frozen=True)
class FleetSessionResult:
    """What one fleet session produced (log digest instead of log bytes)."""

    index: int
    benchmark: str
    seed: int
    attack: str | None
    instructions: int
    log_records: int
    log_bytes: int
    #: SHA-256 of the serialized input log — equivalence without shipping
    #: the log across the pool.
    session_digest: str
    checkpoints: int
    alarms_seen: int
    dismissed_underflows: int
    #: Verdict kinds for the CR's pending alarms, in confirmation order.
    verdicts: tuple[str, ...]
    stop_reason: str
    host_seconds: float
    pipelined: bool
    backend: str


@dataclass(frozen=True)
class FleetResult:
    """All session results, in input order, plus fleet-level accounting."""

    results: tuple[FleetSessionResult, ...]
    #: Pool backend that actually ran the fleet ("inline"/"thread"/"process").
    backend: str
    workers: int
    host_seconds: float

    @property
    def total_instructions(self) -> int:
        return sum(result.instructions for result in self.results)

    @property
    def total_alarms(self) -> int:
        return sum(result.alarms_seen for result in self.results)


def _run_one_session(payload: tuple) -> FleetSessionResult:
    """Run one session end to end (executes inside a pool worker)."""
    (index, session, pipeline, pipeline_backend,
     frame_records, queue_depth) = payload
    started = time.perf_counter()
    spec = session.manifest().build_spec()
    recorder_options = RecorderOptions(
        max_instructions=session.max_instructions,
    )
    cr_options = CheckpointingOptions(period_s=session.period_s)
    if pipeline:
        run = record_and_replay_pipelined(
            spec, recorder_options, cr_options,
            backend=pipeline_backend,
            frame_records=frame_records,
            queue_depth=queue_depth,
        )
        recording = run.recording
        checkpointing = run.checkpointing
        verdicts = run.resolution.verdicts
        backend = f"pipeline-{run.stats.backend}"
    else:
        recording = Recorder(spec, recorder_options).run()
        checkpointing = CheckpointingReplayer(
            spec, recording.log, cr_options,
        ).run_to_end()
        resolution = resolve_alarms_parallel(
            spec, recording.log, checkpointing.pending_alarms,
            store=checkpointing.store, backend="thread",
        )
        verdicts = resolution.verdicts
        backend = "sequential"
    log_bytes = recording.log.to_bytes()
    return FleetSessionResult(
        index=index,
        benchmark=session.benchmark,
        seed=session.seed,
        attack=session.attack,
        instructions=recording.metrics.instructions,
        log_records=len(recording.log),
        log_bytes=len(log_bytes),
        session_digest=hashlib.sha256(log_bytes).hexdigest(),
        checkpoints=len(checkpointing.store),
        alarms_seen=checkpointing.alarms_seen,
        dismissed_underflows=checkpointing.dismissed_underflows,
        verdicts=tuple(verdict.kind.value for verdict in verdicts),
        stop_reason=recording.stop_reason,
        host_seconds=time.perf_counter() - started,
        pipelined=pipeline,
        backend=backend,
    )


def run_fleet(
    sessions: list[FleetSession],
    *,
    max_workers: int | None = None,
    backend: str = "process",
    pipeline: bool = False,
    pipeline_backend: str = "thread",
    frame_records: int | None = None,
    queue_depth: int | None = None,
) -> FleetResult:
    """Run every session across a worker pool; results in input order.

    ``backend`` is ``"thread"`` or ``"process"`` (the default — sessions
    are CPU-bound, so real scaling needs processes).  As elsewhere in
    this package, an unusable process pool degrades to threads rather
    than failing; a fleet of one session runs inline.  ``pipeline`` runs
    each session through the streaming pipeline executor
    (``pipeline_backend`` defaulting to threads — see the module
    docstring on composing the two levels of parallelism).
    """
    if backend not in ("thread", "process"):
        raise HypervisorError(
            f"unknown fleet backend {backend!r}; choose 'thread' or 'process'"
        )
    if not sessions:
        return FleetResult(results=(), backend="inline", workers=0,
                           host_seconds=0.0)
    payloads = [
        (index, session, pipeline, pipeline_backend,
         frame_records, queue_depth)
        for index, session in enumerate(sessions)
    ]
    workers = min(max_workers if max_workers is not None else len(sessions),
                  len(sessions))
    workers = max(1, workers)
    started = time.perf_counter()
    if len(sessions) == 1:
        results = (_run_one_session(payloads[0]),)
        return FleetResult(results=results, backend="inline", workers=1,
                           host_seconds=time.perf_counter() - started)
    if backend == "process":
        try:
            workers_capped = max(1, min(workers, os.cpu_count() or 1))
            with ProcessPoolExecutor(max_workers=workers_capped) as pool:
                results = tuple(pool.map(_run_one_session, payloads))
            return FleetResult(
                results=results, backend="process", workers=workers_capped,
                host_seconds=time.perf_counter() - started,
            )
        except (OSError, ValueError, TypeError, AttributeError,
                ImportError, pickle.PicklingError, BrokenExecutor):
            # No usable process pool: degrade to threads (identical
            # results, only wall-clock differs).
            pass
    with ThreadPoolExecutor(max_workers=workers) as pool:
        results = tuple(pool.map(_run_one_session, payloads))
    return FleetResult(results=results, backend="thread", workers=workers,
                       host_seconds=time.perf_counter() - started)
