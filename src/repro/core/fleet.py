"""The fleet driver: many record+replay sessions across a process pool.

The paper's deployment amortizes one replay machine over many recorded
VMs ("the replaying VM can multiplex several recorded VMs", §3).  The
inverse is just as useful for throughput studies: N independent sessions
— different benchmarks, seeds, or attack mixes — each running its own
record+CR(+AR) stack on its own core.  Sessions share nothing (every
machine is rebuilt from a :class:`~repro.rnr.session.SessionManifest`),
so the fleet is embarrassingly parallel; this module schedules it and
returns per-session results in input order.

Each worker can run its session either sequentially (record, then CR,
then ARs) or through the streaming pipeline
(:func:`~repro.core.parallel.record_and_replay_pipelined`); inside a
fleet worker the pipeline defaults to its thread backend so fleet
parallelism (process per session) and pipeline parallelism (threads
inside a session) compose without nested process pools.

Results carry a digest of the session's log bytes so equivalence across
schedulers is checkable without shipping whole logs between processes.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import queue as queue_mod
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, replace

from repro.config import DEFAULT_CONFIG
from repro.core.parallel import (
    RecoveryEvent,
    record_and_replay_pipelined,
    replay_parallel,
    resolve_alarms_parallel,
)
from repro.errors import HypervisorError, StoreCorruptError
from repro.faults.injector import retry_with_backoff
from repro.faults.plan import FaultPlan
from repro.obs.heartbeat import STALE_AFTER_S, HeartbeatBoard
from repro.obs.telemetry import Telemetry, TelemetrySnapshot
from repro.replay.checkpointing import CheckpointingOptions, CheckpointingReplayer
from repro.replay.epoch import plan_epoch_boundaries
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.rnr.session import SessionManifest
from repro.store import RunStoreWriter, recover_run


@dataclass(frozen=True)
class FleetSession:
    """One session the fleet should run (a manifest plus run knobs)."""

    benchmark: str
    seed: int = 2018
    attack: str | None = None
    max_instructions: int = 1_000_000
    #: CR checkpoint period in guest seconds.
    period_s: float = 1.0
    #: Execution backend for the session's machines (``None`` = config
    #: default).  A performance knob only: verdicts and digests are
    #: backend-invariant.
    exec_backend: str | None = None
    #: Epoch-parallel CR width for the session's replay phase (sequential
    #: sessions only — the pipelined executor streams the log and has
    #: nothing to split).  Fleet workers are daemonic processes and may
    #: not spawn children, so the epochs run on the thread backend; the
    #: stitched result is digest-proven identical either way.
    cr_workers: int = 1

    def manifest(self) -> SessionManifest:
        return SessionManifest(
            benchmark=self.benchmark,
            seed=self.seed,
            attack=self.attack,
            max_instructions=self.max_instructions,
            exec_backend=self.exec_backend,
        )


@dataclass(frozen=True)
class FleetSessionResult:
    """What one fleet session produced (log digest instead of log bytes).

    A session that failed still yields a result — ``ok`` is False, ``error``
    carries the typed cause, and the metric fields are zeroed — so one bad
    session never takes down the fleet and never silently disappears from
    the result list.
    """

    index: int
    benchmark: str
    seed: int
    attack: str | None
    instructions: int
    log_records: int
    log_bytes: int
    #: SHA-256 of the serialized input log — equivalence without shipping
    #: the log across the pool.
    session_digest: str
    checkpoints: int
    alarms_seen: int
    dismissed_underflows: int
    #: Verdict kinds for the CR's pending alarms, in confirmation order.
    verdicts: tuple[str, ...]
    stop_reason: str
    host_seconds: float
    pipelined: bool
    backend: str
    #: False when the session failed; ``error`` then says how.
    ok: bool = True
    error: str = ""
    #: Total attempts spent on this session (1 = clean first try).
    attempts: int = 1
    #: Session-level telemetry rollup (``None`` unless the fleet ran with
    #: ``telemetry=True``) — a picklable delta the driver merges into the
    #: fleet-wide snapshot.
    telemetry: TelemetrySnapshot | None = None
    #: Every typed :class:`~repro.core.parallel.RecoveryEvent` this
    #: session went through, in order: supervisor heals
    #: (``session-resumed`` / ``session-restarted``) first, then the
    #: resumed run's own events (``run-resumed`` / ``cr-resumed`` / ...).
    #: Empty for a clean first-try session.
    recoveries: tuple[RecoveryEvent, ...] = ()


def _failed_session(index: int, session: FleetSession, error: str,
                    *, attempts: int, backend: str,
                    host_seconds: float = 0.0,
                    recoveries: tuple = ()) -> FleetSessionResult:
    """The structured result for a session that could not be completed."""
    return FleetSessionResult(
        index=index,
        benchmark=session.benchmark,
        seed=session.seed,
        attack=session.attack,
        instructions=0,
        log_records=0,
        log_bytes=0,
        session_digest="",
        checkpoints=0,
        alarms_seen=0,
        dismissed_underflows=0,
        verdicts=(),
        stop_reason="failed",
        host_seconds=host_seconds,
        pipelined=False,
        backend=backend,
        ok=False,
        error=error,
        attempts=attempts,
        recoveries=tuple(recoveries),
    )


@dataclass(frozen=True)
class FleetResult:
    """All session results, in input order, plus fleet-level accounting."""

    results: tuple[FleetSessionResult, ...]
    #: Pool backend that actually ran the fleet ("inline"/"thread"/"process").
    backend: str
    workers: int
    host_seconds: float
    #: Every session's telemetry snapshot merged (``None`` unless the
    #: fleet ran with ``telemetry=True``).
    telemetry: TelemetrySnapshot | None = None

    @property
    def total_instructions(self) -> int:
        return sum(result.instructions for result in self.results)

    @property
    def total_alarms(self) -> int:
        return sum(result.alarms_seen for result in self.results)

    @property
    def failures(self) -> tuple[FleetSessionResult, ...]:
        """The sessions that did not complete, in input order."""
        return tuple(result for result in self.results if not result.ok)

    @property
    def recoveries(self) -> tuple[tuple[int, RecoveryEvent], ...]:
        """Every heal the fleet performed, as ``(session index, event)``
        pairs in session order — the supervisor's audit trail."""
        return tuple((result.index, event)
                     for result in self.results
                     for event in result.recoveries)


def session_payload(index: int, session: FleetSession, *,
                    pipeline: bool = False,
                    pipeline_backend: str = "thread",
                    frame_records: int | None = None,
                    queue_depth: int | None = None,
                    fault_plan: FaultPlan | None = None,
                    attempt: int = 0,
                    allow_hard_kill: bool = False,
                    telemetry: bool = False,
                    reporter=None,
                    store_path: str | None = None,
                    resume: bool = False,
                    store_fsync: str = "interval") -> tuple:
    """Build the positional payload :func:`run_session_payload` consumes.

    The payload is a plain tuple so it pickles across process pools and
    ``multiprocessing`` queues unchanged.  Both the fleet driver and the
    replay-service daemon (:mod:`repro.service`) build their worker
    payloads through this one function, so a service job runs the exact
    session machinery a fleet session does — which is what makes the
    service's results bit-comparable to a one-shot :func:`run_fleet`.
    """
    base = (index, session, pipeline, pipeline_backend, frame_records,
            queue_depth, fault_plan, attempt, allow_hard_kill, telemetry,
            reporter)
    if store_path is None:
        return base
    return base + (store_path, resume, store_fsync)


def _run_one_session(payload: tuple) -> FleetSessionResult:
    """Run one session end to end (executes inside a pool worker).

    Never raises for a session-level failure: any exception the session
    machinery produces is folded into a structured failure result, so the
    pool's other sessions are untouched.  (A hard-killed worker process
    can't be caught here, of course — the parent handles that.)

    The supervised fleet appends ``(store_path, resume_flag, fsync)`` to
    the base payload: the session then journals to a durable run store
    and, when ``resume_flag`` is set, continues from whatever the store's
    recovery yields (an unrecoverable store degrades to a fresh restart
    — the run is deterministic, so nothing is lost but time).
    """
    (index, session, pipeline, pipeline_backend,
     frame_records, queue_depth, fault_plan, attempt,
     allow_hard_kill, telemetry_on, reporter, *extra) = payload
    store_path = extra[0] if extra else None
    resume_flag = bool(extra[1]) if len(extra) > 1 else False
    store_fsync = extra[2] if len(extra) > 2 else "interval"
    started = time.perf_counter()
    session_tel = None
    token = None
    try:
        if fault_plan is not None:
            fault_plan.fire_worker_fault(
                "fleet", index, attempt, allow_hard_kill=allow_hard_kill,
            )
        spec = session.manifest().build_spec()
        if telemetry_on and not spec.config.telemetry:
            spec = replace(spec, config=replace(spec.config, telemetry=True))
        # Non-None when telemetry is on *or* the fleet is being watched:
        # the lifecycle span needs the former, the beats the latter.
        session_tel = Telemetry.for_config(spec.config, "fleet",
                                           heartbeat=reporter)
        if session_tel is not None:
            session_tel.beat("start")
            token = session_tel.begin(
                "session", "fleet", 0,
                index=index, benchmark=session.benchmark, seed=session.seed,
            )
        recorder_options = RecorderOptions(
            max_instructions=session.max_instructions,
        )
        cr_options = CheckpointingOptions(period_s=session.period_s)
        recoveries: tuple = ()
        if store_path is not None:
            # Durability implies the pipelined (thread) executor: the run
            # store is a single-writer in-process object.
            resume_point = None
            if resume_flag:
                try:
                    resume_point = recover_run(store_path)
                except StoreCorruptError:
                    resume_point = None
            run_store = RunStoreWriter(
                store_path, session.manifest(),
                fsync=store_fsync,
                frame_records=frame_records,
                fault_plan=fault_plan,
                attempt=attempt,
                allow_hard_kill=allow_hard_kill,
                resume=resume_point,
            )
            if reporter is not None and resume_point is not None:
                reporter.publish("resumed")
            run = record_and_replay_pipelined(
                spec, recorder_options, cr_options,
                backend="thread",
                frame_records=frame_records,
                queue_depth=queue_depth,
                heartbeat=reporter,
                run_store=run_store,
                resume=resume_point,
            )
            recording = run.recording
            checkpointing = run.checkpointing
            verdicts = run.resolution.verdicts
            backend = f"durable-{run.stats.backend}"
            run_telemetry = run.telemetry
            recoveries = tuple(run.recovery) if run.recovery else ()
        elif pipeline:
            run = record_and_replay_pipelined(
                spec, recorder_options, cr_options,
                backend=pipeline_backend,
                frame_records=frame_records,
                queue_depth=queue_depth,
                heartbeat=reporter,
            )
            recording = run.recording
            checkpointing = run.checkpointing
            verdicts = run.resolution.verdicts
            backend = f"pipeline-{run.stats.backend}"
            run_telemetry = run.telemetry
            recoveries = tuple(run.recovery) if run.recovery else ()
        else:
            if session.cr_workers > 1:
                recorder_options = replace(
                    recorder_options,
                    epoch_boundaries=plan_epoch_boundaries(
                        session.max_instructions, session.cr_workers,
                        oversample=4),
                )
            rec_tel = (Telemetry.for_config(spec.config, "record",
                                            heartbeat=reporter)
                       if reporter is not None else None)
            recording = Recorder(spec, recorder_options,
                                 telemetry=rec_tel).run()
            if session.cr_workers > 1 and recording.epoch_plan is not None:
                parallel = replay_parallel(
                    spec, recording.log, recording.epoch_plan,
                    options=cr_options,
                    max_workers=session.cr_workers,
                    backend="thread",
                    resolve_ars=True,
                )
                checkpointing = parallel.checkpointing
                verdicts = parallel.resolution.verdicts
                backend = f"epochs-{parallel.workers}"
                run_telemetry = parallel.telemetry
            else:
                cr_tel = (Telemetry.for_config(spec.config, "cr",
                                               heartbeat=reporter)
                          if reporter is not None else None)
                checkpointing = CheckpointingReplayer(
                    spec, recording.log, cr_options, telemetry=cr_tel,
                ).run_to_end()
                resolution = resolve_alarms_parallel(
                    spec, recording.log, checkpointing.pending_alarms,
                    store=checkpointing.store, backend="thread",
                )
                verdicts = resolution.verdicts
                backend = "sequential"
                run_telemetry = (TelemetrySnapshot.merged(
                    [recording.telemetry, checkpointing.telemetry,
                     resolution.telemetry], actor="session",
                ) if telemetry_on else None)
    except Exception as exc:  # noqa: BLE001 - folded into the result
        if reporter is not None:
            reporter.publish("failed")
        return _failed_session(
            index, session, f"{type(exc).__name__}: {exc}",
            attempts=attempt + 1, backend="worker",
            host_seconds=time.perf_counter() - started,
        )
    log_bytes = recording.log.to_bytes()
    telemetry_snapshot = None
    if session_tel is not None:
        final_icount = recording.metrics.instructions
        session_tel.end(token, final_icount, stop=recording.stop_reason)
        session_tel.beat("done", icount=final_icount)
        if telemetry_on:
            telemetry_snapshot = TelemetrySnapshot.merged(
                [run_telemetry, session_tel.snapshot()], actor="session",
            )
    return FleetSessionResult(
        index=index,
        benchmark=session.benchmark,
        seed=session.seed,
        attack=session.attack,
        instructions=recording.metrics.instructions,
        log_records=len(recording.log),
        log_bytes=len(log_bytes),
        session_digest=hashlib.sha256(log_bytes).hexdigest(),
        checkpoints=len(checkpointing.store),
        alarms_seen=checkpointing.alarms_seen,
        dismissed_underflows=checkpointing.dismissed_underflows,
        verdicts=tuple(verdict.kind.value for verdict in verdicts),
        stop_reason=recording.stop_reason,
        host_seconds=time.perf_counter() - started,
        pipelined=pipeline or store_path is not None,
        backend=backend,
        attempts=attempt + 1,
        telemetry=telemetry_snapshot,
        recoveries=recoveries,
    )


def _rerun_inline(payload_for, index: int, session: FleetSession,
                  why: str, max_retries: int) -> FleetSessionResult:
    """Re-run a session whose pool worker died, inline in this process.

    The dead worker consumed attempt 0; this grants up to ``max_retries``
    more.  Inline execution cannot be hard-killed, so the retry either
    completes or folds its own failure into the result.
    """
    result = None
    for attempt in range(1, max_retries + 1):
        result = _run_one_session(payload_for(index, attempt, False))
        if result.ok:
            return replace(result, backend=result.backend + "+retry")
    if result is None:
        return _failed_session(index, session, why, attempts=1,
                               backend="process")
    return replace(result, error=f"{why}; final retry: {result.error}")


def _collect_fleet(pool, payload_for, sessions, *, hard_kill: bool,
                   timeout_s: float | None, max_retries: int,
                   backend: str) -> tuple[FleetSessionResult, ...]:
    """Submit every session, gather results in input order, heal failures.

    Three failure shapes, all ending in a structured per-session result:

    * the worker *function* failed — it already folded the error into its
      result (``ok=False``), nothing to do here;
    * the worker *process* died (``BrokenExecutor``) or the future raised
      for any other parent-visible reason — the session reruns inline,
      and the sessions queued behind it on the broken pool rerun too;
    * the session blew its deadline — reported as a failure immediately
      (an inline retry of a hung session would stall the whole fleet).
    """
    futures = [pool.submit(_run_one_session, payload_for(index, 0, hard_kill))
               for index in range(len(sessions))]
    results: list[FleetSessionResult | None] = [None] * len(sessions)
    needs_rerun: list[tuple[int, str]] = []
    pool_broken = False
    for index, future in enumerate(futures):
        if pool_broken:
            needs_rerun.append((index, "worker pool broke before this "
                                       "session finished"))
            future.cancel()
            continue
        try:
            result = future.result(timeout=timeout_s)
            if result.ok or max_retries == 0:
                results[index] = result
            else:
                # The worker folded a crash into a structured failure;
                # grant the session its retries before accepting it.
                needs_rerun.append((index, result.error))
        except FuturesTimeout:
            future.cancel()
            results[index] = _failed_session(
                index, sessions[index],
                f"session exceeded its {timeout_s:.1f}s deadline",
                attempts=1, backend=backend,
            )
        except BrokenExecutor as exc:
            pool_broken = True
            needs_rerun.append(
                (index, f"worker process died: "
                        f"{exc or type(exc).__name__}"))
        except Exception as exc:  # noqa: BLE001 - healed below
            needs_rerun.append((index, f"{type(exc).__name__}: {exc}"))
    for index, why in needs_rerun:
        results[index] = _rerun_inline(payload_for, index, sessions[index],
                                       why, max_retries)
    return tuple(results)


def _fleet_telemetry(results) -> TelemetrySnapshot | None:
    """Merge every session's snapshot into the fleet-wide rollup."""
    snapshots = [result.telemetry for result in results
                 if result.telemetry is not None]
    return (TelemetrySnapshot.merged(snapshots, actor="fleet")
            if snapshots else None)


# ----------------------------------------------------------------------
# the self-healing supervisor (durable fleets)
# ----------------------------------------------------------------------

def _session_store_path(store_dir: str, index: int) -> str:
    """The run-store directory for one fleet session."""
    return os.path.join(store_dir, f"session-{index:03d}")


def supervised_session_main(result_queue, payload: tuple):
    """Child entry point of one supervised session process.

    ``_run_one_session`` already folds session failures into structured
    results; the belt here catches failures of the folding itself, so
    the only way the parent sees no result is the process actually dying
    (hard kill, OOM) — exactly the signal the supervisor heals on.
    Shared with the replay-service daemon, whose workers post into its
    result queue the same way.
    """
    index, session = payload[0], payload[1]
    attempt = payload[7]
    try:
        result = _run_one_session(payload)
    except BaseException as exc:  # noqa: BLE001 - reported as a result
        result = _failed_session(
            index, session, f"{type(exc).__name__}: {exc}",
            attempts=attempt + 1, backend="supervised",
        )
    try:
        result_queue.put((index, result))
    except Exception:
        pass


def _supervised_inline(sessions, payload_for, *,
                       max_resume_attempts: int,
                       store_dir: str) -> tuple[FleetSessionResult, ...]:
    """Sequential fallback supervisor for hosts without processes.

    Runs each session inline; a failed attempt is healed by recovering
    its run store and resuming, up to ``max_resume_attempts`` times.
    Inline workers cannot be hard-killed or un-wedged (there is no
    process to terminate), so only crash-shaped failures heal here —
    the process supervisor is the real deployment shape.
    """
    results = []
    for index, session in enumerate(sessions):
        heal_events: list[RecoveryEvent] = []
        result = _run_one_session(payload_for(index, 0, False))
        attempt = 0
        while not result.ok and attempt < max_resume_attempts:
            attempt += 1
            window = (0, 0)
            try:
                window = recover_run(
                    _session_store_path(store_dir, index)).window
            except StoreCorruptError:
                pass
            heal_events.append(RecoveryEvent(
                kind="session-resumed", cause=result.error,
                window=window, attempts=attempt,
            ))
            result = _run_one_session(
                payload_for(index, attempt, False, resume=True))
        if not result.ok and heal_events:
            result = replace(
                result, error=f"{result.error}; resume attempts exhausted")
        results.append(replace(
            result, recoveries=tuple(heal_events) + result.recoveries))
    return tuple(results)


def _run_fleet_supervised(
    sessions: list,
    payload_for,
    *,
    workers: int,
    store_dir: str,
    heal_deadline_s: float,
    heal_poll_s: float,
    max_resume_attempts: int,
    session_timeout_s: float | None,
    board: HeartbeatBoard | None,
) -> tuple[tuple[FleetSessionResult, ...], str]:
    """The supervisor loop: one OS process per session, healed on death.

    Watches two signals per running session and heals on either:

    * **dead worker** — the process exited without posting a result
      (kill -9, OOM, an injected ``os._exit``);
    * **wedged worker** — the process is alive but its heartbeat row has
      not advanced for ``heal_deadline_s`` (and a grace period since
      launch has passed), or it blew ``session_timeout_s``.

    A heal terminates the worker, validates the session's run store
    (:func:`~repro.store.recover_run` — an unrecoverable store means a
    fresh deterministic restart, not a fleet failure), and relaunches
    with ``resume=True``; the relaunch itself is retried with backoff.
    After ``max_resume_attempts`` heals the session is marked failed
    with its heal trail attached.  Returns ``(results, backend)``;
    raises only if no worker process can be created at all (the caller
    falls back to :func:`_supervised_inline`).
    """
    ctx = multiprocessing.get_context()
    result_queue = ctx.Queue()
    total = len(sessions)
    results: list[FleetSessionResult | None] = [None] * total
    #: index -> (process, attempt, monotonic launch time)
    running: dict[int, tuple] = {}
    heal_events: dict[int, list[RecoveryEvent]] = {i: [] for i in range(total)}
    pending = list(range(total))

    def launch(index: int, attempt: int, resume: bool):
        process = ctx.Process(
            target=supervised_session_main,
            args=(result_queue, payload_for(index, attempt, True,
                                            resume=resume)),
            name=f"fleet-session-{index}",
            daemon=True,
        )
        process.start()
        running[index] = (process, attempt, time.monotonic())

    def finalize(index: int, result: FleetSessionResult):
        entry = running.pop(index, None)
        if entry is not None:
            entry[0].join(timeout=5.0)
        events = tuple(heal_events[index])
        results[index] = replace(
            result, recoveries=events + result.recoveries)

    def drain(block_s: float = 0.0) -> bool:
        got = False
        timeout = block_s
        while True:
            try:
                if timeout:
                    index, result = result_queue.get(timeout=timeout)
                else:
                    index, result = result_queue.get_nowait()
            except queue_mod.Empty:
                return got
            finalize(index, result)
            got = True
            timeout = 0.0

    def heal(index: int, cause: str):
        process, attempt, _ = running.pop(index)
        if process.is_alive():
            process.terminate()
        process.join(timeout=5.0)
        next_attempt = attempt + 1
        if next_attempt > max_resume_attempts:
            results[index] = _failed_session(
                index, sessions[index],
                f"{cause}; {max_resume_attempts} resume attempts exhausted",
                attempts=next_attempt, backend="supervised",
                recoveries=tuple(heal_events[index]),
            )
            if board is not None:
                board.reporter(index).publish("failed")
            return

        def relaunch(_attempt):
            resume = True
            window = (0, 0)
            try:
                window = recover_run(
                    _session_store_path(store_dir, index)).window
            except StoreCorruptError:
                # Nothing trustworthy on disk: restart the deterministic
                # run from its manifest instead of giving up.
                resume = False
            launch(index, next_attempt, resume)
            return resume, window

        try:
            resumed, window = retry_with_backoff(
                relaunch, retries=1, backoff_s=0.05,
                describe=f"supervised relaunch of session {index}",
            )
        except Exception as exc:  # noqa: BLE001 - folded into the result
            results[index] = _failed_session(
                index, sessions[index],
                f"{cause}; relaunch failed: {exc}",
                attempts=next_attempt, backend="supervised",
                recoveries=tuple(heal_events[index]),
            )
            return
        if board is not None:
            board.reporter(index).publish("resumed")
        heal_events[index].append(RecoveryEvent(
            kind="session-resumed" if resumed else "session-restarted",
            cause=cause, window=window, attempts=next_attempt,
        ))

    def check_health():
        rows = {row.index: row for row in board.rows()} if board else {}
        now = time.monotonic()
        for index in list(running):
            process, attempt, launched_at = running[index]
            if not process.is_alive():
                # Its result may still be in flight on the queue; give it
                # a beat to surface before declaring the worker dead.
                drain(block_s=0.2)
                if index in running:
                    heal(index, "worker process died without a result "
                                f"(exit code {process.exitcode})")
                continue
            age = now - launched_at
            if session_timeout_s is not None and age > session_timeout_s:
                heal(index, f"session exceeded its "
                            f"{session_timeout_s:.1f}s deadline")
                continue
            row = rows.get(index)
            if (row is not None and age > heal_deadline_s
                    and row.is_stale(stale_after_s=heal_deadline_s)):
                heal(index, f"heartbeat stale for {row.age_s():.1f}s "
                            f"(state {row.state!r})")

    try:
        while pending or running:
            while pending and len(running) < workers:
                index = pending.pop(0)
                if results[index] is None:
                    launch(index, 0, False)
            if not running:
                continue
            drain(block_s=heal_poll_s)
            check_health()
    finally:
        for process, _, _ in running.values():
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
        result_queue.close()
        result_queue.cancel_join_thread()
    return tuple(results), "supervised"


def run_fleet(
    sessions: list[FleetSession],
    *,
    max_workers: int | None = None,
    backend: str = "process",
    pipeline: bool = False,
    pipeline_backend: str = "thread",
    frame_records: int | None = None,
    queue_depth: int | None = None,
    fault_plan: FaultPlan | None = None,
    session_timeout_s: float | None = None,
    max_retries: int | None = None,
    telemetry: bool = False,
    heartbeat: HeartbeatBoard | None = None,
    store_dir: str | None = None,
    store_fsync: str = "interval",
    heal_deadline_s: float | None = None,
    heal_poll_s: float = 0.25,
    max_resume_attempts: int | None = None,
) -> FleetResult:
    """Run every session across a worker pool; results in input order.

    ``backend`` is ``"thread"`` or ``"process"`` (the default — sessions
    are CPU-bound, so real scaling needs processes).  As elsewhere in
    this package, an unusable process pool degrades to threads rather
    than failing; a fleet of one session runs inline.  ``pipeline`` runs
    each session through the streaming pipeline executor
    (``pipeline_backend`` defaulting to threads — see the module
    docstring on composing the two levels of parallelism).

    Failure containment: a session that raises, times out
    (``session_timeout_s``), or takes its worker process down with it is
    reported as a structured :class:`FleetSessionResult` with
    ``ok=False`` — in order, alongside its healthy peers — never as a
    fleet-wide exception and never as a silently missing entry.  Dead
    workers grant the session ``max_retries`` inline re-runs first.
    ``fault_plan`` injects worker faults for testing (``None`` = zero
    overhead).

    ``telemetry`` turns on per-session metric/span collection (each
    result carries a picklable snapshot; :attr:`FleetResult.telemetry`
    is their merge).  ``heartbeat`` is an optional
    :class:`~repro.obs.heartbeat.HeartbeatBoard`: sessions publish
    liveness rows into it while they run (build it with ``shared=True``
    for the process backend), which is what ``repro fleet --watch``
    renders.  Both are off by default and cost nothing when off.

    ``store_dir`` switches the fleet to the **self-healing supervisor**:
    each session journals into a durable run store under
    ``store_dir/session-NNN`` (fsync policy ``store_fsync``) and runs in
    its own supervised OS process.  A worker that dies or whose
    heartbeat goes stale for ``heal_deadline_s`` (default
    :data:`~repro.obs.heartbeat.STALE_AFTER_S`) is killed and resumed
    from its run store, up to ``max_resume_attempts`` times (default
    2), after which it is marked failed; every heal is recorded as a
    :class:`~repro.core.parallel.RecoveryEvent` on the session result.
    """
    if backend not in ("thread", "process"):
        raise HypervisorError(
            f"unknown fleet backend {backend!r}; choose 'thread' or 'process'"
        )
    if not sessions:
        return FleetResult(results=(), backend="inline", workers=0,
                           host_seconds=0.0)
    if session_timeout_s is None:
        session_timeout_s = DEFAULT_CONFIG.fleet_timeout_s
    if max_retries is None:
        max_retries = DEFAULT_CONFIG.fleet_max_retries

    board = heartbeat
    board_owned = False
    if store_dir is not None and board is None:
        # The supervisor needs liveness rows to spot wedged sessions.
        board = HeartbeatBoard(shared=True)
        board_owned = True

    def payload_for(index: int, attempt: int, hard_kill: bool,
                    resume: bool = False) -> tuple:
        reporter = (board.reporter(index) if board is not None else None)
        return session_payload(
            index, sessions[index],
            pipeline=pipeline, pipeline_backend=pipeline_backend,
            frame_records=frame_records, queue_depth=queue_depth,
            fault_plan=fault_plan, attempt=attempt,
            allow_hard_kill=hard_kill, telemetry=telemetry,
            reporter=reporter,
            store_path=(_session_store_path(store_dir, index)
                        if store_dir is not None else None),
            resume=resume, store_fsync=store_fsync)

    workers = min(max_workers if max_workers is not None else len(sessions),
                  len(sessions))
    workers = max(1, workers)
    started = time.perf_counter()
    if store_dir is not None:
        if heal_deadline_s is None:
            heal_deadline_s = STALE_AFTER_S
        if max_resume_attempts is None:
            max_resume_attempts = 2
        try:
            results, fleet_backend = _run_fleet_supervised(
                sessions, payload_for,
                workers=workers,
                store_dir=store_dir,
                heal_deadline_s=heal_deadline_s,
                heal_poll_s=heal_poll_s,
                max_resume_attempts=max_resume_attempts,
                session_timeout_s=session_timeout_s,
                board=board,
            )
        except (OSError, ValueError, TypeError, AttributeError,
                ImportError, pickle.PicklingError):
            # No usable worker processes on this host: supervise inline
            # (same durability and resume semantics, no wedge healing).
            results = _supervised_inline(
                sessions, payload_for,
                max_resume_attempts=max_resume_attempts,
                store_dir=store_dir,
            )
            fleet_backend = "supervised-inline"
        finally:
            if board_owned:
                board.shutdown()
        return FleetResult(
            results=results, backend=fleet_backend, workers=workers,
            host_seconds=time.perf_counter() - started,
            telemetry=_fleet_telemetry(results),
        )
    if len(sessions) == 1:
        result = _run_one_session(payload_for(0, 0, False))
        if not result.ok and max_retries > 0:
            result = _rerun_inline(payload_for, 0, sessions[0],
                                   result.error, max_retries)
        return FleetResult(results=(result,), backend="inline", workers=1,
                           host_seconds=time.perf_counter() - started,
                           telemetry=_fleet_telemetry((result,)))
    if backend == "process":
        try:
            workers_capped = max(1, min(workers, os.cpu_count() or 1))
            with ProcessPoolExecutor(max_workers=workers_capped) as pool:
                results = _collect_fleet(
                    pool, payload_for, sessions, hard_kill=True,
                    timeout_s=session_timeout_s, max_retries=max_retries,
                    backend="process",
                )
            return FleetResult(
                results=results, backend="process", workers=workers_capped,
                host_seconds=time.perf_counter() - started,
                telemetry=_fleet_telemetry(results),
            )
        except (OSError, ValueError, TypeError, AttributeError,
                ImportError, pickle.PicklingError, BrokenExecutor):
            # No usable process pool: degrade to threads (identical
            # results, only wall-clock differs).
            pass
    with ThreadPoolExecutor(max_workers=workers) as pool:
        results = _collect_fleet(
            pool, payload_for, sessions, hard_kill=False,
            timeout_s=session_timeout_s, max_retries=max_retries,
            backend="thread",
        )
    return FleetResult(results=results, backend="thread", workers=workers,
                       host_seconds=time.perf_counter() - started,
                       telemetry=_fleet_telemetry(results))
