"""The fleet driver: many record+replay sessions across a process pool.

The paper's deployment amortizes one replay machine over many recorded
VMs ("the replaying VM can multiplex several recorded VMs", §3).  The
inverse is just as useful for throughput studies: N independent sessions
— different benchmarks, seeds, or attack mixes — each running its own
record+CR(+AR) stack on its own core.  Sessions share nothing (every
machine is rebuilt from a :class:`~repro.rnr.session.SessionManifest`),
so the fleet is embarrassingly parallel; this module schedules it and
returns per-session results in input order.

Each worker can run its session either sequentially (record, then CR,
then ARs) or through the streaming pipeline
(:func:`~repro.core.parallel.record_and_replay_pipelined`); inside a
fleet worker the pipeline defaults to its thread backend so fleet
parallelism (process per session) and pipeline parallelism (threads
inside a session) compose without nested process pools.

Results carry a digest of the session's log bytes so equivalence across
schedulers is checkable without shipping whole logs between processes.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, replace

from repro.config import DEFAULT_CONFIG
from repro.core.parallel import record_and_replay_pipelined, resolve_alarms_parallel
from repro.errors import HypervisorError
from repro.faults.plan import FaultPlan
from repro.obs.heartbeat import HeartbeatBoard
from repro.obs.telemetry import Telemetry, TelemetrySnapshot
from repro.replay.checkpointing import CheckpointingOptions, CheckpointingReplayer
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.rnr.session import SessionManifest


@dataclass(frozen=True)
class FleetSession:
    """One session the fleet should run (a manifest plus run knobs)."""

    benchmark: str
    seed: int = 2018
    attack: str | None = None
    max_instructions: int = 1_000_000
    #: CR checkpoint period in guest seconds.
    period_s: float = 1.0

    def manifest(self) -> SessionManifest:
        return SessionManifest(
            benchmark=self.benchmark,
            seed=self.seed,
            attack=self.attack,
            max_instructions=self.max_instructions,
        )


@dataclass(frozen=True)
class FleetSessionResult:
    """What one fleet session produced (log digest instead of log bytes).

    A session that failed still yields a result — ``ok`` is False, ``error``
    carries the typed cause, and the metric fields are zeroed — so one bad
    session never takes down the fleet and never silently disappears from
    the result list.
    """

    index: int
    benchmark: str
    seed: int
    attack: str | None
    instructions: int
    log_records: int
    log_bytes: int
    #: SHA-256 of the serialized input log — equivalence without shipping
    #: the log across the pool.
    session_digest: str
    checkpoints: int
    alarms_seen: int
    dismissed_underflows: int
    #: Verdict kinds for the CR's pending alarms, in confirmation order.
    verdicts: tuple[str, ...]
    stop_reason: str
    host_seconds: float
    pipelined: bool
    backend: str
    #: False when the session failed; ``error`` then says how.
    ok: bool = True
    error: str = ""
    #: Total attempts spent on this session (1 = clean first try).
    attempts: int = 1
    #: Session-level telemetry rollup (``None`` unless the fleet ran with
    #: ``telemetry=True``) — a picklable delta the driver merges into the
    #: fleet-wide snapshot.
    telemetry: TelemetrySnapshot | None = None


def _failed_session(index: int, session: FleetSession, error: str,
                    *, attempts: int, backend: str,
                    host_seconds: float = 0.0) -> FleetSessionResult:
    """The structured result for a session that could not be completed."""
    return FleetSessionResult(
        index=index,
        benchmark=session.benchmark,
        seed=session.seed,
        attack=session.attack,
        instructions=0,
        log_records=0,
        log_bytes=0,
        session_digest="",
        checkpoints=0,
        alarms_seen=0,
        dismissed_underflows=0,
        verdicts=(),
        stop_reason="failed",
        host_seconds=host_seconds,
        pipelined=False,
        backend=backend,
        ok=False,
        error=error,
        attempts=attempts,
    )


@dataclass(frozen=True)
class FleetResult:
    """All session results, in input order, plus fleet-level accounting."""

    results: tuple[FleetSessionResult, ...]
    #: Pool backend that actually ran the fleet ("inline"/"thread"/"process").
    backend: str
    workers: int
    host_seconds: float
    #: Every session's telemetry snapshot merged (``None`` unless the
    #: fleet ran with ``telemetry=True``).
    telemetry: TelemetrySnapshot | None = None

    @property
    def total_instructions(self) -> int:
        return sum(result.instructions for result in self.results)

    @property
    def total_alarms(self) -> int:
        return sum(result.alarms_seen for result in self.results)

    @property
    def failures(self) -> tuple[FleetSessionResult, ...]:
        """The sessions that did not complete, in input order."""
        return tuple(result for result in self.results if not result.ok)


def _run_one_session(payload: tuple) -> FleetSessionResult:
    """Run one session end to end (executes inside a pool worker).

    Never raises for a session-level failure: any exception the session
    machinery produces is folded into a structured failure result, so the
    pool's other sessions are untouched.  (A hard-killed worker process
    can't be caught here, of course — the parent handles that.)
    """
    (index, session, pipeline, pipeline_backend,
     frame_records, queue_depth, fault_plan, attempt,
     allow_hard_kill, telemetry_on, reporter) = payload
    started = time.perf_counter()
    session_tel = None
    token = None
    try:
        if fault_plan is not None:
            fault_plan.fire_worker_fault(
                "fleet", index, attempt, allow_hard_kill=allow_hard_kill,
            )
        spec = session.manifest().build_spec()
        if telemetry_on and not spec.config.telemetry:
            spec = replace(spec, config=replace(spec.config, telemetry=True))
        # Non-None when telemetry is on *or* the fleet is being watched:
        # the lifecycle span needs the former, the beats the latter.
        session_tel = Telemetry.for_config(spec.config, "fleet",
                                           heartbeat=reporter)
        if session_tel is not None:
            session_tel.beat("start")
            token = session_tel.begin(
                "session", "fleet", 0,
                index=index, benchmark=session.benchmark, seed=session.seed,
            )
        recorder_options = RecorderOptions(
            max_instructions=session.max_instructions,
        )
        cr_options = CheckpointingOptions(period_s=session.period_s)
        if pipeline:
            run = record_and_replay_pipelined(
                spec, recorder_options, cr_options,
                backend=pipeline_backend,
                frame_records=frame_records,
                queue_depth=queue_depth,
                heartbeat=reporter,
            )
            recording = run.recording
            checkpointing = run.checkpointing
            verdicts = run.resolution.verdicts
            backend = f"pipeline-{run.stats.backend}"
            run_telemetry = run.telemetry
        else:
            rec_tel = (Telemetry.for_config(spec.config, "record",
                                            heartbeat=reporter)
                       if reporter is not None else None)
            recording = Recorder(spec, recorder_options,
                                 telemetry=rec_tel).run()
            cr_tel = (Telemetry.for_config(spec.config, "cr",
                                           heartbeat=reporter)
                      if reporter is not None else None)
            checkpointing = CheckpointingReplayer(
                spec, recording.log, cr_options, telemetry=cr_tel,
            ).run_to_end()
            resolution = resolve_alarms_parallel(
                spec, recording.log, checkpointing.pending_alarms,
                store=checkpointing.store, backend="thread",
            )
            verdicts = resolution.verdicts
            backend = "sequential"
            run_telemetry = (TelemetrySnapshot.merged(
                [recording.telemetry, checkpointing.telemetry,
                 resolution.telemetry], actor="session",
            ) if telemetry_on else None)
    except Exception as exc:  # noqa: BLE001 - folded into the result
        if reporter is not None:
            reporter.publish("failed")
        return _failed_session(
            index, session, f"{type(exc).__name__}: {exc}",
            attempts=attempt + 1, backend="worker",
            host_seconds=time.perf_counter() - started,
        )
    log_bytes = recording.log.to_bytes()
    telemetry_snapshot = None
    if session_tel is not None:
        final_icount = recording.metrics.instructions
        session_tel.end(token, final_icount, stop=recording.stop_reason)
        session_tel.beat("done", icount=final_icount)
        if telemetry_on:
            telemetry_snapshot = TelemetrySnapshot.merged(
                [run_telemetry, session_tel.snapshot()], actor="session",
            )
    return FleetSessionResult(
        index=index,
        benchmark=session.benchmark,
        seed=session.seed,
        attack=session.attack,
        instructions=recording.metrics.instructions,
        log_records=len(recording.log),
        log_bytes=len(log_bytes),
        session_digest=hashlib.sha256(log_bytes).hexdigest(),
        checkpoints=len(checkpointing.store),
        alarms_seen=checkpointing.alarms_seen,
        dismissed_underflows=checkpointing.dismissed_underflows,
        verdicts=tuple(verdict.kind.value for verdict in verdicts),
        stop_reason=recording.stop_reason,
        host_seconds=time.perf_counter() - started,
        pipelined=pipeline,
        backend=backend,
        attempts=attempt + 1,
        telemetry=telemetry_snapshot,
    )


def _rerun_inline(payload_for, index: int, session: FleetSession,
                  why: str, max_retries: int) -> FleetSessionResult:
    """Re-run a session whose pool worker died, inline in this process.

    The dead worker consumed attempt 0; this grants up to ``max_retries``
    more.  Inline execution cannot be hard-killed, so the retry either
    completes or folds its own failure into the result.
    """
    result = None
    for attempt in range(1, max_retries + 1):
        result = _run_one_session(payload_for(index, attempt, False))
        if result.ok:
            return replace(result, backend=result.backend + "+retry")
    if result is None:
        return _failed_session(index, session, why, attempts=1,
                               backend="process")
    return replace(result, error=f"{why}; final retry: {result.error}")


def _collect_fleet(pool, payload_for, sessions, *, hard_kill: bool,
                   timeout_s: float | None, max_retries: int,
                   backend: str) -> tuple[FleetSessionResult, ...]:
    """Submit every session, gather results in input order, heal failures.

    Three failure shapes, all ending in a structured per-session result:

    * the worker *function* failed — it already folded the error into its
      result (``ok=False``), nothing to do here;
    * the worker *process* died (``BrokenExecutor``) or the future raised
      for any other parent-visible reason — the session reruns inline,
      and the sessions queued behind it on the broken pool rerun too;
    * the session blew its deadline — reported as a failure immediately
      (an inline retry of a hung session would stall the whole fleet).
    """
    futures = [pool.submit(_run_one_session, payload_for(index, 0, hard_kill))
               for index in range(len(sessions))]
    results: list[FleetSessionResult | None] = [None] * len(sessions)
    needs_rerun: list[tuple[int, str]] = []
    pool_broken = False
    for index, future in enumerate(futures):
        if pool_broken:
            needs_rerun.append((index, "worker pool broke before this "
                                       "session finished"))
            future.cancel()
            continue
        try:
            result = future.result(timeout=timeout_s)
            if result.ok or max_retries == 0:
                results[index] = result
            else:
                # The worker folded a crash into a structured failure;
                # grant the session its retries before accepting it.
                needs_rerun.append((index, result.error))
        except FuturesTimeout:
            future.cancel()
            results[index] = _failed_session(
                index, sessions[index],
                f"session exceeded its {timeout_s:.1f}s deadline",
                attempts=1, backend=backend,
            )
        except BrokenExecutor as exc:
            pool_broken = True
            needs_rerun.append(
                (index, f"worker process died: "
                        f"{exc or type(exc).__name__}"))
        except Exception as exc:  # noqa: BLE001 - healed below
            needs_rerun.append((index, f"{type(exc).__name__}: {exc}"))
    for index, why in needs_rerun:
        results[index] = _rerun_inline(payload_for, index, sessions[index],
                                       why, max_retries)
    return tuple(results)


def _fleet_telemetry(results) -> TelemetrySnapshot | None:
    """Merge every session's snapshot into the fleet-wide rollup."""
    snapshots = [result.telemetry for result in results
                 if result.telemetry is not None]
    return (TelemetrySnapshot.merged(snapshots, actor="fleet")
            if snapshots else None)


def run_fleet(
    sessions: list[FleetSession],
    *,
    max_workers: int | None = None,
    backend: str = "process",
    pipeline: bool = False,
    pipeline_backend: str = "thread",
    frame_records: int | None = None,
    queue_depth: int | None = None,
    fault_plan: FaultPlan | None = None,
    session_timeout_s: float | None = None,
    max_retries: int | None = None,
    telemetry: bool = False,
    heartbeat: HeartbeatBoard | None = None,
) -> FleetResult:
    """Run every session across a worker pool; results in input order.

    ``backend`` is ``"thread"`` or ``"process"`` (the default — sessions
    are CPU-bound, so real scaling needs processes).  As elsewhere in
    this package, an unusable process pool degrades to threads rather
    than failing; a fleet of one session runs inline.  ``pipeline`` runs
    each session through the streaming pipeline executor
    (``pipeline_backend`` defaulting to threads — see the module
    docstring on composing the two levels of parallelism).

    Failure containment: a session that raises, times out
    (``session_timeout_s``), or takes its worker process down with it is
    reported as a structured :class:`FleetSessionResult` with
    ``ok=False`` — in order, alongside its healthy peers — never as a
    fleet-wide exception and never as a silently missing entry.  Dead
    workers grant the session ``max_retries`` inline re-runs first.
    ``fault_plan`` injects worker faults for testing (``None`` = zero
    overhead).

    ``telemetry`` turns on per-session metric/span collection (each
    result carries a picklable snapshot; :attr:`FleetResult.telemetry`
    is their merge).  ``heartbeat`` is an optional
    :class:`~repro.obs.heartbeat.HeartbeatBoard`: sessions publish
    liveness rows into it while they run (build it with ``shared=True``
    for the process backend), which is what ``repro fleet --watch``
    renders.  Both are off by default and cost nothing when off.
    """
    if backend not in ("thread", "process"):
        raise HypervisorError(
            f"unknown fleet backend {backend!r}; choose 'thread' or 'process'"
        )
    if not sessions:
        return FleetResult(results=(), backend="inline", workers=0,
                           host_seconds=0.0)
    if session_timeout_s is None:
        session_timeout_s = DEFAULT_CONFIG.fleet_timeout_s
    if max_retries is None:
        max_retries = DEFAULT_CONFIG.fleet_max_retries

    def payload_for(index: int, attempt: int, hard_kill: bool) -> tuple:
        reporter = (heartbeat.reporter(index)
                    if heartbeat is not None else None)
        return (index, sessions[index], pipeline, pipeline_backend,
                frame_records, queue_depth, fault_plan, attempt, hard_kill,
                telemetry, reporter)

    workers = min(max_workers if max_workers is not None else len(sessions),
                  len(sessions))
    workers = max(1, workers)
    started = time.perf_counter()
    if len(sessions) == 1:
        result = _run_one_session(payload_for(0, 0, False))
        if not result.ok and max_retries > 0:
            result = _rerun_inline(payload_for, 0, sessions[0],
                                   result.error, max_retries)
        return FleetResult(results=(result,), backend="inline", workers=1,
                           host_seconds=time.perf_counter() - started,
                           telemetry=_fleet_telemetry((result,)))
    if backend == "process":
        try:
            workers_capped = max(1, min(workers, os.cpu_count() or 1))
            with ProcessPoolExecutor(max_workers=workers_capped) as pool:
                results = _collect_fleet(
                    pool, payload_for, sessions, hard_kill=True,
                    timeout_s=session_timeout_s, max_retries=max_retries,
                    backend="process",
                )
            return FleetResult(
                results=results, backend="process", workers=workers_capped,
                host_seconds=time.perf_counter() - started,
                telemetry=_fleet_telemetry(results),
            )
        except (OSError, ValueError, TypeError, AttributeError,
                ImportError, pickle.PicklingError, BrokenExecutor):
            # No usable process pool: degrade to threads (identical
            # results, only wall-clock differs).
            pass
    with ThreadPoolExecutor(max_workers=workers) as pool:
        results = _collect_fleet(
            pool, payload_for, sessions, hard_kill=False,
            timeout_s=session_timeout_s, max_retries=max_retries,
            backend="thread",
        )
    return FleetResult(results=results, backend="thread", workers=workers,
                       host_seconds=time.perf_counter() - started,
                       telemetry=_fleet_telemetry(results))
