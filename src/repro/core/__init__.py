"""The RnR-Safe framework core.

:mod:`repro.core.modes` defines the paper's execution setups (NoRecPV,
NoRec, RecNoRAS, Rec and the replay variants); :mod:`repro.core.framework`
wires recording, the checkpointing replayer, and alarm replayers into the
full Figure 1 deployment; :mod:`repro.core.detector` is the plugin surface
for new first-line detectors and replay analyzers (Table 1).
"""

from repro.core.modes import (
    ALL_RECORDING_SETUPS,
    REC,
    REC_NO_RAS,
    NO_REC,
    NO_REC_PV,
    RecordingSetup,
    record_benchmark,
)
from repro.core.framework import (
    AlarmOutcome,
    FrameworkReport,
    RnRSafe,
    RnRSafeOptions,
)
from repro.core.detector import Detector, ReplayAnalyzer
from repro.core.response import ResponseWindow, checkpoints_needed
from repro.core.parallel import (
    ParallelReplayResult,
    ParallelResolution,
    PipelinedRun,
    PipelineStats,
    record_and_replay_pipelined,
    replay_parallel,
    resolve_alarms_parallel,
)
from repro.core.fleet import (
    FleetResult,
    FleetSession,
    FleetSessionResult,
    run_fleet,
)
from repro.core.pipeline import (
    EpochSchedule,
    PipelineResult,
    couple_pipeline,
    epoch_makespan,
    timelines_from_runs,
)

__all__ = [
    "RecordingSetup",
    "ALL_RECORDING_SETUPS",
    "NO_REC_PV",
    "NO_REC",
    "REC_NO_RAS",
    "REC",
    "record_benchmark",
    "RnRSafe",
    "RnRSafeOptions",
    "FrameworkReport",
    "AlarmOutcome",
    "Detector",
    "ReplayAnalyzer",
    "ResponseWindow",
    "checkpoints_needed",
    "ParallelResolution",
    "ParallelReplayResult",
    "resolve_alarms_parallel",
    "replay_parallel",
    "PipelinedRun",
    "PipelineStats",
    "record_and_replay_pipelined",
    "FleetSession",
    "FleetSessionResult",
    "FleetResult",
    "run_fleet",
    "PipelineResult",
    "couple_pipeline",
    "timelines_from_runs",
    "EpochSchedule",
    "epoch_makespan",
]
