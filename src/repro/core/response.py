"""Attack response window measurement (§8.4).

The window between the recorded VM logging an alarm and the alarm replayer
confirming it depends on how far the checkpointing replayer lags the
recorder and how much log the AR must replay from its checkpoint.  The
simulator runs the phases sequentially, so the window is *reconstructed*
from per-phase timestamps under the paper's deployment assumption that
recording and checkpointing replay start together and run concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimulationConfig


@dataclass(frozen=True)
class ResponseWindow:
    """Detection latency and associated state for one confirmed alarm."""

    #: Cycle at which the recorder logged the alarm.
    recorded_at_cycles: int
    #: Cycle at which the (concurrent) CR consumed the alarm marker.
    cr_reached_at_cycles: int
    #: Cycles the alarm replayer spent from its checkpoint to the verdict.
    analysis_cycles: int
    #: Log bytes between the AR's starting checkpoint and the alarm.
    log_bytes_in_window: int
    #: Checkpoints retained at that moment.
    checkpoints_retained: int

    @property
    def lag_cycles(self) -> int:
        """How far the CR trailed the recorder at the alarm."""
        return max(0, self.cr_reached_at_cycles - self.recorded_at_cycles)

    @property
    def window_cycles(self) -> int:
        """Total alarm-to-verdict latency."""
        return self.lag_cycles + self.analysis_cycles

    def window_seconds(self, config: SimulationConfig) -> float:
        """The §8.4 headline number: "on average a few seconds"."""
        return config.seconds(self.window_cycles)

    def summary(self, config: SimulationConfig) -> str:
        return (
            f"window {self.window_seconds(config):.2f}s "
            f"(CR lag {config.seconds(self.lag_cycles):.2f}s + "
            f"analysis {config.seconds(self.analysis_cycles):.2f}s), "
            f"{self.log_bytes_in_window} log bytes, "
            f"{self.checkpoints_retained} checkpoints retained"
        )


def checkpoints_needed(window_seconds: float, period_seconds: float,
                       history_seconds: float = 0.0) -> int:
    """The paper's retention rule (§8.4).

    Enough checkpoints to cover the response window plus two (so the right
    checkpoint is never prematurely overwritten), plus one per second of
    requested pre-attack history.
    """
    from math import ceil

    base = ceil(window_seconds / max(period_seconds, 1e-9)) + 2
    history = ceil(history_seconds / max(period_seconds, 1e-9))
    return base + history
