"""Concurrent alarm replayers and the streaming record/replay pipeline.

§5.2: "our design allows running multiple ARs concurrently, to analyze the
same or different ROP alarms in parallel."  Each AR owns a private machine
rebuilt from the immutable :class:`~repro.hypervisor.machine.MachineSpec`
and reads the shared log and checkpoint store without mutating them, so
replayers are embarrassingly parallel; this module runs a batch of them and
aggregates the verdicts.

Two backends are available (selectable per call or via
``SimulationConfig.ar_backend``):

* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.  Cheap
  to start but GIL-bound: ARs interleave on one core, so wall-clock gains
  come only from whatever little the interpreter releases the GIL for.
* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`, the
  iReplayer-style multiplier: ARs really run on separate cores.  The input
  log crosses the process boundary through its byte serialization
  (``rnr/serialize.py``), alarms as serialized records, and the spec,
  checkpoint store, and options by pickling; each worker deserializes once
  in its initializer and then analyzes any number of alarms.  If the
  process pool cannot be used (platform restrictions, unpicklable state),
  the call silently falls back to the thread backend — verdicts are
  identical either way, only wall-clock differs.

Batches of zero or one alarm never spin up an executor at all; they run
inline on the calling thread.

The second half of this module is the **streaming pipeline executor**
(:func:`record_and_replay_pipelined`): the paper's actual deployment shape,
where the Checkpointing Replayer consumes the input log *while* the
recorded VM executes (§3, §4.6) and alarm replayers launch the moment the
CR confirms an alarm — so end-to-end time is the max of the phases, not
their sum.  The log crosses from recorder to CR as chunked frames
(``repro.rnr.serialize``) through a bounded queue whose full state blocks
the recorder — the §8.3.1 back-pressure knob.  Two backends:

* ``"thread"`` — the CR runs on a consumer thread sharing the parent's
  memory; frames move by reference.  GIL-bound, so host wall-clock overlap
  is limited, but the deployment timeline (simulated cycles) overlaps
  fully and every structural property (backpressure, async AR dispatch,
  bounded memory) is exercised.
* ``"process"`` — the CR runs in its own OS process; frames cross the
  boundary as serialized bytes, results return by pickle.  Real multi-core
  overlap on multi-core hosts.

Either way the pipelined run is bit-equivalent to the sequential path:
same recorded log bytes, same checkpoints, same verdicts, same final CPU
state — asserted by ``tests/test_pipeline_equivalence.py``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_mod
import threading
import traceback
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass

from repro.cpu.state import CpuState
from repro.errors import (
    HypervisorError,
    LogCorruptionError,
    ReplayDivergenceError,
)
from repro.faults.injector import FaultyFrameEmitter, retry_with_backoff
from repro.faults.plan import FaultPlan, InjectedWorkerCrash
from repro.hypervisor.machine import MachineSpec
from repro.obs.telemetry import Telemetry, TelemetrySnapshot
from repro.replay.alarm import AlarmReplayer, AlarmReplayOptions
from repro.replay.checkpoint import Checkpoint, CheckpointStore
from repro.replay.checkpointing import (
    CheckpointingOptions,
    CheckpointingReplayer,
    CheckpointingResult,
    CrResumeState,
)
from repro.replay.epoch import (
    EpochPlan,
    EpochResult,
    replay_epoch,
    stitch_epoch_results,
    thin_epoch_plan,
)
from repro.replay.verdict import AlarmVerdict, VerdictKind
from repro.rnr.log import (
    FrameInfo,
    FrameQueueCursor,
    InputLog,
    RecordingLogTee,
    StreamingLogWriter,
)
from repro.perf.account import CycleAccount
from repro.perf.report import RunMetrics
from repro.rnr.recorder import Recorder, RecorderOptions, RecordingRun
from repro.rnr.records import AlarmRecord, EvictRecord
from repro.rnr.serialize import parse_record, serialize_record


@dataclass(frozen=True)
class ParallelResolution:
    """Aggregated verdicts from one parallel AR batch."""

    verdicts: tuple[AlarmVerdict, ...]
    #: Backend that actually ran the batch ("inline", "thread", "process").
    backend: str = "thread"
    #: Merged AR-side telemetry (``None`` unless ``config.telemetry``) —
    #: every worker ships its snapshot back with its verdict, whatever
    #: the backend.
    telemetry: TelemetrySnapshot | None = None

    @property
    def attacks(self) -> tuple[AlarmVerdict, ...]:
        return tuple(v for v in self.verdicts
                     if v.kind is VerdictKind.ROP_CONFIRMED)

    @property
    def false_positives(self) -> tuple[AlarmVerdict, ...]:
        return tuple(v for v in self.verdicts
                     if v.kind is VerdictKind.FALSE_POSITIVE)

    @property
    def inconclusive(self) -> tuple[AlarmVerdict, ...]:
        return tuple(v for v in self.verdicts
                     if v.kind is VerdictKind.INCONCLUSIVE)


def _analyze_from(spec: MachineSpec, log: InputLog, alarm: AlarmRecord,
                  checkpoint: Checkpoint | None,
                  store: CheckpointStore | None,
                  options: AlarmReplayOptions | None,
                  ) -> tuple[AlarmVerdict, TelemetrySnapshot | None]:
    """Run one AR from a pre-selected checkpoint to its verdict.

    The streaming pipeline captures ``checkpoint`` on the CR's thread the
    moment the alarm is confirmed, so the analysis dispatched to a worker
    starts from the same checkpoint a sequential run would have used.
    Returns the verdict plus the AR's telemetry snapshot (``None`` unless
    ``config.telemetry``) — a uniform pair regardless of backend, so the
    pipeline aggregates per-AR metrics without a second channel.
    """
    replayer = AlarmReplayer(
        spec, log, alarm,
        checkpoint=checkpoint,
        store=store,
        options=options if options is not None else AlarmReplayOptions(),
    )
    verdict = replayer.analyze()
    snapshot = (replayer.telemetry.snapshot()
                if replayer.telemetry is not None else None)
    return verdict, snapshot


def _analyze_one(spec: MachineSpec, log: InputLog, alarm: AlarmRecord,
                 store: CheckpointStore | None,
                 options: AlarmReplayOptions | None,
                 ) -> tuple[AlarmVerdict, TelemetrySnapshot | None]:
    """Run one AR to its verdict (shared by every backend)."""
    checkpoint = (store.latest_before(alarm.icount)
                  if store is not None else None)
    return _analyze_from(
        spec, log, alarm, checkpoint,
        store if checkpoint is not None else None, options,
    )


def _resolution_from(results, backend: str,
                     batch_telemetry: Telemetry | None = None,
                     ) -> ParallelResolution:
    """Assemble a :class:`ParallelResolution` from (verdict, snap) pairs,
    folding per-AR snapshots (and batch-side counters such as retry
    attempts) into one merged telemetry snapshot."""
    verdicts = tuple(pair[0] for pair in results)
    snapshots = [pair[1] for pair in results if pair[1] is not None]
    if batch_telemetry is not None:
        snapshots.append(batch_telemetry.snapshot())
    telemetry = (TelemetrySnapshot.merged(snapshots, actor="ar")
                 if snapshots else None)
    return ParallelResolution(verdicts=verdicts, backend=backend,
                              telemetry=telemetry)


# Per-worker-process state, installed once by ``_init_ar_worker`` so the
# spec, log, and checkpoint store cross the process boundary a single time
# per worker instead of once per alarm.
_WORKER_STATE: dict = {}


def _init_ar_worker(spec: MachineSpec, log_bytes: bytes,
                    store: CheckpointStore | None,
                    options: AlarmReplayOptions | None,
                    fault_plan: FaultPlan | None = None):
    _WORKER_STATE["spec"] = spec
    _WORKER_STATE["log"] = InputLog.from_bytes(log_bytes)
    _WORKER_STATE["store"] = store
    _WORKER_STATE["options"] = options
    _WORKER_STATE["fault_plan"] = fault_plan


def _analyze_in_worker(alarm_bytes: bytes, index: int = 0, attempt: int = 0
                       ) -> tuple[AlarmVerdict, TelemetrySnapshot | None]:
    plan = _WORKER_STATE.get("fault_plan")
    if plan is not None:
        plan.fire_worker_fault("ar", index, attempt, allow_hard_kill=True)
    alarm, _ = parse_record(alarm_bytes)
    return _analyze_one(
        _WORKER_STATE["spec"], _WORKER_STATE["log"], alarm,
        _WORKER_STATE["store"], _WORKER_STATE["options"],
    )


def _collect_verdicts(submit, count: int, *, timeout_s: float | None,
                      retries: int, backoff_s: float, role: str,
                      telemetry: Telemetry | None = None,
                      ) -> tuple[tuple[AlarmVerdict,
                                       TelemetrySnapshot | None], ...]:
    """Gather one (verdict, AR snapshot) per task with deadlines/retries.

    ``submit(index, attempt)`` must return a future.  All first attempts
    are in flight before any result is awaited, so the happy path keeps
    the pool saturated exactly like ``pool.map``.  A task that fails or
    misses its deadline is resubmitted up to ``retries`` times with
    exponential backoff; exhaustion raises a typed
    :class:`~repro.errors.WorkerFailureError` /
    :class:`~repro.errors.WorkerTimeoutError`.  A broken pool escapes
    immediately — the caller owns backend fallback.
    """
    futures = [submit(index, 0) for index in range(count)]
    verdicts = []
    for index in range(count):
        def run_attempt(attempt: int, index: int = index):
            if attempt and telemetry is not None:
                telemetry.count_tagged("ar.retry_attempts", role)
            future = (futures[index] if attempt == 0
                      else submit(index, attempt))
            try:
                return future.result(timeout=timeout_s)
            except FuturesTimeout as exc:
                raise TimeoutError(
                    f"no verdict within {timeout_s:.1f}s"
                ) from exc
        verdicts.append(retry_with_backoff(
            run_attempt, retries=retries, backoff_s=backoff_s,
            describe=f"alarm replayer for alarm {index} ({role} backend)",
            fatal=(BrokenExecutor,),
        ))
    return tuple(verdicts)


def resolve_alarms_parallel(
    spec: MachineSpec,
    log: InputLog,
    alarms: list[AlarmRecord],
    store: CheckpointStore | None = None,
    options: AlarmReplayOptions | None = None,
    max_workers: int = 4,
    backend: str | None = None,
    fault_plan: FaultPlan | None = None,
    timeout_s: float | None = None,
    max_retries: int | None = None,
) -> ParallelResolution:
    """Launch one AR per alarm and collect verdicts.

    Each AR starts from the latest checkpoint preceding its alarm when a
    store is supplied, otherwise from the beginning of the log.  Verdict
    order matches the input alarm order regardless of backend.

    ``backend`` is ``"thread"`` or ``"process"``; ``None`` defers to
    ``spec.config.ar_backend``.  ``timeout_s`` / ``max_retries`` default
    to the config's ``ar_timeout_s`` / ``ar_max_retries``: a worker that
    dies or misses its deadline is retried with backoff, and exhaustion
    surfaces as a typed :class:`~repro.errors.WorkerFailureError` rather
    than a raw pool exception.  A broken *process pool* (hard-killed
    worker) degrades the whole batch to the thread backend.
    ``fault_plan`` injects worker faults for testing; ``None`` (the
    default) leaves every hot path untouched.
    """
    config = spec.config
    if backend is None:
        backend = config.ar_backend
    if backend not in ("thread", "process"):
        raise HypervisorError(
            f"unknown parallel-AR backend {backend!r}; "
            f"choose 'thread' or 'process'"
        )
    if timeout_s is None:
        timeout_s = config.ar_timeout_s
    if max_retries is None:
        max_retries = config.ar_max_retries
    backoff_s = config.ar_retry_backoff_s
    if not alarms:
        return ParallelResolution(verdicts=(), backend="inline")
    if len(alarms) == 1 and fault_plan is None:
        # An executor for a single AR is pure overhead: run it inline.
        return _resolution_from(
            [_analyze_one(spec, log, alarms[0], store, options)], "inline",
        )

    workers = min(max_workers, len(alarms))
    if backend == "process":
        try:
            return _resolve_with_processes(
                spec, log, alarms, store, options, workers,
                fault_plan, timeout_s, max_retries, backoff_s,
            )
        except (OSError, ValueError, TypeError, AttributeError,
                ImportError, pickle.PicklingError, BrokenExecutor):
            # No usable process pool (sandboxed platform, unpicklable
            # state, a worker hard-killed mid-batch, ...): degrade to the
            # GIL-bound thread backend rather than failing the analysis.
            pass

    def analyze(index: int, attempt: int):
        if fault_plan is not None:
            fault_plan.fire_worker_fault("ar", index, attempt,
                                         allow_hard_kill=False)
        return _analyze_one(spec, log, alarms[index], store, options)

    batch_tel = Telemetry.for_config(config, "pipeline")
    with ThreadPoolExecutor(max_workers=workers) as pool:
        results = _collect_verdicts(
            lambda index, attempt: pool.submit(analyze, index, attempt),
            len(alarms), timeout_s=timeout_s, retries=max_retries,
            backoff_s=backoff_s, role="thread", telemetry=batch_tel,
        )
    return _resolution_from(results, "thread", batch_tel)


def _resolve_with_processes(
    spec: MachineSpec,
    log: InputLog,
    alarms: list[AlarmRecord],
    store: CheckpointStore | None,
    options: AlarmReplayOptions | None,
    workers: int,
    fault_plan: FaultPlan | None,
    timeout_s: float | None,
    max_retries: int,
    backoff_s: float,
) -> ParallelResolution:
    cpu_count = os.cpu_count() or 1
    workers = max(1, min(workers, cpu_count))
    log_bytes = log.to_bytes()
    alarm_payloads = [serialize_record(alarm) for alarm in alarms]
    batch_tel = Telemetry.for_config(spec.config, "pipeline")
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_ar_worker,
        initargs=(spec, log_bytes, store, options, fault_plan),
    ) as pool:
        results = _collect_verdicts(
            lambda index, attempt: pool.submit(
                _analyze_in_worker, alarm_payloads[index], index, attempt),
            len(alarms), timeout_s=timeout_s, retries=max_retries,
            backoff_s=backoff_s, role="process", telemetry=batch_tel,
        )
    return _resolution_from(results, "process", batch_tel)


# ----------------------------------------------------------------------
# the streaming record/replay pipeline
# ----------------------------------------------------------------------

#: Ceiling on any single blocking queue/pipe operation against the CR
#: process.  Generous — a stuck put/recv past this means the peer is dead,
#: and hanging forever would mask the real failure.
_PIPE_TIMEOUT_S = 600.0

#: Process-pool/process-backend failures that mean "no usable second
#: process", not "the workload failed": degrade to threads instead.
_PROCESS_FALLBACK_ERRORS = (OSError, ValueError, TypeError, AttributeError,
                            ImportError, pickle.PicklingError, BrokenExecutor)


@dataclass(frozen=True)
class PipelineStats:
    """Timelines and shape of one pipelined run.

    ``produced_cycles[k]`` is the recorder's simulated clock when frame
    ``k`` was emitted; ``consumed_cycles[k]`` is the CR's simulated clock
    when frame ``k`` was fully consumed.  The two timelines are what
    ``repro.core.pipeline.couple_pipeline`` folds into the overlapped
    deployment makespan (the benchmark's headline number).
    """

    backend: str
    frame_records: int
    queue_depth: int
    frames: tuple[FrameInfo, ...]
    produced_cycles: tuple[int, ...]
    consumed_cycles: tuple[int, ...]


@dataclass(frozen=True)
class RecoveryEvent:
    """One typed recovery action the pipeline took to heal a torn run."""

    #: What the heal did: ``"cr-resumed"`` (restarted from the dead CR's
    #: last completed checkpoint) or ``"cr-restarted"`` (from scratch).
    kind: str
    #: What tore the stream (CRC mismatch, sequence gap, dead worker, ...).
    cause: str
    #: Icount window the heal re-replayed: ``(anchor, end)`` — the anchor
    #: is the resume checkpoint's icount (0 for a restart).
    window: tuple[int, int] = (0, 0)
    #: Recovery attempts consumed (the pipeline heals in one pass today;
    #: fleet-level retries layer on top).
    attempts: int = 1

    @property
    def icount(self) -> int:
        """The resume anchor (0 when the CR restarted from scratch)."""
        return self.window[0]

    def __str__(self) -> str:
        how = (f"{self.kind}@{self.window[0]}" if self.kind == "cr-resumed"
               else self.kind)
        return f"{how}: {self.cause}"


class RecoveryAudit(tuple):
    """An ordered tuple of :class:`RecoveryEvent`, string-compatible with
    the free-form audit string it replaced: ``str()`` renders the old
    ``"cr-resumed@<icount>: <cause>"`` form, and substring / ``startswith``
    checks keep working against that rendering."""

    __slots__ = ()

    def __str__(self) -> str:
        return "; ".join(str(event) for event in self)

    def startswith(self, prefix: str) -> bool:
        return str(self).startswith(prefix)

    def __contains__(self, item) -> bool:
        if isinstance(item, str):
            return item in str(self)
        return tuple.__contains__(self, item)


@dataclass
class PipelinedRun:
    """Everything one pipelined record+replay(+AR) run produced.

    ``recording.log`` and ``checkpointing`` are bit-equivalent to a
    sequential run of the same spec; ``final_cpu_state`` is the CR
    machine's processor state at end of replay (captured before the CR's
    machine is torn down — with the process backend the machine itself
    never crosses back).
    """

    recording: RecordingRun
    checkpointing: CheckpointingResult
    final_cpu_state: CpuState
    #: Verdicts for the CR's pending alarms, in confirmation order;
    #: ``None`` when the run was launched with ``resolve_ars=False``.
    resolution: ParallelResolution | None
    stats: PipelineStats
    #: ``None`` for a clean run.  When the streamed replay was torn
    #: (corrupt/lost frame, dead CR worker) and the pipeline healed it
    #: from the recorder's authoritative tee log, this audit lists the
    #: typed :class:`RecoveryEvent` actions taken; ``str()`` renders the
    #: legacy form, e.g. ``"cr-resumed@120000: frame payload CRC ..."``.
    recovery: RecoveryAudit | None = None
    #: Run-level telemetry: the recorder's, CR's, every AR's, and the
    #: pipeline executor's snapshots merged (``None`` unless
    #: ``config.telemetry``).
    telemetry: TelemetrySnapshot | None = None


class _TornStream(Exception):
    """Internal carrier: the streamed replay died of transport damage.

    Raised on the consumer side, caught by the pipeline executor, which
    heals the run from the recorder's authoritative tee log.  Crosses the
    CR process boundary by pickle, so it carries plain data only.
    """

    def __init__(self, message: str,
                 resume_state: CrResumeState | None,
                 frames: tuple = (),
                 consumed_cycles: tuple = (),
                 stream_closed: bool = False):
        super().__init__(message)
        self.resume_state = resume_state
        self.frames = frames
        self.consumed_cycles = consumed_cycles
        #: True when the end-of-stream sentinel was already consumed —
        #: the error handler must NOT drain the queue (nothing is coming,
        #: and a blocking get would deadlock the pipeline).
        self.stream_closed = stream_closed


def _consume_frames(spec: MachineSpec,
                    cr_options: CheckpointingOptions,
                    frame_source,
                    resolve_ars: bool,
                    ar_options: AlarmReplayOptions | None,
                    max_ar_workers: int,
                    fault_plan: FaultPlan | None = None,
                    allow_hard_kill: bool = False,
                    heartbeat=None,
                    checkpoint_sink=None,
                    journal=None):
    """Run the CR over a frame queue; dispatch ARs as alarms confirm.

    This is the consumer half of both pipeline backends — it runs on the
    consumer thread (thread backend) or inside the CR process (process
    backend).  Returns ``(checkpointing_result, final_cpu_state,
    verdicts_or_None, cursor, ar_snapshots)``.

    AR dispatch is asynchronous: the moment the CR confirms an alarm the
    listener captures the latest preceding checkpoint (synchronously, on
    the CR's thread — so later checkpoints cannot change the AR's start
    point) and submits the analysis to a small thread pool.  The log keeps
    growing while the AR runs, but every record up to the alarm already
    exists at dispatch time, which is all the AR consumes.

    Transport damage (:class:`~repro.errors.LogCorruptionError` from the
    frame codec, or a stream that ends before the End record because
    trailing frames were lost) is re-raised as :class:`_TornStream`
    carrying the CR's resume state, so the executor can heal the run.
    Divergence (:class:`~repro.errors.ReplayDivergenceError`) is *not*
    caught: a replay that disagrees with the recording must fail loudly.

    ``checkpoint_sink`` is the durable run store's checkpoint listener
    (``RunStoreWriter.persist_checkpoint``): called on the CR's thread
    with ``(checkpoint, bookkeeping)`` the moment each checkpoint is
    taken, so the on-disk chain always trails the CR by at most one
    checkpoint period.  ``None`` (the default) keeps the hot path bare.
    """
    if fault_plan is not None:
        fault_plan.fire_worker_fault("cr", 0, allow_hard_kill=allow_hard_kill)
    log = InputLog()
    cursor = FrameQueueCursor(log, frame_source)
    ar_pool: list[ThreadPoolExecutor] = []
    futures = []

    def dispatch(alarm: AlarmRecord):
        if not ar_pool:
            ar_pool.append(ThreadPoolExecutor(
                max_workers=max_ar_workers,
                thread_name_prefix="pipeline-ar",
            ))
        store = replayer.store
        checkpoint = store.latest_before(alarm.icount)
        future = ar_pool[0].submit(
            _analyze_from, spec, log, alarm, checkpoint,
            store if checkpoint is not None else None, ar_options,
        )
        tel = replayer.telemetry
        if tel is not None:
            # Dispatch→verdict span, stamped on the CR's tracer: begins
            # the moment the CR confirms the alarm, ends when the AR's
            # verdict future completes — §8.4's response window, live.
            token = tel.begin("ar_dispatch", "ar",
                             replayer.machine.cpu.icount,
                             alarm_icount=alarm.icount)

            def on_verdict(done, token=token, icount=alarm.icount):
                exc = done.exception()
                if exc is not None:
                    tel.end(token, icount, error=type(exc).__name__)
                else:
                    tel.end(token, icount,
                            verdict=done.result()[0].kind.value)

            future.add_done_callback(on_verdict)
        futures.append(future)

    cr_tel = (Telemetry.for_config(spec.config, "cr", heartbeat=heartbeat,
                                   journal=journal)
              if heartbeat is not None or journal is not None else None)
    replayer = CheckpointingReplayer(
        spec, log, cr_options,
        cursor=cursor,
        pending_alarm_listener=dispatch if resolve_ars else None,
        telemetry=cr_tel,
        checkpoint_listener=checkpoint_sink,
    )
    cursor.clock = lambda: replayer.machine.now
    try:
        try:
            result = replayer.run_to_end()
        except LogCorruptionError as exc:
            raise _TornStream(
                str(exc), replayer.capture_resume_state(),
                tuple(cursor.reader.frames),
                tuple(cursor.frame_consumed_cycles),
                stream_closed=cursor.closed,
            ) from exc
        cursor.finalize_timeline(replayer.machine.now)
        if (not result.replay.reached_end
                and result.replay.stop_reason == "log_exhausted"):
            # The producer always closes the log with an End record; a
            # stream that ran dry without one lost its trailing frames
            # (e.g. the final frame was dropped — no sequence gap ever
            # materializes, so only this check catches it).
            raise _TornStream(
                "stream ended before the End record — trailing frames "
                "were lost",
                replayer.capture_resume_state(),
                tuple(cursor.reader.frames),
                tuple(cursor.frame_consumed_cycles),
                stream_closed=cursor.closed,
            )
        verdicts = None
        ar_snapshots: tuple = ()
        if resolve_ars:
            pairs = [future.result() for future in futures]
            verdicts = tuple(pair[0] for pair in pairs)
            ar_snapshots = tuple(pair[1] for pair in pairs
                                 if pair[1] is not None)
            if pairs and replayer.telemetry is not None:
                # Re-snapshot: the dispatch→verdict spans close on AR
                # completion, after run_to_end() sampled.
                result.telemetry = replayer.sample_telemetry()
    finally:
        if ar_pool:
            ar_pool[0].shutdown(wait=True)
    return (result, replayer.machine.cpu.capture_state(), verdicts, cursor,
            ar_snapshots)


def _recover_torn_stream(spec: MachineSpec,
                         recording: RecordingRun,
                         cr_options: CheckpointingOptions,
                         resume_state: CrResumeState | None,
                         resolve_ars: bool,
                         ar_options: AlarmReplayOptions | None,
                         max_ar_workers: int,
                         stats: PipelineStats,
                         cause: str,
                         telemetry: Telemetry | None = None,
                         run_store=None) -> PipelinedRun:
    """Heal a torn pipelined run from the recorder's tee log.

    The recorder's in-memory :class:`~repro.rnr.log.RecordingLogTee` kept
    the authoritative, undamaged log, so transport damage never loses
    data — it only costs the overlap.  When the dead CR left usable
    resume state, replay restarts from its last completed checkpoint
    (skipping everything already verified); otherwise it reruns from the
    beginning.  ARs are then resolved from the healed store, so the final
    verdicts are bit-identical to a sequential run.  The heal is recorded
    as a typed :class:`RecoveryEvent` (and, when ``telemetry`` is on, as a
    ``recover`` span covering the re-replayed window).
    """
    # The restarted CR keeps persisting to the run store when one is
    # attached; its chain entries are keyed by checkpoint id, so the
    # deterministic re-take of already-persisted checkpoints converges
    # instead of duplicating them.
    sink = run_store.persist_checkpoint if run_store is not None else None
    if resume_state is not None and resume_state.checkpoint_icount is not None:
        replayer = CheckpointingReplayer.resume(
            spec, recording.log, cr_options, resume_state,
            checkpoint_listener=sink,
        )
        kind = "cr-resumed"
        anchor = resume_state.checkpoint_icount
    else:
        replayer = CheckpointingReplayer(spec, recording.log, cr_options,
                                         checkpoint_listener=sink)
        kind = "cr-restarted"
        anchor = 0
    token = (telemetry.begin("recover", "recover", anchor, cause=cause)
             if telemetry is not None else None)
    result = replayer.run_to_end()
    cpu_state = replayer.machine.cpu.capture_state()
    end_icount = replayer.machine.cpu.icount
    if telemetry is not None:
        telemetry.count_tagged("pipeline.recoveries", kind)
        telemetry.end(token, end_icount, kind=kind)
    resolution = None
    if resolve_ars:
        batch = resolve_alarms_parallel(
            spec, recording.log, list(result.pending_alarms),
            store=result.store, options=ar_options,
            max_workers=max_ar_workers, backend="thread",
        )
        resolution = ParallelResolution(
            verdicts=batch.verdicts,
            backend=f"recovered-{batch.backend}",
            telemetry=batch.telemetry,
        )
    event = RecoveryEvent(kind=kind, cause=cause,
                          window=(anchor, end_icount))
    if run_store is not None:
        run_store.persist_telemetry(recording.telemetry)
        run_store.persist_telemetry(result.telemetry)
        if resolution is not None:
            run_store.persist_telemetry(resolution.telemetry)
        if telemetry is not None:
            run_store.persist_telemetry(telemetry.snapshot())
        run_store.finish(
            cpu_state.icount,
            [v.kind.value for v in resolution.verdicts]
            if resolution is not None else (),
        )
    return PipelinedRun(
        recording=recording,
        checkpointing=result,
        final_cpu_state=cpu_state,
        resolution=resolution,
        stats=stats,
        recovery=RecoveryAudit((event,)),
    )


def _run_producer(spec: MachineSpec,
                  recorder_options: RecorderOptions | None,
                  frame_records: int,
                  emit_frame,
                  heartbeat=None,
                  journal=None) -> tuple[RecordingRun, list[int]]:
    """Record through a tee whose frames flow to ``emit_frame``.

    Returns the recording and the per-frame production timeline.  The tee
    is always flushed (and the trailing partial frame emitted) even when
    the recording itself raises, so the consumer's stream stays framed.
    """
    produced_cycles: list[int] = []

    def on_frame(frame: bytes):
        produced_cycles.append(recorder.machine.now)
        emit_frame(frame)

    tee = RecordingLogTee(StreamingLogWriter(frame_records, on_frame=on_frame))
    rec_tel = (Telemetry.for_config(spec.config, "record",
                                    heartbeat=heartbeat, journal=journal)
               if heartbeat is not None or journal is not None else None)
    recorder = Recorder(spec, recorder_options, log=tee, telemetry=rec_tel)
    try:
        recording = recorder.run()
    finally:
        tee.finish()
    return recording, produced_cycles


def _sampled_emit(telemetry: Telemetry, frames, emit):
    """Wrap a frame emitter with queue-depth/volume sampling.

    Only installed when telemetry is on, so the nil-sink hot path keeps
    the bare ``queue.put``.  ``qsize`` is advisory (and unimplemented for
    ``multiprocessing.Queue`` on some platforms) — depth sampling degrades
    to nothing rather than failing the pipeline.
    """
    depth = telemetry.registry.histogram("pipeline.queue_depth")
    emitted = telemetry.registry.counter("pipeline.frames_emitted")

    def sampled(frame: bytes):
        emit(frame)
        emitted.add(len(frame))
        try:
            depth.observe(frames.qsize())
        except (NotImplementedError, OSError):
            pass

    return sampled


def _pipelined_threads(spec: MachineSpec,
                       recorder_options: RecorderOptions | None,
                       cr_options: CheckpointingOptions,
                       frame_records: int,
                       queue_depth: int,
                       resolve_ars: bool,
                       ar_options: AlarmReplayOptions | None,
                       max_ar_workers: int,
                       fault_plan: FaultPlan | None = None,
                       telemetry: Telemetry | None = None,
                       heartbeat=None,
                       run_store=None) -> PipelinedRun:
    frames: "queue_mod.Queue" = queue_mod.Queue(maxsize=queue_depth)
    outcome: dict = {}
    # Durable runs journal their telemetry beside the frame journal: the
    # recorder and CR share one thread-safe writer (like the store itself),
    # so ``repro stats DIR`` and ``repro top`` work post-hoc and mid-crash.
    journal = run_store.telemetry_journal() if run_store is not None else None

    def consume():
        try:
            outcome["value"] = _consume_frames(
                spec, cr_options, frames.get,
                resolve_ars, ar_options, max_ar_workers,
                fault_plan=fault_plan, allow_hard_kill=False,
                heartbeat=heartbeat,
                checkpoint_sink=(run_store.persist_checkpoint
                                 if run_store is not None else None),
                journal=journal,
            )
        except BaseException as exc:  # noqa: BLE001 - reraised in parent
            outcome["error"] = exc
            # Unblock a producer stuck on a full queue: drain until the
            # end-of-stream sentinel arrives — unless the consumer already
            # saw it (draining then would block forever).
            if not getattr(exc, "stream_closed", False):
                while frames.get() is not None:
                    pass

    consumer = threading.Thread(target=consume, name="pipeline-cr",
                                daemon=True)
    consumer.start()
    emit = frames.put
    if telemetry is not None:
        emit = _sampled_emit(telemetry, frames, emit)
    if fault_plan is not None:
        emit = FaultyFrameEmitter(fault_plan, emit, telemetry=telemetry)
    if run_store is not None:
        # Outermost wrap, so the write-ahead journal sees every frame
        # pristine — transport faults (the FaultyFrameEmitter above)
        # corrupt only the copy handed down the queue, exactly like a
        # wire fault after the bytes were persisted.
        transport_emit = emit

        def emit(frame: bytes, _next=transport_emit):
            run_store.append_frame(frame)
            _next(frame)
    producer_error: BaseException | None = None
    recording = None
    produced_cycles: list[int] = []
    try:
        recording, produced_cycles = _run_producer(
            spec, recorder_options, frame_records, emit,
            heartbeat=heartbeat, journal=journal,
        )
    except BaseException as exc:  # noqa: BLE001 - reraised below
        producer_error = exc
    finally:
        frames.put(None)
        consumer.join()
    if producer_error is not None:
        if run_store is not None:
            # The journal keeps whatever the crash left (kill tests read
            # it back); only the handle is released here.
            run_store.close()
        raise producer_error
    if run_store is not None:
        run_store.seal_log(recording)
    error = outcome.get("error")
    if error is not None:
        if isinstance(error, (_TornStream, InjectedWorkerCrash)):
            torn = error if isinstance(error, _TornStream) else None
            stats = PipelineStats(
                backend="thread",
                frame_records=frame_records,
                queue_depth=queue_depth,
                frames=torn.frames if torn else (),
                produced_cycles=tuple(produced_cycles),
                consumed_cycles=torn.consumed_cycles if torn else (),
            )
            return _recover_torn_stream(
                spec, recording, cr_options,
                torn.resume_state if torn else None,
                resolve_ars, ar_options, max_ar_workers, stats,
                str(error), telemetry=telemetry, run_store=run_store,
            )
        if run_store is not None:
            run_store.close()
        raise error
    result, cpu_state, verdicts, cursor, ar_snapshots = outcome["value"]
    stats = PipelineStats(
        backend="thread",
        frame_records=frame_records,
        queue_depth=queue_depth,
        frames=tuple(cursor.reader.frames),
        produced_cycles=tuple(produced_cycles),
        consumed_cycles=tuple(cursor.frame_consumed_cycles),
    )
    resolution = (ParallelResolution(
        verdicts=verdicts, backend="pipeline-thread",
        telemetry=(TelemetrySnapshot.merged(ar_snapshots, actor="ar")
                   if ar_snapshots else None),
    ) if resolve_ars else None)
    if run_store is not None:
        # Final cumulative snapshots must land before finish() closes the
        # telemetry journal: the last beat-driven snapshot predates the
        # end-of-run ground truth (counters, profile) each actor folds in
        # at phase end.  Reconstruction is last-write-wins per actor, so
        # these supersede the beat-driven entries.
        run_store.persist_telemetry(recording.telemetry)
        run_store.persist_telemetry(result.telemetry)
        if resolution is not None:
            run_store.persist_telemetry(resolution.telemetry)
        if telemetry is not None:
            run_store.persist_telemetry(telemetry.snapshot())
        run_store.finish(
            cpu_state.icount,
            [v.kind.value for v in verdicts] if verdicts else (),
        )
    return PipelinedRun(
        recording=recording,
        checkpointing=result,
        final_cpu_state=cpu_state,
        resolution=resolution,
        stats=stats,
    )


def _pipeline_cr_process(conn, frames, spec, cr_options, resolve_ars,
                         ar_options, max_ar_workers, fault_plan=None,
                         heartbeat=None):
    """Entry point of the CR process (process backend)."""
    try:
        result, cpu_state, verdicts, cursor, ar_snapshots = _consume_frames(
            spec, cr_options, frames.get,
            resolve_ars, ar_options, max_ar_workers,
            fault_plan=fault_plan, allow_hard_kill=True,
            heartbeat=heartbeat,
        )
        conn.send({
            "error": None,
            "checkpointing": result,
            "final_cpu_state": cpu_state,
            "verdicts": verdicts,
            "frames": tuple(cursor.reader.frames),
            "consumed_cycles": tuple(cursor.frame_consumed_cycles),
            "ar_telemetry": ar_snapshots,
        })
    except (_TornStream, InjectedWorkerCrash) as exc:
        # Recoverable consumer death: drain the producer, then ship the
        # resume state so the parent can heal from its tee log.
        try:
            if not getattr(exc, "stream_closed", False):
                while frames.get(timeout=_PIPE_TIMEOUT_S) is not None:
                    pass
        except Exception:
            pass
        torn = exc if isinstance(exc, _TornStream) else None
        try:
            conn.send({
                "error": str(exc),
                "torn": {
                    "resume_state": torn.resume_state if torn else None,
                    "frames": torn.frames if torn else (),
                    "consumed_cycles": torn.consumed_cycles if torn else (),
                },
            })
        except Exception:
            pass
    except ReplayDivergenceError as exc:
        # Divergence is a *verdict*, never healed: ship the typed
        # exception itself (it pickles with its digests and window) so
        # the parent re-raises it intact.
        try:
            while frames.get(timeout=_PIPE_TIMEOUT_S) is not None:
                pass
        except Exception:
            pass
        try:
            conn.send({"error": str(exc), "divergence": exc})
        except Exception:
            pass
    except BaseException as exc:  # noqa: BLE001 - reported through the pipe
        # Unblock the producer before reporting, then ship the traceback.
        try:
            if not getattr(exc, "stream_closed", False):
                while frames.get(timeout=_PIPE_TIMEOUT_S) is not None:
                    pass
        except Exception:
            pass
        try:
            conn.send({"error": traceback.format_exc()})
        except Exception:
            pass
    finally:
        conn.close()


def _pipelined_processes(spec: MachineSpec,
                         recorder_options: RecorderOptions | None,
                         cr_options: CheckpointingOptions,
                         frame_records: int,
                         queue_depth: int,
                         resolve_ars: bool,
                         ar_options: AlarmReplayOptions | None,
                         max_ar_workers: int,
                         fault_plan: FaultPlan | None = None,
                         telemetry: Telemetry | None = None,
                         heartbeat=None) -> PipelinedRun:
    ctx = multiprocessing.get_context()
    frames = ctx.Queue(maxsize=queue_depth)
    recv_conn, send_conn = ctx.Pipe(duplex=False)
    worker = ctx.Process(
        target=_pipeline_cr_process,
        args=(send_conn, frames, spec, cr_options, resolve_ars,
              ar_options, max_ar_workers, fault_plan, heartbeat),
        name="pipeline-cr",
        daemon=True,
    )
    worker.start()
    send_conn.close()

    def emit(frame: bytes):
        frames.put(frame, timeout=_PIPE_TIMEOUT_S)

    if telemetry is not None:
        emit = _sampled_emit(telemetry, frames, emit)
    if fault_plan is not None:
        emit = FaultyFrameEmitter(fault_plan, emit, telemetry=telemetry)

    producer_error: BaseException | None = None
    recording = None
    produced_cycles: list[int] = []
    try:
        recording, produced_cycles = _run_producer(
            spec, recorder_options, frame_records, emit,
            heartbeat=heartbeat,
        )
    except BaseException as exc:  # noqa: BLE001 - reraised below
        producer_error = exc
    finally:
        try:
            frames.put(None, timeout=_PIPE_TIMEOUT_S)
        except Exception:
            pass
    payload = None
    cr_death: str | None = None
    try:
        if producer_error is not None:
            raise producer_error
        if not recv_conn.poll(_PIPE_TIMEOUT_S):
            cr_death = ("pipeline CR process produced no result within "
                        f"{_PIPE_TIMEOUT_S:.0f}s")
        else:
            try:
                payload = recv_conn.recv()
            except EOFError:
                cr_death = ("pipeline CR process died without reporting "
                            "a result")
    finally:
        recv_conn.close()
        worker.join(timeout=_PIPE_TIMEOUT_S)
        if worker.is_alive():
            worker.terminate()
        frames.close()
        if cr_death is not None or producer_error is not None:
            # The consumer is dead, so the queue's feeder thread may be
            # wedged mid-send into a full pipe nobody will ever drain;
            # joining it would hang forever.  Discard the undelivered
            # frames — the tee log still has every record.
            frames.cancel_join_thread()
        else:
            frames.join_thread()

    def recover(torn: dict | None, cause: str) -> PipelinedRun:
        stats = PipelineStats(
            backend="process",
            frame_records=frame_records,
            queue_depth=queue_depth,
            frames=torn["frames"] if torn else (),
            produced_cycles=tuple(produced_cycles),
            consumed_cycles=torn["consumed_cycles"] if torn else (),
        )
        return _recover_torn_stream(
            spec, recording, cr_options,
            torn["resume_state"] if torn else None,
            resolve_ars, ar_options, max_ar_workers, stats, cause,
            telemetry=telemetry,
        )

    if cr_death is not None:
        # The CR process is gone (hard kill, OOM, ...) but the recording
        # completed: heal locally instead of failing the whole run.
        return recover(None, cr_death)
    if payload["error"] is not None:
        if "torn" in payload:
            return recover(payload["torn"], payload["error"])
        if "divergence" in payload:
            raise payload["divergence"]
        raise HypervisorError(
            f"pipeline CR process failed:\n{payload['error']}"
        )
    stats = PipelineStats(
        backend="process",
        frame_records=frame_records,
        queue_depth=queue_depth,
        frames=payload["frames"],
        produced_cycles=tuple(produced_cycles),
        consumed_cycles=payload["consumed_cycles"],
    )
    ar_snapshots = payload.get("ar_telemetry", ())
    resolution = (ParallelResolution(
        verdicts=payload["verdicts"], backend="pipeline-process",
        telemetry=(TelemetrySnapshot.merged(ar_snapshots, actor="ar")
                   if ar_snapshots else None),
    ) if resolve_ars else None)
    return PipelinedRun(
        recording=recording,
        checkpointing=payload["checkpointing"],
        final_cpu_state=payload["final_cpu_state"],
        resolution=resolution,
        stats=stats,
    )


def _recording_from_resume(resume) -> RecordingRun:
    """Rebuild a :class:`RecordingRun` from a sealed journal.

    The guest never re-executes — the journal bytes *are* the recording
    — so the run carries no machine; the metric scalars come from the
    summary persisted at seal time and the alarm/evict records are
    re-read from the recovered log.  The cycle account is empty: the
    recording's overhead cycles were spent (and reported) by the run
    that crashed, not by this resume.
    """
    meta = dict(resume.recording_meta or {})
    log = resume.log
    records = log.records()
    alarms = [r for r in records if isinstance(r, AlarmRecord)]
    evicts = [r for r in records if isinstance(r, EvictRecord)]
    metrics = RunMetrics(
        label=meta.get("label", resume.session.benchmark),
        instructions=meta.get("instructions", resume.last_icount),
        guest_cycles=meta.get("guest_cycles", resume.last_icount),
        account=CycleAccount(),
        log_bytes=meta.get("log_bytes", log.total_bytes),
        backras_bytes=meta.get("backras_bytes", 0),
        alarms=meta.get("alarms", len(alarms)),
        evicts=meta.get("evicts", len(evicts)),
        context_switches=meta.get("context_switches", 0),
    )
    return RecordingRun(
        metrics=metrics,
        log=log,
        machine=None,
        alarms=alarms,
        evicts=evicts,
        restored_stop_reason=meta.get("stop_reason", "restored"),
    )


def _resume_pipelined(spec: MachineSpec,
                      cr_options: CheckpointingOptions,
                      resume,
                      run_store,
                      resolve_ars: bool,
                      ar_options: AlarmReplayOptions | None,
                      max_ar_workers: int,
                      recorder_options: RecorderOptions | None,
                      frame_records: int,
                      queue_depth: int,
                      telemetry: Telemetry | None = None,
                      heartbeat=None) -> PipelinedRun:
    """Continue an interrupted durable run from its resume point.

    Determinism is the lever (see ``docs/RELIABILITY.md``): when the
    journal holds the complete recording, the guest never re-executes —
    the log is rebuilt straight from the journaled bytes.  Otherwise the
    recording re-runs from the session manifest and, being deterministic,
    reproduces the journal byte-identically (the resumed
    ``run_store`` rewrites it while re-recording).  The CR then resumes
    from the newest durable checkpoint — or from the start when none
    survived — and pending alarms are resolved post-hoc over the healed
    store, exactly like torn-stream recovery.  ARs cannot be dispatched
    asynchronously here: at restore time the rebuilt log is complete, so
    there is no live stream to overlap with.

    The heal runs the phases sequentially, so ``PipelineStats`` carries
    no overlap timeline (``backend="resume"``, empty frame timelines);
    results — log bytes, checkpoints, final CPU state, verdicts — are
    bit-identical to an uninterrupted run.
    """
    sink = run_store.persist_checkpoint if run_store is not None else None
    kind = None
    if resume.recording_complete:
        recording = _recording_from_resume(resume)
        kind = "run-resumed"
    else:
        emit = (run_store.append_frame if run_store is not None
                else (lambda frame: None))
        recording, _ = _run_producer(
            spec, recorder_options, frame_records, emit,
            heartbeat=heartbeat,
            journal=(run_store.telemetry_journal()
                     if run_store is not None else None),
        )
        if run_store is not None:
            run_store.seal_log(recording)
    state = resume.cr_state
    if state is not None and state.checkpoint_icount is not None:
        replayer = CheckpointingReplayer.resume(
            spec, recording.log, cr_options, state,
            checkpoint_listener=sink,
        )
        anchor = state.checkpoint_icount
        kind = kind or "cr-resumed"
    else:
        replayer = CheckpointingReplayer(spec, recording.log, cr_options,
                                         checkpoint_listener=sink)
        anchor = 0
        kind = kind or "cr-restarted"
    cause = f"resumed from run store {resume.path}"
    token = (telemetry.begin("recover", "recover", anchor, cause=cause)
             if telemetry is not None else None)
    result = replayer.run_to_end()
    cpu_state = replayer.machine.cpu.capture_state()
    end_icount = replayer.machine.cpu.icount
    if telemetry is not None:
        telemetry.count_tagged("pipeline.recoveries", kind)
        telemetry.end(token, end_icount, kind=kind)
    resolution = None
    if resolve_ars:
        batch = resolve_alarms_parallel(
            spec, recording.log, list(result.pending_alarms),
            store=result.store, options=ar_options,
            max_workers=max_ar_workers, backend="thread",
        )
        resolution = ParallelResolution(
            verdicts=batch.verdicts, backend="resume",
            telemetry=batch.telemetry,
        )
    stats = PipelineStats(
        backend="resume",
        frame_records=frame_records,
        queue_depth=queue_depth,
        frames=(),
        produced_cycles=(),
        consumed_cycles=(),
    )
    event = RecoveryEvent(kind=kind, cause=cause,
                          window=(anchor, end_icount),
                          attempts=resume.attempt + 1)
    if run_store is not None:
        run_store.persist_telemetry(recording.telemetry)
        run_store.persist_telemetry(result.telemetry)
        if resolution is not None:
            run_store.persist_telemetry(resolution.telemetry)
        if telemetry is not None:
            run_store.persist_telemetry(telemetry.snapshot())
        run_store.finish(
            cpu_state.icount,
            [v.kind.value for v in resolution.verdicts]
            if resolution is not None else (),
        )
    return PipelinedRun(
        recording=recording,
        checkpointing=result,
        final_cpu_state=cpu_state,
        resolution=resolution,
        stats=stats,
        recovery=RecoveryAudit((event,)),
    )


def record_and_replay_pipelined(
    spec: MachineSpec,
    recorder_options: RecorderOptions | None = None,
    cr_options: CheckpointingOptions | None = None,
    *,
    backend: str | None = None,
    frame_records: int | None = None,
    queue_depth: int | None = None,
    resolve_ars: bool = True,
    ar_options: AlarmReplayOptions | None = None,
    max_ar_workers: int = 4,
    fault_plan: FaultPlan | None = None,
    heartbeat=None,
    run_store=None,
    resume=None,
) -> PipelinedRun:
    """Record and checkpoint-replay one session as a streaming pipeline.

    The recorder streams its log as chunked frames through a bounded queue
    that the Checkpointing Replayer consumes concurrently; alarms the CR
    confirms are handed to alarm replayers immediately rather than after
    the full pass.  Results are bit-equivalent to running the phases
    sequentially — only the wall-clock shape changes.

    ``backend``, ``frame_records`` and ``queue_depth`` default to the
    spec's :class:`~repro.config.SimulationConfig` knobs.  The process
    backend falls back to threads when no second process is usable,
    mirroring :func:`resolve_alarms_parallel`.

    The streamed replay is a *derived* computation over frames whose
    authoritative source (the recorder's tee log) stays in the producer's
    memory, so transport damage is recoverable: a torn frame, a lost
    frame, or a dead CR worker heals by resuming the CR from its last
    completed checkpoint (or rerunning it) over the tee log, and the
    returned :attr:`PipelinedRun.recovery` says what happened.  A
    :class:`~repro.errors.ReplayDivergenceError` is never healed — a
    replay that *completes* but disagrees with the recording is the
    signal this whole system exists to raise.  ``fault_plan`` injects
    transport/worker faults for testing; the default ``None`` leaves the
    hot paths exactly as they were.

    ``heartbeat`` is an optional
    :class:`~repro.obs.heartbeat.HeartbeatReporter`: when supplied, the
    recorder and CR publish liveness beats from inside their run loops
    (rate-limited by the deterministic icount) — the fleet's ``--watch``
    hook.  It forces telemetry objects into existence even when
    ``config.telemetry`` is off, but never changes simulated results.

    ``run_store`` attaches a :class:`~repro.store.RunStoreWriter`: every
    emitted frame is journaled write-ahead and every CR checkpoint is
    persisted incrementally, so a killed run can be resumed from disk.
    The store is a single-writer in-process object, so durability pins
    the pipeline to the thread backend.  ``resume`` hands in a
    :class:`~repro.store.ResumePoint` from
    :func:`~repro.store.recover_run`; the run then continues from the
    resume point (see :func:`_resume_pipelined`) instead of starting
    fresh.  Both default to ``None``, which leaves the emit hot path —
    and every result — exactly as before.
    """
    config = spec.config
    if backend is None:
        backend = config.pipeline_backend
    if backend not in ("thread", "process"):
        raise HypervisorError(
            f"unknown pipeline backend {backend!r}; "
            f"choose 'thread' or 'process'"
        )
    if frame_records is None:
        frame_records = config.frame_records
    if queue_depth is None:
        queue_depth = config.pipeline_queue_depth
    if recorder_options is not None and not recorder_options.log_enabled:
        raise HypervisorError(
            "the streaming pipeline replays the input log; recorder "
            "options must keep log_enabled=True"
        )
    if cr_options is None:
        cr_options = CheckpointingOptions()
    pipeline_tel = Telemetry.for_config(config, "pipeline")
    token = (pipeline_tel.begin("pipeline", "phase", 0, backend=backend)
             if pipeline_tel is not None else None)

    def finish(run: PipelinedRun) -> PipelinedRun:
        """Merge per-phase snapshots into the run-level rollup."""
        if pipeline_tel is None:
            return run
        pipeline_tel.end(token, getattr(run.final_cpu_state, "icount", 0),
                         recovered=run.recovery is not None)
        parts = [
            run.recording.telemetry,
            run.checkpointing.telemetry,
            run.resolution.telemetry if run.resolution is not None else None,
            pipeline_tel.snapshot(),
        ]
        run.telemetry = TelemetrySnapshot.merged(
            [part for part in parts if part is not None], actor="run",
        )
        return run

    if resume is not None:
        return finish(_resume_pipelined(
            spec, cr_options, resume, run_store, resolve_ars, ar_options,
            max_ar_workers, recorder_options, frame_records, queue_depth,
            telemetry=pipeline_tel, heartbeat=heartbeat,
        ))
    if backend == "process" and run_store is None:
        try:
            return finish(_pipelined_processes(
                spec, recorder_options, cr_options, frame_records,
                queue_depth, resolve_ars, ar_options, max_ar_workers,
                fault_plan=fault_plan, telemetry=pipeline_tel,
                heartbeat=heartbeat,
            ))
        except _PROCESS_FALLBACK_ERRORS:
            # No usable CR process (sandboxed platform, unpicklable
            # state, ...): the thread backend produces identical results.
            pass
    return finish(_pipelined_threads(
        spec, recorder_options, cr_options, frame_records,
        queue_depth, resolve_ars, ar_options, max_ar_workers,
        fault_plan=fault_plan, telemetry=pipeline_tel,
        heartbeat=heartbeat, run_store=run_store,
    ))


# ----------------------------------------------------------------------
# epoch-parallel CR replay
# ----------------------------------------------------------------------


@dataclass
class ParallelReplayResult:
    """One epoch-parallel CR replay, stitched and (optionally) resolved.

    ``checkpointing`` is provably equivalent to a sequential
    ``period_s=None`` CR pass over the same log: the stitcher verified
    every epoch's final machine digest against the next epoch's seed
    digest before merging (see
    :func:`repro.replay.epoch.stitch_epoch_results`).
    """

    checkpointing: CheckpointingResult
    #: Epochs in the plan (== workers' worth of independent slices).
    epochs: int
    #: Concurrency actually used after capping at the epoch/CPU counts.
    workers: int
    #: Backend that actually ran the epochs ("inline", "thread",
    #: "process") — "inline" when one worker or one epoch made an
    #: executor pure overhead.
    backend: str
    epoch_results: tuple[EpochResult, ...]
    final_cpu_state: CpuState
    #: Verdicts for the stitched run's pending alarms in icount order;
    #: ``None`` when launched with ``resolve_ars=False``.  ARs are
    #: dispatched the moment their epoch finishes, so straggler epochs
    #: overlap with alarm resolution.
    resolution: ParallelResolution | None = None
    #: Merged run-level telemetry (``None`` unless ``config.telemetry``).
    telemetry: TelemetrySnapshot | None = None


def _init_epoch_worker(spec: MachineSpec, log_bytes: bytes,
                       plan: EpochPlan, verify_digest: bool,
                       fault_plan: FaultPlan | None = None):
    """Install per-process epoch-replay state (process backend only).

    The spec, log bytes, and epoch plan cross the process boundary once
    per worker; each worker then replays any number of epochs against its
    private rebuilt log.
    """
    _WORKER_STATE["epoch_spec"] = spec
    _WORKER_STATE["epoch_log"] = InputLog.from_bytes(log_bytes)
    _WORKER_STATE["epoch_plan"] = plan
    _WORKER_STATE["epoch_verify"] = verify_digest
    _WORKER_STATE["epoch_fault_plan"] = fault_plan


def _replay_epoch_in_worker(index: int, attempt: int = 0) -> EpochResult:
    plan = _WORKER_STATE.get("epoch_fault_plan")
    if plan is not None:
        plan.fire_worker_fault("cr", index, attempt, allow_hard_kill=True)
    return replay_epoch(
        _WORKER_STATE["epoch_spec"], _WORKER_STATE["epoch_log"],
        _WORKER_STATE["epoch_plan"], index,
        verify_digest=_WORKER_STATE["epoch_verify"],
    )


def _run_epochs(submit, epochs: int, ar_dispatch,
                telemetry: Telemetry | None,
                retries: int = 0) -> list[EpochResult]:
    """Drive all epochs through ``submit`` and collect results in order.

    ``submit(index, attempt)`` returns a future for one epoch.
    Completion order is whatever the pool produces — each finished
    epoch's pending alarms are handed to ``ar_dispatch`` immediately, so
    alarm replayers run while straggler epochs are still replaying.
    Only an :class:`InjectedWorkerCrash` (a planned transient fault) is
    retried, up to ``retries`` resubmissions; every other failure raises
    right here (epoch replays are deterministic: a retry would fail the
    same way, and a divergence must surface, not be healed).
    """
    futures = {submit(index, 0): (index, 0) for index in range(epochs)}
    results: list[EpochResult | None] = [None] * epochs
    while futures:
        for future in as_completed(list(futures)):
            index, attempt = futures.pop(future)
            try:
                result = future.result()
            except InjectedWorkerCrash:
                if attempt >= retries:
                    raise
                if telemetry is not None:
                    telemetry.count("parallel.retry_attempts")
                futures[submit(index, attempt + 1)] = (index, attempt + 1)
                continue
            results[index] = result
            if telemetry is not None:
                token = telemetry.begin("epoch", "epoch",
                                        result.start_icount, index=index)
                telemetry.end(token, result.end_icount,
                              instructions=result.instructions,
                              alarms=len(result.pending_alarms))
                telemetry.count("parallel.epochs_replayed")
                telemetry.observe("parallel.epoch_instructions",
                                  result.instructions)
            if ar_dispatch is not None:
                ar_dispatch(index, result)
    return results  # type: ignore[return-value]


def replay_parallel(
    spec: MachineSpec,
    log: InputLog,
    plan: EpochPlan | None = None,
    *,
    options: CheckpointingOptions | None = None,
    max_workers: int | None = None,
    backend: str | None = None,
    resolve_ars: bool = False,
    ar_options: AlarmReplayOptions | None = None,
    max_ar_workers: int = 4,
    fault_plan: FaultPlan | None = None,
    telemetry: Telemetry | None = None,
) -> ParallelReplayResult:
    """Replay a recorded session's epochs concurrently and stitch them.

    ``plan`` comes from the recorder
    (:attr:`~repro.rnr.recorder.RecordingRun.epoch_plan`, captured when
    ``RecorderOptions.epoch_boundaries`` was set) or from a durable run
    store (:func:`repro.replay.epoch.epoch_plan_from_resume`).  ``None``
    — or a plan with no boundaries — degenerates to one epoch replayed
    inline, which is just a sequential ``period_s=None`` CR pass.

    ``max_workers`` defaults to ``spec.config.cr_workers``; ``backend``
    (``"thread"`` or ``"process"``) defaults to ``"process"`` when more
    than one worker is usable, falling back to threads when no process
    pool is available — results are identical either way, only
    wall-clock differs.  ``options`` contributes only ``verify_digest``:
    epoch workers always replay with ``period_s=None`` (the plan's
    boundary checkpoints *are* the checkpoint set; per-worker periodic
    checkpointing would duplicate work without changing any verdict).

    With ``resolve_ars=True``, each epoch's confirmed alarms are
    dispatched to alarm replayers on a thread pool the moment the epoch
    finishes — straggler epochs overlap with AR resolution — and the
    verdicts come back in global icount order.

    ``fault_plan`` injects planned worker faults (role ``"cr"``, target
    = epoch index) for testing; transient injected crashes are retried
    per epoch (``config.ar_max_retries`` resubmissions), while real
    failures — divergence above all — still raise.
    """
    config = spec.config
    if max_workers is None:
        max_workers = config.cr_workers
    if plan is None:
        plan = EpochPlan(store=CheckpointStore(), boundaries=())
    requested = max(1, max_workers)
    if plan.epochs > requested:
        # Oversampled (or resume-derived) plans carry more boundaries
        # than workers; thin to a balanced partition of the icount span
        # the recording actually covered — every epoch pays a fixed
        # machine-build + restore cost, so surplus epochs are pure
        # overhead, not extra parallelism.
        end_icount = log[len(log) - 1].icount if len(log) else None
        plan = thin_epoch_plan(plan, requested, end_icount)
    epochs = plan.epochs
    workers = max(1, min(requested, epochs))
    if backend is None:
        backend = "process" if workers > 1 else "thread"
    if backend not in ("thread", "process"):
        raise HypervisorError(
            f"unknown parallel-CR backend {backend!r}; "
            f"choose 'thread' or 'process'"
        )
    verify_digest = options.verify_digest if options is not None else True
    par_tel = (telemetry if telemetry is not None
               else Telemetry.for_config(config, "parallel"))
    token = (par_tel.begin("replay-parallel", "phase", 0,
                           backend=backend, epochs=epochs, workers=workers)
             if par_tel is not None else None)

    ar_pool: ThreadPoolExecutor | None = None
    #: ``(epoch index, within-epoch order, future)`` — sorted at the end
    #: so verdicts land in global icount order (epochs partition the log
    #: by icount, and within an epoch alarms confirm in icount order).
    ar_futures: list[tuple[int, int, object]] = []
    ar_store = plan.store if len(plan.store) else None

    def ar_dispatch(index: int, result: EpochResult):
        nonlocal ar_pool
        if not resolve_ars or not result.pending_alarms:
            return
        if ar_pool is None:
            ar_pool = ThreadPoolExecutor(
                max_workers=max(1, max_ar_workers),
                thread_name_prefix="parallel-ar",
            )
        for order, alarm in enumerate(result.pending_alarms):
            ar_futures.append((index, order, ar_pool.submit(
                _analyze_one, spec, log, alarm, ar_store, ar_options)))

    retries = config.ar_max_retries if fault_plan is not None else 0

    def replay_one(index: int, attempt: int = 0) -> EpochResult:
        # In-process epoch runner (inline + thread paths): thread workers
        # must not hard-exit, so a planned KILL degrades to a crash.
        if fault_plan is not None:
            fault_plan.fire_worker_fault("cr", index, attempt,
                                         allow_hard_kill=False)
        return replay_epoch(spec, log, plan, index,
                            verify_digest=verify_digest)

    used_backend = backend
    try:
        if workers <= 1 or epochs <= 1:
            used_backend = "inline"
            results = _run_epochs(
                lambda index, attempt: _immediate_future(
                    replay_one, index, attempt),
                epochs, ar_dispatch, par_tel, retries,
            )
        elif backend == "process":
            try:
                log_bytes = log.to_bytes()
                # OS processes are the real-parallelism resource: size the
                # pool to the host, even when the logical worker count
                # (== epoch partition) is larger.
                pool_size = max(1, min(workers, os.cpu_count() or 1))
                with ProcessPoolExecutor(
                    max_workers=pool_size,
                    initializer=_init_epoch_worker,
                    initargs=(spec, log_bytes, plan, verify_digest,
                              fault_plan),
                ) as pool:
                    results = _run_epochs(
                        lambda index, attempt: pool.submit(
                            _replay_epoch_in_worker, index, attempt),
                        epochs, ar_dispatch, par_tel, retries,
                    )
            except ReplayDivergenceError:
                raise
            except _PROCESS_FALLBACK_ERRORS:
                # No usable process pool (sandboxed platform, daemonic
                # parent, a planned hard kill breaking the pool,
                # unpicklable state, ...): the thread backend replays the
                # same epochs with identical results.
                used_backend = "thread"
                results = None
        else:
            used_backend = "thread"
            results = None
        if results is None:
            with ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="parallel-cr",
            ) as pool:
                results = _run_epochs(
                    lambda index, attempt: pool.submit(
                        replay_one, index, attempt),
                    epochs, ar_dispatch, par_tel, retries,
                )
        checkpointing = stitch_epoch_results(spec, plan, results)
        resolution = None
        if resolve_ars:
            ar_futures.sort(key=lambda item: (item[0], item[1]))
            pairs = [future.result() for _, _, future in ar_futures]
            resolution = _resolution_from(
                pairs, "inline" if len(pairs) <= 1 else "thread")
    finally:
        if ar_pool is not None:
            ar_pool.shutdown(wait=True)
    final_cpu_state = results[-1].final_cpu_state
    run_telemetry = None
    if par_tel is not None:
        par_tel.count_tagged("parallel.replays", used_backend)
        par_tel.gauge("parallel.workers", workers)
        par_tel.gauge("parallel.epochs", epochs)
        par_tel.end(token, final_cpu_state.icount, backend=used_backend)
        parts = [
            checkpointing.telemetry,
            resolution.telemetry if resolution is not None else None,
            par_tel.snapshot(),
        ]
        run_telemetry = TelemetrySnapshot.merged(
            [part for part in parts if part is not None], actor="run",
        )
    return ParallelReplayResult(
        checkpointing=checkpointing,
        epochs=epochs,
        workers=workers,
        backend=used_backend,
        epoch_results=tuple(results),
        final_cpu_state=final_cpu_state,
        resolution=resolution,
        telemetry=run_telemetry,
    )


def _immediate_future(fn, *args, **kwargs) -> Future:
    """Run ``fn`` now and wrap the outcome in a completed future, so the
    inline epoch path shares the scheduler (:func:`_run_epochs`) — and
    its as-completed AR dispatch — with the pool backends."""
    future: Future = Future()
    try:
        future.set_result(fn(*args, **kwargs))
    except BaseException as exc:  # noqa: BLE001 - delivered by result()
        future.set_exception(exc)
    return future
