"""Concurrent alarm replayers.

§5.2: "our design allows running multiple ARs concurrently, to analyze the
same or different ROP alarms in parallel."  Each AR owns a private machine
rebuilt from the immutable :class:`~repro.hypervisor.machine.MachineSpec`
and reads the shared log and checkpoint store without mutating them, so
replayers are embarrassingly parallel; this module runs a batch of them and
aggregates the verdicts.

Two backends are available (selectable per call or via
``SimulationConfig.ar_backend``):

* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.  Cheap
  to start but GIL-bound: ARs interleave on one core, so wall-clock gains
  come only from whatever little the interpreter releases the GIL for.
* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`, the
  iReplayer-style multiplier: ARs really run on separate cores.  The input
  log crosses the process boundary through its byte serialization
  (``rnr/serialize.py``), alarms as serialized records, and the spec,
  checkpoint store, and options by pickling; each worker deserializes once
  in its initializer and then analyzes any number of alarms.  If the
  process pool cannot be used (platform restrictions, unpicklable state),
  the call silently falls back to the thread backend — verdicts are
  identical either way, only wall-clock differs.

Batches of zero or one alarm never spin up an executor at all; they run
inline on the calling thread.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass

from repro.errors import HypervisorError
from repro.hypervisor.machine import MachineSpec
from repro.replay.alarm import AlarmReplayer, AlarmReplayOptions
from repro.replay.checkpoint import CheckpointStore
from repro.replay.verdict import AlarmVerdict, VerdictKind
from repro.rnr.log import InputLog
from repro.rnr.records import AlarmRecord
from repro.rnr.serialize import parse_record, serialize_record


@dataclass(frozen=True)
class ParallelResolution:
    """Aggregated verdicts from one parallel AR batch."""

    verdicts: tuple[AlarmVerdict, ...]
    #: Backend that actually ran the batch ("inline", "thread", "process").
    backend: str = "thread"

    @property
    def attacks(self) -> tuple[AlarmVerdict, ...]:
        return tuple(v for v in self.verdicts
                     if v.kind is VerdictKind.ROP_CONFIRMED)

    @property
    def false_positives(self) -> tuple[AlarmVerdict, ...]:
        return tuple(v for v in self.verdicts
                     if v.kind is VerdictKind.FALSE_POSITIVE)

    @property
    def inconclusive(self) -> tuple[AlarmVerdict, ...]:
        return tuple(v for v in self.verdicts
                     if v.kind is VerdictKind.INCONCLUSIVE)


def _analyze_one(spec: MachineSpec, log: InputLog, alarm: AlarmRecord,
                 store: CheckpointStore | None,
                 options: AlarmReplayOptions | None) -> AlarmVerdict:
    """Run one AR to its verdict (shared by every backend)."""
    checkpoint = (store.latest_before(alarm.icount)
                  if store is not None else None)
    replayer = AlarmReplayer(
        spec, log, alarm,
        checkpoint=checkpoint,
        store=store if checkpoint is not None else None,
        options=options if options is not None else AlarmReplayOptions(),
    )
    return replayer.analyze()


# Per-worker-process state, installed once by ``_init_ar_worker`` so the
# spec, log, and checkpoint store cross the process boundary a single time
# per worker instead of once per alarm.
_WORKER_STATE: dict = {}


def _init_ar_worker(spec: MachineSpec, log_bytes: bytes,
                    store: CheckpointStore | None,
                    options: AlarmReplayOptions | None):
    _WORKER_STATE["spec"] = spec
    _WORKER_STATE["log"] = InputLog.from_bytes(log_bytes)
    _WORKER_STATE["store"] = store
    _WORKER_STATE["options"] = options


def _analyze_in_worker(alarm_bytes: bytes) -> AlarmVerdict:
    alarm, _ = parse_record(alarm_bytes)
    return _analyze_one(
        _WORKER_STATE["spec"], _WORKER_STATE["log"], alarm,
        _WORKER_STATE["store"], _WORKER_STATE["options"],
    )


def resolve_alarms_parallel(
    spec: MachineSpec,
    log: InputLog,
    alarms: list[AlarmRecord],
    store: CheckpointStore | None = None,
    options: AlarmReplayOptions | None = None,
    max_workers: int = 4,
    backend: str | None = None,
) -> ParallelResolution:
    """Launch one AR per alarm and collect verdicts.

    Each AR starts from the latest checkpoint preceding its alarm when a
    store is supplied, otherwise from the beginning of the log.  Verdict
    order matches the input alarm order regardless of backend.

    ``backend`` is ``"thread"`` or ``"process"``; ``None`` defers to
    ``spec.config.ar_backend``.
    """
    if backend is None:
        backend = spec.config.ar_backend
    if backend not in ("thread", "process"):
        raise HypervisorError(
            f"unknown parallel-AR backend {backend!r}; "
            f"choose 'thread' or 'process'"
        )
    if not alarms:
        return ParallelResolution(verdicts=(), backend="inline")
    if len(alarms) == 1:
        # An executor for a single AR is pure overhead: run it inline.
        verdict = _analyze_one(spec, log, alarms[0], store, options)
        return ParallelResolution(verdicts=(verdict,), backend="inline")

    workers = min(max_workers, len(alarms))
    if backend == "process":
        try:
            return _resolve_with_processes(
                spec, log, alarms, store, options, workers,
            )
        except (OSError, ValueError, TypeError, AttributeError,
                ImportError, pickle.PicklingError, BrokenExecutor):
            # No usable process pool (sandboxed platform, unpicklable
            # state, ...): degrade to the GIL-bound thread backend rather
            # than failing the analysis.
            pass

    def analyze(alarm: AlarmRecord) -> AlarmVerdict:
        return _analyze_one(spec, log, alarm, store, options)

    with ThreadPoolExecutor(max_workers=workers) as pool:
        verdicts = tuple(pool.map(analyze, alarms))
    return ParallelResolution(verdicts=verdicts, backend="thread")


def _resolve_with_processes(
    spec: MachineSpec,
    log: InputLog,
    alarms: list[AlarmRecord],
    store: CheckpointStore | None,
    options: AlarmReplayOptions | None,
    workers: int,
) -> ParallelResolution:
    cpu_count = os.cpu_count() or 1
    workers = max(1, min(workers, cpu_count))
    log_bytes = log.to_bytes()
    alarm_payloads = [serialize_record(alarm) for alarm in alarms]
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_ar_worker,
        initargs=(spec, log_bytes, store, options),
    ) as pool:
        verdicts = tuple(pool.map(_analyze_in_worker, alarm_payloads))
    return ParallelResolution(verdicts=verdicts, backend="process")
