"""Concurrent alarm replayers.

§5.2: "our design allows running multiple ARs concurrently, to analyze the
same or different ROP alarms in parallel."  Each AR owns a private machine
rebuilt from the immutable :class:`~repro.hypervisor.machine.MachineSpec`
and reads the shared log and checkpoint store without mutating them, so
replayers are embarrassingly parallel; this module runs a batch of them on
a thread pool and aggregates the verdicts.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.hypervisor.machine import MachineSpec
from repro.replay.alarm import AlarmReplayer, AlarmReplayOptions
from repro.replay.checkpoint import CheckpointStore
from repro.replay.verdict import AlarmVerdict, VerdictKind
from repro.rnr.log import InputLog
from repro.rnr.records import AlarmRecord


@dataclass(frozen=True)
class ParallelResolution:
    """Aggregated verdicts from one parallel AR batch."""

    verdicts: tuple[AlarmVerdict, ...]

    @property
    def attacks(self) -> tuple[AlarmVerdict, ...]:
        return tuple(v for v in self.verdicts
                     if v.kind is VerdictKind.ROP_CONFIRMED)

    @property
    def false_positives(self) -> tuple[AlarmVerdict, ...]:
        return tuple(v for v in self.verdicts
                     if v.kind is VerdictKind.FALSE_POSITIVE)

    @property
    def inconclusive(self) -> tuple[AlarmVerdict, ...]:
        return tuple(v for v in self.verdicts
                     if v.kind is VerdictKind.INCONCLUSIVE)


def resolve_alarms_parallel(
    spec: MachineSpec,
    log: InputLog,
    alarms: list[AlarmRecord],
    store: CheckpointStore | None = None,
    options: AlarmReplayOptions | None = None,
    max_workers: int = 4,
) -> ParallelResolution:
    """Launch one AR per alarm on a thread pool and collect verdicts.

    Each AR starts from the latest checkpoint preceding its alarm when a
    store is supplied, otherwise from the beginning of the log.  Verdict
    order matches the input alarm order.
    """
    def analyze(alarm: AlarmRecord) -> AlarmVerdict:
        checkpoint = (store.latest_before(alarm.icount)
                      if store is not None else None)
        replayer = AlarmReplayer(
            spec, log, alarm,
            checkpoint=checkpoint,
            store=store if checkpoint is not None else None,
            options=options if options is not None else AlarmReplayOptions(),
        )
        return replayer.analyze()

    if not alarms:
        return ParallelResolution(verdicts=())
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        verdicts = tuple(pool.map(analyze, alarms))
    return ParallelResolution(verdicts=verdicts)
