"""The RnR-Safe framework: Figure 1, end to end.

``RnRSafe.run()`` executes the complete deployment: monitored recording on
the recorded VM, always-on checkpointing replay consuming the log, and
need-based alarm replayers launched from the checkpoint preceding each
unresolved alarm.  Inconclusive verdicts escalate to earlier checkpoints
and finally to a from-the-start replay — the paper's "re-run multiple
times ... or starting at different checkpoints".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.response import ResponseWindow
from repro.hypervisor.machine import MachineSpec
from repro.replay.alarm import AlarmReplayer, AlarmReplayOptions
from repro.replay.checkpointing import (
    CheckpointingOptions,
    CheckpointingReplayer,
    CheckpointingResult,
)
from repro.replay.verdict import AlarmVerdict, VerdictKind
from repro.rnr.recorder import Recorder, RecorderOptions, RecordingRun
from repro.rnr.records import AlarmRecord


@dataclass(frozen=True)
class RnRSafeOptions:
    """Framework-wide configuration."""

    recorder: RecorderOptions = field(
        default_factory=lambda: RecorderOptions()
    )
    checkpointing: CheckpointingOptions = field(
        default_factory=CheckpointingOptions
    )
    alarm_replay: AlarmReplayOptions = field(
        default_factory=AlarmReplayOptions
    )
    #: Re-run inconclusive ARs from earlier checkpoints, then from scratch.
    escalate_inconclusive: bool = True
    #: Cap on AR re-runs per alarm (including the from-start attempt).
    max_attempts: int = 4
    #: Stream the log from recorder to CR through the pipeline executor
    #: (``repro.core.parallel``) instead of running the phases back to
    #: back.  Verdicts and state are identical either way.
    pipeline: bool = False
    #: Pipeline backend override; ``None`` defers to the spec's config.
    pipeline_backend: str | None = None
    #: Durable run store the pipelined run journals into (a
    #: :class:`~repro.store.RunStoreWriter`); implies the pipeline and
    #: pins it to the thread backend.  ``None`` (the default) adds zero
    #: I/O.
    run_store: object | None = None
    #: Resume point (:class:`~repro.store.ResumePoint`) to continue from
    #: instead of recording fresh; requires ``run_store``.
    resume: object | None = None
    #: Epoch-parallel CR replay width; ``None`` defers to the spec's
    #: ``config.cr_workers``.  With more than one worker the recorder
    #: captures epoch boundary checkpoints
    #: (:func:`~repro.replay.epoch.plan_epoch_boundaries`) and the CR
    #: phase runs :func:`~repro.core.parallel.replay_parallel` — stitched
    #: results are digest-proven equivalent to the sequential replay.
    #: Ignored by the streaming pipeline (the CR there consumes the log
    #: while it is still being recorded, so there is nothing to split).
    cr_workers: int | None = None


@dataclass
class AlarmOutcome:
    """Final resolution of one alarm, with the attempt history."""

    alarm: AlarmRecord
    verdict: AlarmVerdict
    attempts: tuple[AlarmVerdict, ...]
    response: ResponseWindow | None = None

    @property
    def is_attack(self) -> bool:
        return self.verdict.kind is VerdictKind.ROP_CONFIRMED


@dataclass
class FrameworkReport:
    """Everything one RnR-Safe deployment run produced."""

    spec: MachineSpec
    recording: RecordingRun
    checkpointing: CheckpointingResult
    outcomes: list[AlarmOutcome]

    @property
    def attacks(self) -> list[AlarmOutcome]:
        return [outcome for outcome in self.outcomes if outcome.is_attack]

    @property
    def false_positives(self) -> list[AlarmOutcome]:
        return [
            outcome for outcome in self.outcomes
            if outcome.verdict.kind is VerdictKind.FALSE_POSITIVE
        ]

    @property
    def inconclusive(self) -> list[AlarmOutcome]:
        return [
            outcome for outcome in self.outcomes
            if outcome.verdict.kind is VerdictKind.INCONCLUSIVE
        ]

    def summary(self) -> str:
        """One-paragraph narrative of the run."""
        cr = self.checkpointing
        lines = [
            f"workload {self.spec.label}: recorded "
            f"{self.recording.metrics.instructions} instructions, "
            f"{len(self.recording.log)} log records "
            f"({self.recording.log.total_bytes} bytes)",
            f"checkpointing replayer: {len(cr.store)} checkpoints, "
            f"{cr.alarms_seen} alarms seen, "
            f"{cr.dismissed_underflows} underflows dismissed via evict "
            f"records, {len(cr.pending_alarms)} sent to alarm replayers",
            f"alarm replayers: {len(self.attacks)} attacks confirmed, "
            f"{len(self.false_positives)} false positives, "
            f"{len(self.inconclusive)} unresolved",
        ]
        return "\n".join(lines)


class RnRSafe:
    """The full Figure 1 deployment over one machine spec."""

    def __init__(self, spec: MachineSpec,
                 options: RnRSafeOptions | None = None):
        self.spec = spec
        self.options = options if options is not None else RnRSafeOptions()
        self.detectors: list = []

    def add_detector(self, detector) -> "RnRSafe":
        """Attach an additional first-line detector (Table 1)."""
        self.detectors.append(detector)
        return self

    def run(self) -> FrameworkReport:
        """Record, checkpoint-replay, and resolve every alarm.

        With ``options.pipeline`` the recording and the checkpointing
        replay overlap through the streaming pipeline executor; alarm
        resolution still runs through the escalation loop below so
        inconclusive verdicts retry from earlier checkpoints.  Extra
        detectors hook the recorder directly, so a run with detectors
        attached falls back to the sequential phases (same results).
        """
        durable = self.options.run_store is not None
        if (self.options.pipeline or durable) and not self.detectors:
            from repro.core.parallel import record_and_replay_pipelined

            run = record_and_replay_pipelined(
                self.spec, self.options.recorder,
                self.options.checkpointing,
                backend=("thread" if durable
                         else self.options.pipeline_backend),
                resolve_ars=False,
                run_store=self.options.run_store,
                resume=self.options.resume,
            )
            recording = run.recording
            checkpointing = run.checkpointing
        else:
            workers = (self.options.cr_workers
                       if self.options.cr_workers is not None
                       else self.spec.config.cr_workers)
            recorder_options = self.options.recorder
            if (workers > 1 and recorder_options.log_enabled
                    and recorder_options.backras
                    and recorder_options.max_instructions is not None
                    and not recorder_options.epoch_boundaries):
                from dataclasses import replace

                from repro.replay.epoch import plan_epoch_boundaries

                recorder_options = replace(
                    recorder_options,
                    epoch_boundaries=plan_epoch_boundaries(
                        recorder_options.max_instructions, workers,
                        oversample=4),
                )
            recorder = Recorder(self.spec, recorder_options)
            for detector in self.detectors:
                detector.configure(recorder)
            recording = recorder.run()
            if workers > 1 and recording.epoch_plan is not None:
                from repro.core.parallel import replay_parallel

                checkpointing = replay_parallel(
                    self.spec, recording.log, recording.epoch_plan,
                    options=self.options.checkpointing,
                    max_workers=workers,
                ).checkpointing
            else:
                replayer = CheckpointingReplayer(
                    self.spec, recording.log, self.options.checkpointing,
                )
                checkpointing = replayer.run_to_end()
        outcomes = [
            self._resolve(alarm, recording, checkpointing)
            for alarm in checkpointing.pending_alarms
        ]
        return FrameworkReport(
            spec=self.spec,
            recording=recording,
            checkpointing=checkpointing,
            outcomes=outcomes,
        )

    # ------------------------------------------------------------------
    # alarm resolution with escalation
    # ------------------------------------------------------------------

    def _resolve(self, alarm: AlarmRecord, recording: RecordingRun,
                 checkpointing: CheckpointingResult) -> AlarmOutcome:
        store = checkpointing.store
        latest = store.latest_before(alarm.icount)
        # Escalation plan: the latest checkpoint, then one earlier (cheap
        # second chance), then a from-the-start replay with complete
        # history — the authoritative last resort.
        plan: list = [latest]
        if latest is not None:
            earlier = store.predecessor(latest)
            if earlier is not None:
                plan.append(earlier)
            plan.append(None)
        attempts: list[AlarmVerdict] = []
        for checkpoint in plan[: self.options.max_attempts]:
            replayer = AlarmReplayer(
                self.spec, recording.log, alarm,
                checkpoint=checkpoint,
                store=store if checkpoint is not None else None,
                options=self.options.alarm_replay,
            )
            verdict = replayer.analyze()
            attempts.append(verdict)
            if verdict.kind is not VerdictKind.INCONCLUSIVE:
                break
            if not self.options.escalate_inconclusive:
                break
        final = attempts[-1]
        response = self._response_window(alarm, final, recording,
                                         checkpointing, store)
        return AlarmOutcome(
            alarm=alarm,
            verdict=final,
            attempts=tuple(attempts),
            response=response,
        )

    def _response_window(self, alarm: AlarmRecord, verdict: AlarmVerdict,
                         recording: RecordingRun,
                         checkpointing: CheckpointingResult,
                         store) -> ResponseWindow | None:
        recorded_at = recording.alarm_cycles.get(alarm.icount)
        cr_at = checkpointing.alarm_cycles.get(alarm.icount)
        if recorded_at is None or cr_at is None:
            return None
        alarm_position = checkpointing.alarm_positions.get(
            alarm.icount, recording.log and len(recording.log)
        )
        checkpoint = store.latest_before(alarm.icount)
        start_position = checkpoint.log_position if checkpoint else 0
        log_bytes = recording.log.bytes_between(start_position, alarm_position)
        return ResponseWindow(
            recorded_at_cycles=recorded_at,
            cr_reached_at_cycles=cr_at,
            analysis_cycles=verdict.analysis_cycles,
            log_bytes_in_window=log_bytes,
            checkpoints_retained=len(store),
        )
