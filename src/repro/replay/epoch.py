"""Epoch-parallel checkpoint-partitioned CR replay.

A recorded session is split at checkpoint boundaries into independent
*epochs*: epoch 0 starts from the freshly built machine, epoch k from the
COW reconstruction of the k-th boundary checkpoint, and every epoch
consumes exactly its slice of the log (``[boundary.log_position,
next_boundary.log_position)``).  Because replay is deterministic, the
epochs can run concurrently on a process pool and still compose into the
sequential CR result — the stitcher *proves* it by checking each epoch's
final machine digest against the next epoch's seed digest (and the
sentinel chain inside each epoch where the recorder emitted one).

Boundary placement is subtle in exactly one way: the recorder captures a
boundary only at a run-loop top where no breakpoint skip is armed.  If a
breakpoint exit just fired at the boundary icount, its handler already ran
on the recording side; capturing there would let the worker whose slice
*ends* at that icount exhaust its batch without ever fetching the
breakpoint — silently skipping the handler the sequential CR executed.
Deferring the capture past the next retired instruction keeps every
handler inside the epoch that re-executes it.  The same hazard is why
:func:`epoch_plan_from_resume` refuses to use a persisted CR checkpoint
whose program counter sits on a kernel breakpoint as a boundary.

Epoch workers replay with ``period_s=None`` (they take no checkpoints of
their own) and a zeroed overhead clock, so their cycle accounts are pure
per-slice overhead.  Overhead charges are count/size-based and therefore
additive across slices: the stitcher offsets each epoch's alarm cycles by
the overhead accumulated in the preceding epochs, which reproduces the
clock of a sequential ``period_s=None`` replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cpu.exits import RopAlarmKind
from repro.cpu.state import CpuState
from repro.errors import CheckpointError, ReplayDivergenceError
from repro.hypervisor.machine import MachineSpec
from repro.obs.telemetry import Telemetry, TelemetrySnapshot
from repro.perf.account import CycleAccount
from repro.perf.report import RunMetrics
from repro.replay.base import ReplayResult
from repro.replay.checkpoint import Checkpoint, CheckpointStore
from repro.replay.checkpointing import (
    CheckpointingOptions,
    CheckpointingReplayer,
    CheckpointingResult,
)
from repro.rnr.log import InputLog
from repro.rnr.records import AlarmRecord, EvictRecord, SentinelRecord


@dataclass(frozen=True)
class EpochBoundary:
    """One epoch split point: a checkpoint plus the replay-side seeds.

    The checkpoint (referenced by id into the plan's store) rebuilds the
    machine; the extra fields seed the CR bookkeeping that lives *outside*
    the machine — the rolling sentinel chain and the per-thread evict
    stacks — so a worker starting mid-log behaves exactly like a
    sequential CR that consumed the prefix.
    """

    index: int
    icount: int
    log_position: int
    checkpoint_id: int
    #: Rolling sentinel chain value after the last sentinel before the
    #: boundary (0 when the recorder emitted none).
    sentinel_crc: int = 0
    last_sentinel_icount: int = 0
    #: Sentinels in the log prefix (audit/statistics only).
    sentinels_before: int = 0
    #: §4.6.2 per-thread evict stacks at the boundary.
    evict_stacks: dict[int, tuple[EvictRecord, ...]] = field(
        default_factory=dict)


@dataclass
class EpochPlan:
    """A session's epoch partition: boundary checkpoints plus seeds."""

    store: CheckpointStore
    boundaries: tuple[EpochBoundary, ...]

    @property
    def epochs(self) -> int:
        return len(self.boundaries) + 1


@dataclass
class EpochResult:
    """One epoch's replay outcome, picklable across a process pool.

    Cycle-bearing values (``alarm_cycles``, ``overhead_cycles``, the
    account) are *local* to the epoch — the worker starts its overhead
    clock at zero — and are globalized by :func:`stitch_epoch_results`.
    """

    index: int
    start_icount: int
    end_icount: int
    start_position: int
    end_position: int
    #: ``fast_digest()`` of the restored seed and of the final machine;
    #: the stitcher chains these against the neighbouring epochs.  These
    #: digests are compared only within one stitched run, never persisted.
    seed_digest: int
    final_digest: int
    final_cpu_state: CpuState
    pending_alarms: list[AlarmRecord]
    dismissed_underflows: int
    alarms_seen: int
    alarm_cycles: dict[int, int]
    alarm_positions: dict[int, int]
    sentinels_verified: int
    overhead_cycles: int
    account: CycleAccount
    instructions: int
    records_consumed: int
    context_switches: int
    backras_bytes: int
    stop_reason: str
    reached_end: bool
    digest_checked: bool
    telemetry: TelemetrySnapshot | None = None


def plan_epoch_boundaries(max_instructions: int, workers: int,
                          oversample: int = 1) -> tuple[int, ...]:
    """Target boundary icounts for ``workers`` roughly-equal epochs.

    The recorder treats these as *at-or-after* targets: a capture fires at
    the first safe loop top past each target, so the actual boundaries
    drift forward by at most one CPU batch.  Targets at or past the budget
    are dropped rather than clamped — a zero-length trailing epoch would
    only waste a worker.

    ``oversample`` is the record-time auto-tuning knob: planning
    ``workers * oversample`` candidate intervals costs only incremental
    dirty-page captures, and lets :func:`thin_epoch_plan` pick a balanced
    ``workers``-way partition of the icount range the run *actually*
    covered — a session that exhausts its input and ends well short of
    the budget still splits evenly instead of leaving trailing workers
    with empty epochs.
    """
    slots = workers * max(1, oversample)
    if workers <= 1 or max_instructions <= 1:
        return ()
    targets: list[int] = []
    for k in range(1, slots):
        target = (max_instructions * k) // slots
        if 0 < target < max_instructions and (
                not targets or target > targets[-1]):
            targets.append(target)
    return tuple(targets)


#: Instruction share of the final epoch relative to a regular epoch.
#: The tail epoch uniquely consumes the End record, whose full-state
#: digest verification walks every mapped page with the (frozen, slow)
#: ``state_digest`` algorithm — a fixed cost no other lane pays.  Giving
#: the tail roughly half a share keeps the lanes' wall-clock balanced
#: instead of their icounts.
TAIL_SHARE = 0.5


def thin_epoch_plan(plan: EpochPlan, workers: int,
                    end_icount: int | None = None,
                    tail_share: float = TAIL_SHARE) -> EpochPlan:
    """Reduce an oversampled plan to at most ``workers`` epochs.

    Picks the boundary nearest each cost-aware target (strictly
    increasing) over ``end_icount`` — the last boundary's icount unless
    given — so the partition balances over the span the recording
    actually covered, not the budget it was planned against.  Targets
    divide the span into ``workers - 1`` full shares plus a
    ``tail_share`` share for the final epoch, which pays the
    End-record digest verification on top of its replay work.  The
    thinned plan shares the original's checkpoint store; skipped
    boundary checkpoints stay available as AR anchors.
    """
    if workers < 1:
        raise ValueError(f"thin_epoch_plan needs workers >= 1, "
                         f"got {workers}")
    if workers <= 1:
        return EpochPlan(store=plan.store, boundaries=())
    if len(plan.boundaries) < workers:
        return plan
    if end_icount is None:
        end_icount = plan.boundaries[-1].icount
    shares = workers - 1 + max(0.1, tail_share)
    picked: list[EpochBoundary] = []
    for k in range(1, workers):
        target = int(end_icount * k / shares)
        best = min(plan.boundaries,
                   key=lambda boundary: abs(boundary.icount - target))
        if not picked or best.icount > picked[-1].icount:
            picked.append(best)
    boundaries = tuple(replace(boundary, index=i)
                       for i, boundary in enumerate(picked))
    return EpochPlan(store=plan.store, boundaries=boundaries)


def derive_epoch_seeds(log: InputLog, positions: list[int]
                       ) -> list[tuple[int, int, int, dict]]:
    """Replay-side seeds for boundaries at ascending log ``positions``.

    One O(records) walk mirroring the CR's own consumption bookkeeping:
    Evict records push per-thread stacks, underflow alarms whose missing
    return address matches the thread's newest evicted entry pop them
    (§4.6.2 — the CR would have dismissed those before the boundary), and
    each sentinel advances the rolling chain.  Returns one
    ``(sentinel_crc, last_sentinel_icount, sentinels_before,
    evict_stacks)`` tuple per position.
    """
    seeds: list[tuple[int, int, int, dict]] = []
    crc = 0
    last_icount = 0
    sentinels = 0
    stacks: dict[int, list[EvictRecord]] = {}
    cursor = 0
    for position in positions:
        if position < cursor:
            raise CheckpointError(
                f"epoch boundary positions must ascend; {position} "
                f"follows {cursor}")
        while cursor < position:
            record = log[cursor]
            if isinstance(record, EvictRecord):
                stacks.setdefault(record.tid, []).append(record)
            elif isinstance(record, AlarmRecord):
                if record.kind is RopAlarmKind.UNDERFLOW:
                    stack = stacks.get(record.tid)
                    if stack and stack[-1].value == record.actual:
                        stack.pop()
            elif isinstance(record, SentinelRecord):
                crc = record.digest
                last_icount = record.icount
                sentinels += 1
            cursor += 1
        seeds.append((
            crc, last_icount, sentinels,
            {tid: tuple(stack) for tid, stack in stacks.items() if stack},
        ))
    return seeds


def finalize_epoch_plan(store: CheckpointStore,
                        captures: list[tuple[int, int, int]],
                        log: InputLog) -> EpochPlan:
    """Turn the recorder's raw captures into a sealed :class:`EpochPlan`.

    ``captures`` is the recorder's ``(icount, log_position,
    checkpoint_id)`` list in capture order; the log walk fills in the
    sentinel-chain and evict-stack seeds each boundary's worker needs.
    """
    seeds = derive_epoch_seeds(log, [position for _, position, _ in captures])
    boundaries = tuple(
        EpochBoundary(
            index=i + 1,
            icount=icount,
            log_position=position,
            checkpoint_id=checkpoint_id,
            sentinel_crc=seed[0],
            last_sentinel_icount=seed[1],
            sentinels_before=seed[2],
            evict_stacks=seed[3],
        )
        for i, ((icount, position, checkpoint_id), seed)
        in enumerate(zip(captures, seeds))
    )
    return EpochPlan(store=store, boundaries=boundaries)


def epoch_plan_from_resume(resume, spec: MachineSpec,
                           workers: int | None = None) -> EpochPlan:
    """Rebuild an epoch plan from a run store's persisted CR checkpoints.

    A recovered :class:`~repro.store.recover.ResumePoint` carries the
    durable checkpoint chain; each usable checkpoint becomes an epoch
    boundary and the seeds are re-derived from the recovered log (the
    store only persists the *last* anchor's bookkeeping).  Checkpoints
    whose program counter sits on one of the kernel's interposition
    breakpoints are skipped: they were taken right after a breakpoint
    exit whose skip-arm state is not part of ``CpuState``, so restoring
    there could re-run (or miss) the handler the sequential CR executed.

    ``workers`` thins the boundaries to roughly-equal epochs for that
    worker count; ``None`` keeps every usable checkpoint.
    """
    state = resume.cr_state
    if state is None or state.store is None or not len(state.store):
        return EpochPlan(store=CheckpointStore(), boundaries=())
    log = resume.log
    kernel = spec.kernel
    breakpoint_pcs = {kernel.switch_sp_pc, kernel.task_create_pc,
                      kernel.task_exit_pc}
    usable: list[Checkpoint] = []
    for checkpoint in state.store.all():
        if checkpoint.cpu_state.pc in breakpoint_pcs:
            continue
        if checkpoint.icount <= 0 or checkpoint.log_position <= 0:
            continue
        if checkpoint.log_position >= len(log):
            continue
        if usable and (checkpoint.icount <= usable[-1].icount
                       or checkpoint.log_position <= usable[-1].log_position):
            continue
        usable.append(checkpoint)
    if workers is not None and workers > 1 and len(usable) > workers - 1:
        end_icount = resume.last_icount or usable[-1].icount
        picked: list[Checkpoint] = []
        for k in range(1, workers):
            target = (end_icount * k) // workers
            best = min(usable, key=lambda cp: abs(cp.icount - target))
            if not picked or best.icount > picked[-1].icount:
                picked.append(best)
        usable = picked
    captures = [(cp.icount, cp.log_position, cp.checkpoint_id)
                for cp in usable]
    plan = finalize_epoch_plan(state.store, captures, log)
    return plan


def _checkpoint_by_id(store: CheckpointStore, checkpoint_id: int
                      ) -> Checkpoint:
    for checkpoint in store.all():
        if checkpoint.checkpoint_id == checkpoint_id:
            return checkpoint
    raise CheckpointError(
        f"epoch plan references checkpoint {checkpoint_id}, which is not "
        f"in the plan's store")


def replay_epoch(spec: MachineSpec, log: InputLog, plan: EpochPlan,
                 index: int, *, verify_digest: bool = True,
                 telemetry: Telemetry | None = None) -> EpochResult:
    """Replay one epoch of ``plan`` and return its stitchable result.

    Epoch 0 starts from the freshly built machine; epoch ``k`` restores
    boundary ``k-1``'s checkpoint, zeroes the overhead clock (so its
    cycle charges are slice-local and additive) and seeds the sentinel
    chain and evict stacks from the boundary.  A bounded epoch runs to
    exactly its end boundary's ``(icount, log_position)`` — asynchronous
    records due *at* the boundary icount but below the position belong to
    this epoch and are applied before stopping (see
    ``DeterministicReplayer.run``'s ``stop_position``).  The last epoch
    runs to the End record and performs the usual final digest check.
    """
    boundaries = plan.boundaries
    if not 0 <= index <= len(boundaries):
        raise CheckpointError(
            f"epoch index {index} out of range for a "
            f"{len(boundaries) + 1}-epoch plan")
    seed = boundaries[index - 1] if index > 0 else None
    nxt = boundaries[index] if index < len(boundaries) else None
    options = CheckpointingOptions(period_s=None,
                                   verify_digest=verify_digest)
    replayer = CheckpointingReplayer(spec, log, options,
                                     telemetry=telemetry)
    machine = replayer.machine
    if seed is not None:
        checkpoint = _checkpoint_by_id(plan.store, seed.checkpoint_id)
        replayer.restore_checkpoint(checkpoint, plan.store)
        # The worker's clock measures only its own slice: overhead
        # restarts at zero (now == icount) and the stitcher re-bases.
        machine.overhead_cycles = 0
        machine.memory.clear_dirty()
        machine.disk.clear_dirty()
        replayer._sentinel_crc = seed.sentinel_crc
        replayer._last_sentinel_icount = seed.last_sentinel_icount
        replayer._evict_stacks = {
            tid: list(stack) for tid, stack in seed.evict_stacks.items()
        }
    start_icount = machine.cpu.icount
    start_position = replayer.cursor.position
    seed_digest = machine.fast_digest()
    if nxt is not None:
        result = replayer.run_to_end(max_instructions=nxt.icount,
                                     stop_position=nxt.log_position)
        if (machine.cpu.icount != nxt.icount
                or replayer.cursor.position != nxt.log_position):
            raise ReplayDivergenceError(
                f"epoch {index} stopped at icount {machine.cpu.icount} "
                f"position {replayer.cursor.position}, expected boundary "
                f"icount {nxt.icount} position {nxt.log_position}",
                icount=machine.cpu.icount,
            )
    else:
        result = replayer.run_to_end()
    end_icount = machine.cpu.icount
    return EpochResult(
        index=index,
        start_icount=start_icount,
        end_icount=end_icount,
        start_position=start_position,
        end_position=replayer.cursor.position,
        seed_digest=seed_digest,
        final_digest=machine.fast_digest(),
        final_cpu_state=machine.cpu.capture_state(),
        pending_alarms=list(result.pending_alarms),
        dismissed_underflows=result.dismissed_underflows,
        alarms_seen=result.alarms_seen,
        alarm_cycles=dict(result.alarm_cycles),
        alarm_positions=dict(result.alarm_positions),
        sentinels_verified=result.sentinels_verified,
        overhead_cycles=machine.overhead_cycles,
        account=machine.account,
        instructions=end_icount - start_icount,
        records_consumed=replayer.cursor.position - start_position,
        context_switches=replayer.interposer.context_switches,
        backras_bytes=replayer.interposer.backras.bytes_moved,
        stop_reason=result.replay.stop_reason,
        reached_end=result.replay.reached_end,
        digest_checked=result.replay.digest_checked,
        telemetry=result.telemetry,
    )


def stitch_epoch_results(spec: MachineSpec, plan: EpochPlan,
                         results: list[EpochResult]) -> CheckpointingResult:
    """Verify the epoch chain and merge the results in icount order.

    Equivalence proof: adjacent epochs must agree on the boundary — the
    finishing epoch's final machine digest must equal the next epoch's
    seed digest (both are full ``fast_digest()`` values over registers
    and every mapped page), and the icount/log-position must line up.
    Any disagreement raises :class:`ReplayDivergenceError` naming the
    boundary, exactly like a sequential replay that diverged there.

    Merging re-bases the per-epoch clocks: epoch k's alarm cycles are
    offset by the overhead accumulated in epochs ``< k``, and each
    boundary checkpoint's ``cycles`` is rewritten from the recorder's
    clock to the stitched replay clock — afterwards the plan's store is
    a coherent CR store the alarm replayers can launch from.
    """
    if not results:
        raise CheckpointError("cannot stitch zero epoch results")
    ordered = sorted(results, key=lambda r: r.index)
    for left, right in zip(ordered, ordered[1:]):
        if (left.end_icount != right.start_icount
                or left.end_position != right.start_position):
            raise ReplayDivergenceError(
                f"epoch chain broken between epochs {left.index} and "
                f"{right.index}: ends at icount {left.end_icount} "
                f"position {left.end_position}, next seeds at "
                f"{right.start_icount}/{right.start_position}",
                icount=left.end_icount,
            )
        if left.final_digest != right.seed_digest:
            raise ReplayDivergenceError(
                "epoch stitch digest mismatch — parallel replay is not "
                "equivalent to the recorded execution at this boundary",
                icount=left.end_icount,
                expected_digest=right.seed_digest,
                actual_digest=left.final_digest,
                window=(left.start_icount, left.end_icount),
            )
    account = CycleAccount()
    pending_alarms: list[AlarmRecord] = []
    alarm_cycles: dict[int, int] = {}
    alarm_positions: dict[int, int] = {}
    dismissed = 0
    alarms_seen = 0
    sentinels = 0
    context_switches = 0
    backras_bytes = 0
    offset = 0
    boundaries = plan.boundaries
    for i, result in enumerate(ordered):
        account.merge(result.account)
        pending_alarms.extend(result.pending_alarms)
        for icount, cycles in result.alarm_cycles.items():
            alarm_cycles[icount] = cycles + offset
        alarm_positions.update(result.alarm_positions)
        dismissed += result.dismissed_underflows
        alarms_seen += result.alarms_seen
        sentinels += result.sentinels_verified
        context_switches += result.context_switches
        backras_bytes += result.backras_bytes
        offset += result.overhead_cycles
        if i < len(boundaries):
            boundary = boundaries[i]
            checkpoint = _checkpoint_by_id(plan.store,
                                           boundary.checkpoint_id)
            checkpoint.cycles = boundary.icount + offset
    last = ordered[-1]
    metrics = RunMetrics(
        label=spec.label,
        instructions=last.end_icount,
        guest_cycles=last.end_icount,
        account=account,
        backras_bytes=backras_bytes,
        context_switches=context_switches,
    )
    replay = ReplayResult(
        metrics=metrics,
        reached_end=last.reached_end,
        digest_checked=last.digest_checked,
        stop_reason=last.stop_reason,
    )
    snapshots = [r.telemetry for r in ordered if r.telemetry is not None]
    return CheckpointingResult(
        replay=replay,
        store=plan.store,
        pending_alarms=pending_alarms,
        dismissed_underflows=dismissed,
        alarms_seen=alarms_seen,
        alarm_cycles=alarm_cycles,
        alarm_positions=alarm_positions,
        sentinels_verified=sentinels,
        telemetry=(TelemetrySnapshot.merged(snapshots, actor="cr")
                   if snapshots else None),
    )
