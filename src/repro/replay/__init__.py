"""Replay: the deterministic engine, checkpointing replayer, alarm replayer.

The replaying machine rebuilds an identical guest from the
:class:`~repro.hypervisor.machine.MachineSpec`, then consumes the input log:
synchronous records are injected at the matching VM exits, asynchronous
records are applied at their exact instruction counts.  On top of that
engine sit the paper's two replayers (§4.6): the always-on
:class:`CheckpointingReplayer` and the on-demand :class:`AlarmReplayer`.
"""

from repro.replay.base import DeterministicReplayer, ReplayResult
from repro.replay.checkpoint import Checkpoint, CheckpointStore
from repro.replay.checkpointing import (
    CheckpointingOptions,
    CheckpointingReplayer,
    CheckpointingResult,
)
from repro.replay.epoch import (
    EpochBoundary,
    EpochPlan,
    EpochResult,
    epoch_plan_from_resume,
    finalize_epoch_plan,
    plan_epoch_boundaries,
    thin_epoch_plan,
    replay_epoch,
    stitch_epoch_results,
)
from repro.replay.verdict import AlarmVerdict, BenignCause, VerdictKind
from repro.replay.alarm import AlarmReplayer, AlarmReplayOptions, TrapScope

__all__ = [
    "DeterministicReplayer",
    "ReplayResult",
    "Checkpoint",
    "CheckpointStore",
    "CheckpointingReplayer",
    "CheckpointingOptions",
    "CheckpointingResult",
    "EpochBoundary",
    "EpochPlan",
    "EpochResult",
    "plan_epoch_boundaries",
    "thin_epoch_plan",
    "finalize_epoch_plan",
    "epoch_plan_from_resume",
    "replay_epoch",
    "stitch_epoch_results",
    "AlarmReplayer",
    "AlarmReplayOptions",
    "TrapScope",
    "AlarmVerdict",
    "BenignCause",
    "VerdictKind",
]
