"""The Alarm Replayer (AR, §4.6.2).

Launched from the checkpoint preceding an alarm, the AR traps every call
and return (a new exit control standing in for the paper's binary
instrumentation) and models an *unbounded* software RAS per thread —
seeded from the checkpoint's BackRAS, switched at context-switch traps,
whitelist-aware, and able to repair itself across setjmp/longjmp.  At the
alarm marker it decides: the mismatch is either explained by a benign
cause (false positive) or it can only be a ROP (attack confirmed).

If the checkpoint's bounded BackRAS had already lost the history needed to
judge the alarm, the verdict is INCONCLUSIVE and the framework re-runs the
AR from an earlier checkpoint ("starting at different checkpoints, to
fully characterize the attack").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cpu.exits import ExitControls, RopAlarmKind, VmExit
from repro.errors import ReplayDivergenceError
from repro.hypervisor.machine import MachineSpec
from repro.replay.base import DeterministicReplayer
from repro.replay.checkpoint import Checkpoint, CheckpointStore
from repro.replay.verdict import AlarmVerdict, BenignCause, VerdictKind
from repro.rnr.log import InputLog
from repro.rnr.records import AlarmRecord


class TrapScope(enum.Enum):
    """Which call/rets the AR instruments."""

    #: Kernel only — the cheap mode used for kernel ROP hunting (Figure 9's
    #: slowdown tracks kernel call/ret counts).
    KERNEL = "kernel"
    #: Kernel and user — the deeper instrumentation level, needed to judge
    #: alarms raised by user-mode returns (setjmp/longjmp).
    ALL = "all"
    #: Choose from the alarm's PC.
    AUTO = "auto"


@dataclass(frozen=True)
class AlarmReplayOptions:
    """AR configuration."""

    scope: TrapScope = TrapScope.AUTO
    max_instructions: int | None = None


class _RetLabel(enum.Enum):
    MATCH = "match"
    IMPERFECT = "imperfect"
    TRUNCATED = "truncated"
    SUSPECT = "suspect"
    WHITELIST_OK = "whitelist_ok"
    WHITELIST_VIOLATION = "whitelist_violation"


@dataclass(frozen=True)
class _RetEvent:
    label: _RetLabel
    expected: int | None
    actual: int
    tid: int


class AlarmReplayer(DeterministicReplayer):
    """Replays up to one alarm marker and classifies it."""

    TELEMETRY_ACTOR = "ar"

    def __init__(self, spec: MachineSpec, log: InputLog, alarm: AlarmRecord,
                 checkpoint: Checkpoint | None = None,
                 store: CheckpointStore | None = None,
                 options: AlarmReplayOptions | None = None):
        self.options = options if options is not None else AlarmReplayOptions()
        self.alarm = alarm
        self.kernel = spec.kernel
        scope = self._resolve_scope(spec)
        controls = ExitControls(
            trap_call_ret=True,
            trap_call_ret_user=(scope is TrapScope.ALL),
        )
        super().__init__(spec, log.cursor(), controls=controls,
                         manage_backras=True, verify_digest=False)
        self.scope = scope
        self.interposer.thread_created_hook = self._on_thread_created
        self.interposer.thread_destroyed_hook = self._on_thread_destroyed
        self._soft_ras: dict[int, list[int]] = {}
        self._truncated: dict[int, bool] = {}
        self._ret_events: dict[int, _RetEvent] = {}
        self._from_checkpoint = None
        self.verdict: AlarmVerdict | None = None
        self._imperfect_repairs = 0
        if checkpoint is not None:
            if store is None:
                raise ReplayDivergenceError(
                    "restoring a checkpoint requires its store"
                )
            self._restore(checkpoint, store)

    def _resolve_scope(self, spec: MachineSpec) -> TrapScope:
        if self.options.scope is not TrapScope.AUTO:
            return self.options.scope
        user_base = spec.kernel.layout.user_code_base
        return TrapScope.ALL if self.alarm.pc >= user_base else TrapScope.KERNEL

    # ------------------------------------------------------------------
    # checkpoint restore
    # ------------------------------------------------------------------

    def _restore(self, checkpoint: Checkpoint, store: CheckpointStore):
        self.restore_checkpoint(checkpoint, store)
        # Seed the software RAS from the checkpointed BackRAS (§4.6.2).
        # These stacks are bounded hardware dumps: anything deeper than
        # their bottom is unknowable from this checkpoint.
        for tid, snapshot in checkpoint.backras.items():
            self._soft_ras[tid] = list(snapshot)
            self._truncated[tid] = True
        self._from_checkpoint = checkpoint.checkpoint_id

    # ------------------------------------------------------------------
    # thread lifecycle (fresh threads have complete, untruncated history)
    # ------------------------------------------------------------------

    def _on_thread_created(self, tid: int):
        self._soft_ras[tid] = []
        self._truncated[tid] = False

    def _on_thread_destroyed(self, tid: int):
        self._soft_ras.pop(tid, None)
        self._truncated.pop(tid, None)

    # ------------------------------------------------------------------
    # call/ret trapping: the software RAS
    # ------------------------------------------------------------------

    def _stack(self) -> list[int]:
        tid = self.interposer.current_tid
        return self._soft_ras.setdefault(tid, [])

    def on_call_trap(self, exit_event: VmExit):
        self._stack().append(exit_event.return_addr)

    def on_ret_trap(self, exit_event: VmExit):
        tid = self.interposer.current_tid
        icount = self.machine.cpu.icount
        target = exit_event.actual
        if exit_event.pc == self.kernel.ctxsw_ret_pc:
            # The non-procedural return: never pops the software RAS.
            if target in self.kernel.whitelist_targets:
                label = _RetLabel.WHITELIST_OK
            else:
                label = _RetLabel.WHITELIST_VIOLATION
            self._ret_events[icount] = _RetEvent(
                label=label, expected=None, actual=target, tid=tid,
            )
            return
        stack = self._stack()
        if stack and stack[-1] == target:
            stack.pop()
            event = _RetEvent(_RetLabel.MATCH, target, target, tid)
        elif target in stack:
            # Imperfect nesting (setjmp/longjmp, §4.5): the target exists
            # deeper in the stack; unwind the orphaned frames to repair.
            expected = stack[-1]
            while stack and stack[-1] != target:
                stack.pop()
            if stack:
                stack.pop()
            self._imperfect_repairs += 1
            event = _RetEvent(_RetLabel.IMPERFECT, expected, target, tid)
        elif not stack and self._truncated.get(tid, False):
            event = _RetEvent(_RetLabel.TRUNCATED, None, target, tid)
        else:
            expected = stack[-1] if stack else None
            if stack:
                stack.pop()
            event = _RetEvent(_RetLabel.SUSPECT, expected, target, tid)
        self._ret_events[icount] = event

    # ------------------------------------------------------------------
    # alarm resolution
    # ------------------------------------------------------------------

    def on_alarm(self, record: AlarmRecord):
        if record.icount != self.alarm.icount:
            return  # a different alarm in the window; its own AR judges it
        self.verdict = self._classify(record)
        self.stop_requested = True
        self.stop_reason = "alarm_resolved"

    def analyze(self) -> AlarmVerdict:
        """Replay to the alarm marker and return the verdict."""
        tel = self.telemetry
        token = (tel.begin("analyze", "ar", self.machine.cpu.icount,
                           alarm_icount=self.alarm.icount,
                           alarm_kind=self.alarm.kind.value)
                 if tel is not None else None)
        start_cycles = self.machine.now
        self.run(max_instructions=self.options.max_instructions)
        if self.verdict is None:
            self.verdict = AlarmVerdict(
                kind=VerdictKind.INCONCLUSIVE,
                alarm=self.alarm,
                explanation=(
                    "replay ended before reaching the alarm marker "
                    f"({self.stop_reason})"
                ),
                tid=self.alarm.tid,
                from_checkpoint=self._from_checkpoint,
            )
        analysis_cycles = self.machine.now - start_cycles
        self.verdict = _with_cycles(self.verdict, analysis_cycles)
        if tel is not None:
            tel.count_tagged("ar.verdicts", self.verdict.kind.value)
            tel.observe("ar.analysis_cycles", analysis_cycles)
            tel.end(token, self.machine.cpu.icount,
                    verdict=self.verdict.kind.value)
        return self.verdict

    def _classify(self, record: AlarmRecord) -> AlarmVerdict:
        if record.kind is RopAlarmKind.JOP:
            return self._classify_jop(record)
        event = self._ret_events.get(record.icount)
        if event is None:
            return AlarmVerdict(
                kind=VerdictKind.INCONCLUSIVE,
                alarm=record,
                explanation=(
                    "no instrumented return at the alarm point (trap scope "
                    f"{self.scope.value})"
                ),
                tid=record.tid,
                from_checkpoint=self._from_checkpoint,
            )
        if event.label is _RetLabel.MATCH:
            return self._false_positive(
                record, event, BenignCause.DEEP_NESTING,
                "software RAS agrees with the actual target; the hardware "
                "RAS merely ran out of entries",
            )
        if event.label is _RetLabel.IMPERFECT:
            return self._false_positive(
                record, event, BenignCause.IMPERFECT_NESTING,
                "target found deeper in the call history: unwound "
                "setjmp/longjmp-style imperfect nesting",
            )
        if event.label is _RetLabel.WHITELIST_OK:
            return self._false_positive(
                record, event, BenignCause.NON_PROCEDURAL,
                "non-procedural return to a legal landing site",
            )
        if event.label is _RetLabel.TRUNCATED:
            return AlarmVerdict(
                kind=VerdictKind.INCONCLUSIVE,
                alarm=record,
                explanation=(
                    "the checkpoint's BackRAS no longer holds the frames "
                    "needed to judge this return; retry from an earlier "
                    "checkpoint"
                ),
                observed_target=event.actual,
                tid=event.tid,
                from_checkpoint=self._from_checkpoint,
            )
        if event.label is _RetLabel.WHITELIST_VIOLATION:
            return AlarmVerdict(
                kind=VerdictKind.ROP_CONFIRMED,
                alarm=record,
                explanation=(
                    "the kernel's non-procedural return was redirected to "
                    "an illegal target"
                ),
                observed_target=event.actual,
                tid=event.tid,
                from_checkpoint=self._from_checkpoint,
            )
        return AlarmVerdict(
            kind=VerdictKind.ROP_CONFIRMED,
            alarm=record,
            explanation=(
                "return target disagrees with the software RAS and is not "
                "explained by any benign cause: control-flow hijack"
            ),
            expected_target=event.expected,
            observed_target=event.actual,
            tid=event.tid,
            from_checkpoint=self._from_checkpoint,
        )

    def _classify_jop(self, record: AlarmRecord) -> AlarmVerdict:
        from repro.detectors.jop import verify_jop_target

        return verify_jop_target(self.kernel, record,
                                 from_checkpoint=self._from_checkpoint)

    def _false_positive(self, record: AlarmRecord, event: _RetEvent,
                        cause: BenignCause, explanation: str) -> AlarmVerdict:
        return AlarmVerdict(
            kind=VerdictKind.FALSE_POSITIVE,
            alarm=record,
            explanation=explanation,
            benign_cause=cause,
            expected_target=event.expected,
            observed_target=event.actual,
            tid=event.tid,
            from_checkpoint=self._from_checkpoint,
        )


def _with_cycles(verdict: AlarmVerdict, cycles: int) -> AlarmVerdict:
    from dataclasses import replace

    return replace(verdict, analysis_cycles=cycles)

