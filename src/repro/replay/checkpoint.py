"""Checkpoints and the checkpoint store (§4.6.1, Figure 4).

A checkpoint holds (1) the VM state — processor registers plus the memory
pages and disk blocks modified since the previous checkpoint, with earlier
state reachable through the parent chain; (2) the ``InputLogPtr`` (a log
cursor position); and (3) the BackRAS at checkpoint time.

Checkpoints are *incremental*: reconstructing full state at checkpoint C
overlays the chain C, parent(C), ... back to the initial machine (which is
rebuildable from the :class:`~repro.hypervisor.machine.MachineSpec`).
Recycling drops the oldest checkpoint by merging its exclusive pages into
its successor — the moral equivalent of the paper's "only recycle a page if
it is not pointed to by a later checkpoint".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.ras import RasSnapshot
from repro.cpu.state import CpuState
from repro.errors import CheckpointError


@dataclass
class Checkpoint:
    """One incremental checkpoint."""

    checkpoint_id: int
    icount: int
    cycles: int
    cpu_state: CpuState
    #: Pages dirtied since the previous checkpoint: index -> contents.
    pages: dict[int, tuple[int, ...]]
    #: Disk blocks dirtied since the previous checkpoint.
    disk_blocks: dict[int, tuple[int, ...]]
    #: The full BackRAS at checkpoint time (§4.6.2 seeds the AR's software
    #: RAS from this).
    backras: dict[int, RasSnapshot]
    #: Thread running at checkpoint time.
    current_tid: int
    #: InputLogPtr: position of the next log record to consume.
    log_position: int
    parent_id: int | None = None
    #: Disk controller registers (an OUT sequence may straddle the
    #: checkpoint; the replica must resume mid-programming).
    disk_regs: tuple[int, int, int] = (0, 0, 0)

    @property
    def storage_words(self) -> int:
        """Words of state exclusively held by this checkpoint."""
        page_words = sum(len(words) for words in self.pages.values())
        block_words = sum(len(words) for words in self.disk_blocks.values())
        ras_words = sum(len(snapshot) + 1 for snapshot in self.backras.values())
        return page_words + block_words + ras_words


class CheckpointStore:
    """Ordered collection of checkpoints with chain reconstruction."""

    def __init__(self):
        self._checkpoints: list[Checkpoint] = []
        self._by_id: dict[int, Checkpoint] = {}
        self._next_id = 1
        #: Checkpoints dropped by recycling (statistics for §8.4).
        self.recycled = 0

    def __len__(self) -> int:
        return len(self._checkpoints)

    def add(self, icount: int, cycles: int, cpu_state: CpuState,
            pages: dict[int, tuple[int, ...]],
            disk_blocks: dict[int, tuple[int, ...]],
            backras: dict[int, RasSnapshot],
            current_tid: int, log_position: int,
            disk_regs: tuple[int, int, int] = (0, 0, 0)) -> Checkpoint:
        """Append a new checkpoint chained to the previous one."""
        parent_id = (
            self._checkpoints[-1].checkpoint_id if self._checkpoints else None
        )
        checkpoint = Checkpoint(
            checkpoint_id=self._next_id,
            icount=icount,
            cycles=cycles,
            cpu_state=cpu_state,
            pages=dict(pages),
            disk_blocks=dict(disk_blocks),
            backras=dict(backras),
            current_tid=current_tid,
            log_position=log_position,
            parent_id=parent_id,
            disk_regs=disk_regs,
        )
        self._next_id += 1
        self._checkpoints.append(checkpoint)
        self._by_id[checkpoint.checkpoint_id] = checkpoint
        return checkpoint

    def all(self) -> tuple[Checkpoint, ...]:
        """All retained checkpoints, oldest first."""
        return tuple(self._checkpoints)

    def latest(self) -> Checkpoint | None:
        """The most recent checkpoint."""
        return self._checkpoints[-1] if self._checkpoints else None

    def latest_before(self, icount: int) -> Checkpoint | None:
        """The newest checkpoint at or before instruction ``icount``.

        This is the checkpoint an alarm replayer starts from ("typically the
        latest" preceding the alarm).
        """
        best = None
        for checkpoint in self._checkpoints:
            if checkpoint.icount <= icount:
                best = checkpoint
            else:
                break
        return best

    def predecessor(self, checkpoint: Checkpoint) -> Checkpoint | None:
        """The checkpoint preceding ``checkpoint`` (for AR escalation)."""
        if checkpoint.parent_id is None:
            return None
        return self._by_id.get(checkpoint.parent_id)

    # ------------------------------------------------------------------
    # reconstruction
    # ------------------------------------------------------------------

    def _chain(self, checkpoint: Checkpoint) -> list[Checkpoint]:
        chain = []
        current: Checkpoint | None = checkpoint
        while current is not None:
            chain.append(current)
            if current.parent_id is None:
                break
            parent = self._by_id.get(current.parent_id)
            if parent is None:
                break  # ancestors recycled: their pages were merged forward
            current = parent
        return chain

    def reconstruct_pages(self, checkpoint: Checkpoint) -> dict[int, tuple[int, ...]]:
        """Full page overlay at ``checkpoint`` (newest copy of each page)."""
        if self._by_id.get(checkpoint.checkpoint_id) is not checkpoint:
            raise CheckpointError(
                f"checkpoint {checkpoint.checkpoint_id} is not in this store"
            )
        overlay: dict[int, tuple[int, ...]] = {}
        for entry in self._chain(checkpoint):
            for index, words in entry.pages.items():
                overlay.setdefault(index, words)
        return overlay

    def reconstruct_blocks(self, checkpoint: Checkpoint) -> dict[int, tuple[int, ...]]:
        """Full disk-block overlay at ``checkpoint``."""
        overlay: dict[int, tuple[int, ...]] = {}
        for entry in self._chain(checkpoint):
            for block, words in entry.disk_blocks.items():
                overlay.setdefault(block, words)
        return overlay

    # ------------------------------------------------------------------
    # recycling
    # ------------------------------------------------------------------

    def recycle_older_than(self, cycles: int, keep_at_least: int = 2):
        """Drop checkpoints older than ``cycles``, merging state forward.

        ``keep_at_least`` mirrors the paper's "+2" retention margin: the
        newest checkpoints are never recycled even if old.
        """
        while (len(self._checkpoints) > keep_at_least
               and self._checkpoints[0].cycles < cycles):
            self._drop_oldest()

    def _drop_oldest(self):
        if len(self._checkpoints) < 2:
            raise CheckpointError("cannot recycle the only checkpoint")
        oldest = self._checkpoints.pop(0)
        successor = self._checkpoints[0]
        # Pages/blocks unchanged between the two still describe the
        # successor's state: move them forward instead of freeing them.
        for index, words in oldest.pages.items():
            successor.pages.setdefault(index, words)
        for block, words in oldest.disk_blocks.items():
            successor.disk_blocks.setdefault(block, words)
        successor.parent_id = None
        del self._by_id[oldest.checkpoint_id]
        self.recycled += 1

    @property
    def storage_words(self) -> int:
        """Total words of checkpoint state retained (§8.4 statistics)."""
        return sum(cp.storage_words for cp in self._checkpoints)
